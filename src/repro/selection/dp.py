"""Optimization selection via dynamic programming (thesis §4.3).

For every stream (and every contiguous child range of every container) the
selector evaluates three ways of realizing it:

* collapse the region and run it in the **time domain** (LINEAR),
* collapse the region and run it in the **frequency domain** (FREQ),
* leave it **uncollapsed** (NONE) — realized either by descending into a
  single child or by *cutting* the region into two sub-regions (pipeline
  ranges cut horizontally, splitjoin ranges vertically) whose costs add.

Costs are normalized per steady state of the whole program: a candidate
implementation of a region with push rate u' fires ``items_out / u'``
times per steady state, where ``items_out`` is the data volume crossing
the region's output edge (computed once from the original schedule).
Non-linear leaves cost zero under NONE, as in the thesis, so the search
concentrates on the linear portions.

Splitjoin cuts nest the range as two groups under an outer splitter and
joiner whose weights are the per-group sums — semantically identical to
the flat construct, which is what makes the cut a pure refactoring.

The result is both the minimal cost and the rebuilt optimized graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CombinationError, SchedulingError, StreamGraphError
from ..frequency.filters import make_frequency_stream
from ..graph.scheduler import steady_state
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             PrimitiveFilter, RoundRobin, SplitJoin, Stream)
from ..linear.combine import LinearityMap, analyze
from ..linear.filters import LinearFilter
from ..linear.node import LinearNode
from ..linear.pipeline_comb import combine_pipeline_pair
from ..linear.splitjoin_comb import combine_splitjoin
from .costs import direct_cost, frequency_cost


@dataclass
class Config:
    """A costed realization of a region (thesis Figure 4-3)."""

    cost: float
    stream: Stream
    choice: str  # 'linear' | 'freq' | 'none' | 'cut'


@dataclass
class SelectionResult:
    stream: Stream
    cost: float
    decisions: dict


class OptimizationSelector:
    """Runs the DP over one program graph."""

    def __init__(self, program: Stream, lmap: LinearityMap | None = None,
                 max_matrix_elems: int = 4_000_000,
                 min_freq_peek: int = 2):
        self.program = program
        self.lmap = lmap if lmap is not None else analyze(program)
        self.max_matrix_elems = max_matrix_elems
        self.min_freq_peek = min_freq_peek
        self._memo: dict = {}
        self._region_nodes: dict = {}
        self._out_items: dict[int, float] = {}
        self._feedback_depth = 0
        self._compute_data_volumes()

    # ------------------------------------------------------------------
    # data volumes (the executionsPerSteadyState normalization)
    # ------------------------------------------------------------------
    def _compute_data_volumes(self):
        def visit(stream: Stream, mult: float):
            if isinstance(stream, (Filter, PrimitiveFilter)):
                self._out_items[id(stream)] = mult * stream.push
                return
            sub = steady_state(stream)
            self._out_items[id(stream)] = mult * sub.push
            if isinstance(stream, (Pipeline, SplitJoin)):
                for child in stream.children:
                    visit(child, mult * sub.multiplicity(child))
            elif isinstance(stream, FeedbackLoop):
                visit(stream.body, mult * sub.multiplicity(stream.body))
                visit(stream.loop, mult * sub.multiplicity(stream.loop))

        visit(self.program, 1.0)

    @staticmethod
    def _firings(items_out: float, push: int) -> float:
        return items_out / push if push else 0.0

    # ------------------------------------------------------------------
    # region linear nodes
    # ------------------------------------------------------------------
    def _node_for_range(self, container, lo: int, hi: int) \
            -> LinearNode | None:
        """Linear node of children[lo:hi] of a container, or None."""
        key = (id(container), lo, hi)
        if key in self._region_nodes:
            return self._region_nodes[key]
        node = None
        children = container.children[lo:hi]
        child_nodes = [self.lmap.node_for(c) for c in children]
        if all(n is not None for n in child_nodes):
            try:
                if isinstance(container, Pipeline):
                    acc = child_nodes[0]
                    for n in child_nodes[1:]:
                        acc = combine_pipeline_pair(acc, n)
                        if acc.peek * acc.push > self.max_matrix_elems:
                            raise CombinationError("matrix too large")
                    node = acc
                else:  # SplitJoin range
                    splitter = container.splitter
                    if isinstance(splitter, RoundRobin):
                        splitter = RoundRobin(splitter.weights[lo:hi])
                    joiner = RoundRobin(container.joiner.weights[lo:hi])
                    node = combine_splitjoin(splitter, child_nodes, joiner)
                    if node.peek * node.push > self.max_matrix_elems:
                        node = None
            except (CombinationError, SchedulingError):
                node = None
        self._region_nodes[key] = node
        return node

    # ------------------------------------------------------------------
    # collapse candidates (thesis Figure 4-5, getNodeCost)
    # ------------------------------------------------------------------
    def _collapse_configs(self, node: LinearNode, items_out: float,
                          label: str) -> list[Config]:
        configs = []
        firings = self._firings(items_out, node.push)
        configs.append(Config(firings * direct_cost(node),
                              LinearFilter(node, name=f"Linear[{label}]"),
                              "linear"))
        if self._feedback_depth > 0:
            # frequency filters change granularity -> unsafe in a cycle
            return configs
        if node.peek >= self.min_freq_peek:
            try:
                freq_stream = make_frequency_stream(
                    node, name=f"Freq[{label}]")
                configs.append(Config(firings * frequency_cost(node),
                                      freq_stream, "freq"))
            except StreamGraphError:
                pass
        return configs

    # ------------------------------------------------------------------
    # the DP
    # ------------------------------------------------------------------
    def best(self, stream: Stream) -> Config:
        """Minimal-cost realization of a whole stream (ANY transform)."""
        key = id(stream)
        if key in self._memo:
            return self._memo[key]
        items_out = self._out_items.get(id(stream), 0.0)

        if isinstance(stream, (Filter, PrimitiveFilter)):
            node = self.lmap.node_for(stream)
            if node is None:
                result = Config(0.0, stream, "none")
            else:
                candidates = [Config(
                    self._firings(items_out, node.push) * direct_cost(node),
                    stream, "none")]
                candidates += self._collapse_configs(node, items_out,
                                                     stream.name)
                result = min(candidates, key=lambda c: c.cost)
        elif isinstance(stream, (Pipeline, SplitJoin)):
            result = self._best_range(stream, 0, len(stream.children))
        elif isinstance(stream, FeedbackLoop):
            self._feedback_depth += 1
            body = self.best(stream.body)
            loop = self.best(stream.loop)
            self._feedback_depth -= 1
            result = Config(
                body.cost + loop.cost,
                FeedbackLoop(body.stream, loop.stream, stream.joiner,
                             stream.splitter, stream.enqueued,
                             name=stream.name),
                "none")
        else:
            raise TypeError(f"unknown stream {stream!r}")
        self._memo[key] = result
        return result

    def _range_items_out(self, container, lo: int, hi: int) -> float:
        if isinstance(container, Pipeline):
            return self._out_items.get(id(container.children[hi - 1]), 0.0)
        return sum(self._out_items.get(id(c), 0.0)
                   for c in container.children[lo:hi])

    def _best_range(self, container, lo: int, hi: int) -> Config:
        key = (id(container), lo, hi)
        if key in self._memo:
            return self._memo[key]

        if hi - lo == 1:
            # single child: its own best realization stands in directly
            # (for splitjoins the outer cut already routes its share).
            result = self.best(container.children[lo])
            self._memo[key] = result
            return result

        candidates: list[Config] = []

        # collapse the whole range (LINEAR / FREQ); multi-child collapse
        # coarsens granularity, so it is skipped inside feedback cycles
        node = None if self._feedback_depth > 0 \
            else self._node_for_range(container, lo, hi)
        if node is not None:
            items_out = self._range_items_out(container, lo, hi)
            label = f"{container.name}[{lo}:{hi}]"
            candidates += self._collapse_configs(node, items_out, label)

        # cuts (NONE): every pivot splits the range in two
        for pivot in range(lo + 1, hi):
            left = self._best_range(container, lo, pivot)
            right = self._best_range(container, pivot, hi)
            cost = left.cost + right.cost
            if isinstance(container, Pipeline):
                stream = self._cut_pipeline(container, left.stream,
                                            right.stream)
            else:
                stream = self._cut_splitjoin(container, lo, pivot, hi,
                                             left.stream, right.stream)
            candidates.append(Config(cost, stream, "cut"))

        result = min(candidates, key=lambda c: c.cost)
        self._memo[key] = result
        return result

    @staticmethod
    def _cut_pipeline(container: Pipeline, left: Stream,
                      right: Stream) -> Pipeline:
        """Two realized halves in sequence; nested pipelines flatten."""
        parts: list[Stream] = []
        for part in (left, right):
            if isinstance(part, Pipeline):
                parts.extend(part.children)
            else:
                parts.append(part)
        return Pipeline(parts, name=container.name)

    @staticmethod
    def _cut_splitjoin(container: SplitJoin, lo: int, pivot: int,
                       hi: int, left: Stream, right: Stream) -> SplitJoin:
        """Nest the range as two groups with summed splitter/joiner weights.

        Each realized group already encodes its internal routing (a deeper
        cut yields a nested splitjoin; a collapse yields a leaf whose
        matrix absorbed the sliced splitter and joiner), so the groups
        plug in directly.
        """
        w = container.joiner.weights
        joiner = RoundRobin((sum(w[lo:pivot]), sum(w[pivot:hi])))
        if isinstance(container.splitter, Duplicate):
            splitter: Duplicate | RoundRobin = Duplicate()
        else:
            v = container.splitter.weights
            splitter = RoundRobin((sum(v[lo:pivot]), sum(v[pivot:hi])))
        return SplitJoin(splitter, [left, right], joiner,
                         name=container.name)


def select_optimizations(program: Stream,
                         lmap: LinearityMap | None = None,
                         max_matrix_elems: int = 4_000_000) \
        -> SelectionResult:
    """Run automatic optimization selection on a whole program.

    Returns the rebuilt program realizing the minimal-cost configuration.
    """
    selector = OptimizationSelector(program, lmap, max_matrix_elems)
    best = selector.best(program)
    return SelectionResult(stream=best.stream, cost=best.cost,
                           decisions=dict(selector._memo))
