"""Optimization selection via dynamic programming (thesis §4.3).

For every stream (and every contiguous child range of every container) the
selector evaluates three ways of realizing it:

* collapse the region and run it in the **time domain** (LINEAR),
* collapse the region and run it in the **frequency domain** (FREQ),
* leave it **uncollapsed** (NONE) — realized either by descending into a
  single child or by *cutting* the region into two sub-regions (pipeline
  ranges cut horizontally, splitjoin ranges vertically) whose costs add.

Costs are normalized per steady state of the whole program: a candidate
implementation of a region with push rate u' fires ``items_out / u'``
times per steady state, where ``items_out`` is the data volume crossing
the region's output edge (computed once from the original schedule).
Non-linear leaves cost zero under NONE, as in the thesis, so the search
concentrates on the linear portions.

Splitjoin cuts nest the range as two groups under an outer splitter and
joiner whose weights are the per-group sums — semantically identical to
the flat construct, which is what makes the cut a pure refactoring.

The result is both the minimal cost and the rebuilt optimized graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CombinationError, SchedulingError, StreamGraphError
from ..frequency.filters import make_frequency_stream
from ..graph.scheduler import steady_state
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             PrimitiveFilter, RoundRobin, SplitJoin, Stream)
from ..linear.combine import (LinearityMap, analyze, combine_stateful_run,
                              make_stateful_linear_leaf)
from ..linear.filters import LinearFilter
from ..linear.node import LinearNode
from ..linear.pipeline_comb import combine_pipeline_pair
from ..linear.splitjoin_comb import combine_splitjoin
from .costs import (DEFAULT_COST_BATCH, batched_direct_cost,
                    batched_frequency_cost, batched_stateful_cost,
                    direct_cost, frequency_cost, stateful_direct_cost)


@dataclass
class Config:
    """A costed realization of a region (thesis Figure 4-3)."""

    cost: float
    stream: Stream
    choice: str  # 'linear' | 'freq' | 'none' | 'cut'


@dataclass
class SelectionResult:
    stream: Stream
    cost: float
    decisions: dict


class OptimizationSelector:
    """Runs the DP over one program graph."""

    def __init__(self, program: Stream, lmap: LinearityMap | None = None,
                 max_matrix_elems: int = 4_000_000,
                 min_freq_peek: int = 2, cost_model: str = "thesis",
                 batch: int = DEFAULT_COST_BATCH, stateful: bool = False,
                 policy=None):
        self.program = program
        self.lmap = lmap if lmap is not None else analyze(program)
        self.max_matrix_elems = max_matrix_elems
        self.min_freq_peek = min_freq_peek
        #: enable the §7.1 stateful-linear rewrite (the plan pipeline's
        #: optimize="auto"); off by default so the paper's autosel
        #: configuration measures exactly the thesis transformations
        self.stateful = stateful
        #: numeric policy whose calibrated throughputs the batched model
        #: consults (None: the default float64 constants)
        self.policy = policy
        if cost_model == "thesis":
            self._direct_cost = direct_cost
            self._freq_cost = frequency_cost
            self._stateful_cost = stateful_direct_cost
        elif cost_model == "batched":
            self._direct_cost = lambda n: batched_direct_cost(n, batch)
            self._freq_cost = lambda n: batched_frequency_cost(
                n, batch, policy=policy)
            self._stateful_cost = lambda n: batched_stateful_cost(
                n, batch, policy=policy)
        else:
            raise ValueError(f"unknown cost model {cost_model!r} "
                             "(expected 'thesis' or 'batched')")
        self.cost_model = cost_model
        self._memo: dict = {}
        self._region_nodes: dict = {}
        self._out_items: dict[int, float] = {}
        self._feedback_depth = 0
        self._compute_data_volumes()

    # ------------------------------------------------------------------
    # data volumes (the executionsPerSteadyState normalization)
    # ------------------------------------------------------------------
    def _compute_data_volumes(self):
        def visit(stream: Stream, mult: float):
            if isinstance(stream, (Filter, PrimitiveFilter)):
                self._out_items[id(stream)] = mult * stream.push
                return
            sub = steady_state(stream)
            self._out_items[id(stream)] = mult * sub.push
            if isinstance(stream, (Pipeline, SplitJoin)):
                for child in stream.children:
                    visit(child, mult * sub.multiplicity(child))
            elif isinstance(stream, FeedbackLoop):
                visit(stream.body, mult * sub.multiplicity(stream.body))
                visit(stream.loop, mult * sub.multiplicity(stream.loop))

        visit(self.program, 1.0)

    @staticmethod
    def _firings(items_out: float, push: int) -> float:
        return items_out / push if push else 0.0

    # ------------------------------------------------------------------
    # region linear nodes
    # ------------------------------------------------------------------
    def _node_for_range(self, container, lo: int, hi: int) \
            -> LinearNode | None:
        """Linear node of children[lo:hi] of a container, or None."""
        key = (id(container), lo, hi)
        if key in self._region_nodes:
            return self._region_nodes[key]
        node = None
        children = container.children[lo:hi]
        child_nodes = [self.lmap.node_for(c) for c in children]
        if all(n is not None for n in child_nodes):
            try:
                if isinstance(container, Pipeline):
                    acc = child_nodes[0]
                    for n in child_nodes[1:]:
                        acc = combine_pipeline_pair(acc, n)
                        if acc.peek * acc.push > self.max_matrix_elems:
                            raise CombinationError("matrix too large")
                    node = acc
                else:  # SplitJoin range
                    splitter = container.splitter
                    if isinstance(splitter, RoundRobin):
                        splitter = RoundRobin(splitter.weights[lo:hi])
                    joiner = RoundRobin(container.joiner.weights[lo:hi])
                    node = combine_splitjoin(splitter, child_nodes, joiner)
                    if node.peek * node.push > self.max_matrix_elems:
                        node = None
            except (CombinationError, SchedulingError):
                node = None
        self._region_nodes[key] = node
        return node

    # ------------------------------------------------------------------
    # collapse candidates (thesis Figure 4-5, getNodeCost)
    # ------------------------------------------------------------------
    def _collapse_configs(self, node: LinearNode, items_out: float,
                          label: str) -> list[Config]:
        configs = []
        firings = self._firings(items_out, node.push)
        configs.append(Config(firings * self._direct_cost(node),
                              LinearFilter(node, name=f"Linear[{label}]"),
                              "linear"))
        if self._feedback_depth > 0:
            # frequency filters change granularity -> unsafe in a cycle
            return configs
        if node.peek >= self.min_freq_peek:
            try:
                freq_stream = make_frequency_stream(
                    node, name=f"Freq[{label}]")
                configs.append(Config(firings * self._freq_cost(node),
                                      freq_stream, "freq"))
            except StreamGraphError:
                pass
        return configs

    # ------------------------------------------------------------------
    # the DP
    # ------------------------------------------------------------------
    def best(self, stream: Stream) -> Config:
        """Minimal-cost realization of a whole stream (ANY transform)."""
        key = id(stream)
        if key in self._memo:
            return self._memo[key]
        items_out = self._out_items.get(id(stream), 0.0)

        if isinstance(stream, (Filter, PrimitiveFilter)):
            node = self.lmap.node_for(stream)
            snode = (self.lmap.stateful_node_for(stream)
                     if self.stateful and node is None else None)
            if node is None and snode is not None:
                # stateful-linear leaf (§7.1): replace with the explicit
                # state-space primitive — leaving it in place would cost
                # the same (the planner auto-extracts the identical
                # node), so the collapsed leaf stands in directly.
                cost = (self._firings(items_out, snode.push)
                        * self._stateful_cost(snode))
                result = Config(
                    cost, make_stateful_linear_leaf(
                        snode, stream, self._feedback_depth > 0),
                    "stateful")
            elif node is None:
                result = Config(0.0, stream, "none")
            else:
                candidates = [Config(
                    self._firings(items_out, node.push)
                    * self._direct_cost(node),
                    stream, "none")]
                candidates += self._collapse_configs(node, items_out,
                                                     stream.name)
                result = min(candidates, key=lambda c: c.cost)
        elif isinstance(stream, (Pipeline, SplitJoin)):
            result = self._best_range(stream, 0, len(stream.children))
        elif isinstance(stream, FeedbackLoop):
            self._feedback_depth += 1
            body = self.best(stream.body)
            loop = self.best(stream.loop)
            self._feedback_depth -= 1
            result = Config(
                body.cost + loop.cost,
                FeedbackLoop(body.stream, loop.stream, stream.joiner,
                             stream.splitter, stream.enqueued,
                             name=stream.name),
                "none")
        else:
            raise TypeError(f"unknown stream {stream!r}")
        self._memo[key] = result
        return result

    def _rate_preserving_range(self, container, lo: int, hi: int) -> bool:
        """True when collapsing children[lo:hi] cannot deadlock a cycle.

        Sufficient condition: a pipeline chain of lookahead-free children
        (peek == pop) firing exactly once each per combined firing
        (adjacent push == pop), so the collapsed leaf needs exactly the
        items the first child needed — the cycle's delay budget is
        untouched.
        """
        if not isinstance(container, Pipeline):
            return False
        nodes = [self.lmap.any_node_for(c) for c in container.children[lo:hi]]
        if any(n is None for n in nodes):
            return False
        if any(n.peek != n.pop for n in nodes):
            return False
        return all(a.push == b.pop for a, b in zip(nodes, nodes[1:]))

    def _stateful_node_for_range(self, container, lo: int, hi: int):
        """State-space node of a Pipeline range with >= 1 stateful-linear
        child (stateless children embed with k = 0), or None."""
        key = ("stateful", id(container), lo, hi)
        if key in self._region_nodes:
            return self._region_nodes[key]
        node = None
        if isinstance(container, Pipeline):
            children = list(container.children[lo:hi])
            if any(self.lmap.is_stateful_linear(c) for c in children) and \
                    all(self.lmap.any_node_for(c) is not None
                        for c in children):
                node = combine_stateful_run(
                    self.lmap, children,
                    max_matrix_elems=self.max_matrix_elems)
        self._region_nodes[key] = node
        return node

    def _range_items_out(self, container, lo: int, hi: int) -> float:
        if isinstance(container, Pipeline):
            return self._out_items.get(id(container.children[hi - 1]), 0.0)
        return sum(self._out_items.get(id(c), 0.0)
                   for c in container.children[lo:hi])

    def _best_range(self, container, lo: int, hi: int) -> Config:
        key = (id(container), lo, hi)
        if key in self._memo:
            return self._memo[key]

        if hi - lo == 1:
            # single child: its own best realization stands in directly
            # (for splitjoins the outer cut already routes its share).
            result = self.best(container.children[lo])
            self._memo[key] = result
            return result

        candidates: list[Config] = []

        # collapse the whole range (LINEAR / FREQ); multi-child collapse
        # usually coarsens granularity, so inside feedback cycles it is
        # allowed only when the combined unit demands no more buffered
        # input than the original finest-grained firing did
        if self._feedback_depth > 0:
            node = (self._node_for_range(container, lo, hi)
                    if self._rate_preserving_range(container, lo, hi)
                    else None)
        else:
            node = self._node_for_range(container, lo, hi)
        if node is not None:
            items_out = self._range_items_out(container, lo, hi)
            label = f"{container.name}[{lo}:{hi}]"
            candidates += self._collapse_configs(node, items_out, label)

        # stateful collapse (§7.1): a run containing IIR-style leaves
        # combines into one state-space leaf, priced dense + state advance
        if self.stateful and (self._feedback_depth == 0 or
                              self._rate_preserving_range(container, lo, hi)):
            snode = self._stateful_node_for_range(container, lo, hi)
            if snode is not None:
                items_out = self._range_items_out(container, lo, hi)
                sub = Pipeline(container.children[lo:hi],
                               name=f"{container.name}[{lo}:{hi}]")
                candidates.append(Config(
                    self._firings(items_out, snode.push)
                    * self._stateful_cost(snode),
                    make_stateful_linear_leaf(snode, sub,
                                              self._feedback_depth > 0),
                    "stateful"))

        # cuts (NONE): every pivot splits the range in two
        for pivot in range(lo + 1, hi):
            left = self._best_range(container, lo, pivot)
            right = self._best_range(container, pivot, hi)
            cost = left.cost + right.cost
            if isinstance(container, Pipeline):
                stream = self._cut_pipeline(container, left.stream,
                                            right.stream)
            else:
                stream = self._cut_splitjoin(container, lo, pivot, hi,
                                             left, right)
            candidates.append(Config(cost, stream, "cut"))

        result = min(candidates, key=lambda c: c.cost)
        self._memo[key] = result
        return result

    @staticmethod
    def _cut_pipeline(container: Pipeline, left: Stream,
                      right: Stream) -> Pipeline:
        """Two realized halves in sequence; nested pipelines flatten."""
        parts: list[Stream] = []
        for part in (left, right):
            if isinstance(part, Pipeline):
                parts.extend(part.children)
            else:
                parts.append(part)
        return Pipeline(parts, name=container.name)

    @staticmethod
    def _cut_splitjoin(container: SplitJoin, lo: int, pivot: int,
                       hi: int, left: Config, right: Config) -> SplitJoin:
        """Realize the two groups of a cut with summed splitter/joiner
        weights, re-flattening nested cuts.

        Each realized group already encodes its internal routing (a
        collapse yields a leaf whose matrix absorbed the sliced splitter
        and joiner), so the groups plug in directly.  A group that is
        itself a *cut* of this container is spliced back into one flat
        splitjoin: one outer round pulls exactly one inner round, so the
        flat roundrobin emits the identical item sequence — and the
        executor materializes one splitter/joiner instead of a binary
        tree of them (per-item copies the batched backend would pay for).
        """
        dup = isinstance(container.splitter, Duplicate)
        w = container.joiner.weights
        v = None if dup else container.splitter.weights
        children: list[Stream] = []
        join_w: list[int] = []
        split_w: list[int] = []
        for cfg, (a, b) in ((left, (lo, pivot)), (right, (pivot, hi))):
            part = cfg.stream
            if cfg.choice == "cut" and isinstance(part, SplitJoin):
                children.extend(part.children)
                join_w.extend(part.joiner.weights)
                if not dup:
                    split_w.extend(part.splitter.weights)
            else:
                children.append(part)
                join_w.append(sum(w[a:b]))
                if not dup:
                    split_w.append(sum(v[a:b]))
        splitter: Duplicate | RoundRobin = (
            Duplicate() if dup else RoundRobin(tuple(split_w)))
        return SplitJoin(splitter, children, RoundRobin(tuple(join_w)),
                         name=container.name)


def select_optimizations(program: Stream,
                         lmap: LinearityMap | None = None,
                         max_matrix_elems: int = 4_000_000,
                         cost_model: str = "thesis",
                         batch: int = DEFAULT_COST_BATCH,
                         stateful: bool = False,
                         policy=None) \
        -> SelectionResult:
    """Run automatic optimization selection on a whole program.

    ``cost_model="thesis"`` prices scalar firings (§4.3.3);
    ``cost_model="batched"`` prices the plan backend's batched execution
    (dense BLAS matmuls, batch-amortized FFT setup) and is what
    ``optimize="auto"`` uses.  ``stateful=True`` additionally lets the
    DP replace stateful-linear leaves and collapse stateful pipeline
    runs (§7.1) — the plan pipeline enables it, the paper's autosel
    configuration does not.  Returns the rebuilt program realizing the
    minimal-cost configuration.
    """
    selector = OptimizationSelector(program, lmap, max_matrix_elems,
                                    cost_model=cost_model, batch=batch,
                                    stateful=stateful, policy=policy)
    best = selector.best(program)
    return SelectionResult(stream=best.stream, cost=best.cost,
                           decisions=dict(selector._memo))
