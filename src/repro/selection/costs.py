"""Cost functions for optimization selection (thesis §4.3.3).

``direct_cost`` follows the thesis formula: a per-firing constant of 185
plus 2u, one unit per non-zero offset, and three per non-zero matrix entry
(multiply + add + load).

``frequency_cost`` is reconstructed (the thesis text of the formula is
partly garbled in our source); we make it *self-consistent with the
implementation*: the analytic FLOP count of one optimized frequency block,
normalized per node firing, plus the thesis' decimator penalty
``dec(s) = (o-1)*(185 + 4u)`` and the same 185 + 2u per-firing constant.
The decisive properties of the original are preserved:

* for pop = 1 and large peek, cost grows ~ lg e per output while the
  direct cost grows ~ 3e — frequency wins for big filters;
* every extra popped item multiplies the convolution work and adds the
  decimator penalty — frequency loses badly for large pop (the Radar
  case, thesis §5.2).
"""

from __future__ import annotations

from ..frequency.fftlib import (elementwise_complex_mult_counts,
                                fft_size_for, fftw_counts)
from ..linear.node import LinearNode

#: Per-firing constant overhead (function call, buffer management) used by
#: the thesis' cost model.
FIRING_OVERHEAD = 185.0


def direct_cost(node: LinearNode) -> float:
    """Estimated per-firing execution time of the direct implementation."""
    return (FIRING_OVERHEAD + 2.0 * node.push + node.nnz_b
            + 3.0 * node.nnz)


def decimator_cost(node: LinearNode) -> float:
    """dec(s) = (o - 1) * (185 + 4u): the cost of discarding extra outputs."""
    if node.pop <= 1:
        return 0.0
    return (node.pop - 1) * (FIRING_OVERHEAD + 4.0 * node.push)


def frequency_block_flops(peek: int, push: int,
                          fft_size: int | None = None) -> float:
    """FLOPs of one optimized-frequency block for an (e, u) node at pop 1."""
    e, u = peek, push
    n = fft_size if fft_size is not None else fft_size_for(e)
    m = n - 2 * e + 1
    if m < 1:
        return float("inf")
    r = m + e - 1
    block = fftw_counts(n).scaled(1 + u)
    block.add(elementwise_complex_mult_counts(n // 2 + 1).scaled(u))
    flops = block.flops + u * (e - 1) + u * r  # partials + offset adds
    return flops / r  # per pretend (pop-1) firing


def frequency_cost(node: LinearNode, fft_size: int | None = None) -> float:
    """Estimated per-firing execution time of the frequency implementation."""
    per_input = frequency_block_flops(node.peek, node.push, fft_size)
    return (FIRING_OVERHEAD + 2.0 * node.push
            + node.pop * per_input
            + decimator_cost(node))


# ---------------------------------------------------------------------------
# Batched cost model (the plan backend's execution reality)
# ---------------------------------------------------------------------------
#
# The thesis model prices *scalar* firings: a 185-op call overhead per
# firing and per-push bookkeeping dominate small filters, which is why the
# DP can prefer leaving tiny filters alone.  The plan backend executes B
# firings per kernel dispatch, so those overheads amortize by 1/B and the
# arithmetic itself changes character: the direct implementation becomes a
# dense (B, e) @ (e, u) BLAS product (zero-skipping no longer applies),
# and a frequency block's FFT setup is shared across the whole batch while
# the decimator degenerates to a strided slice.

#: Default batch size the batched cost model amortizes per-firing
#: overheads over (a conservative stand-in for plan chunk sizes, which
#: are typically much larger).
DEFAULT_COST_BATCH = 1024


def batched_direct_cost(node: LinearNode,
                        batch: int = DEFAULT_COST_BATCH) -> float:
    """Per-firing cost of the plan backend's batched dense matmul."""
    return (FIRING_OVERHEAD / batch
            + 2.0 * node.peek * node.push)  # dense multiply-accumulate


#: Relative per-FLOP cost of the batched FFT path vs the dense BLAS
#: matmul: rfft -> pointwise complex product -> irfft streams several
#: large complex temporaries, so its effective throughput per counted
#: FLOP is a small factor worse than one fused GEMM.  This is the
#: *analytic fallback*; with a calibration cache present
#: (:mod:`repro.exec.calibrate`) the measured fft/matmul ns-per-flop
#: ratio of the actual machine replaces it.
FFT_THROUGHPUT_PENALTY = 2.0


def _fft_penalty(peek: int, fft_size: int, policy=None) -> float:
    """The FFT-vs-matmul throughput penalty: measured when a calibration
    for the policy's dtype exists, the modeled constant otherwise."""
    from ..exec.calibrate import active_calibration  # deferred: no cycle

    cal = active_calibration()
    if cal is not None:
        name = policy.name if policy is not None else "f64"
        ratio = cal.fft_matmul_ratio(name, peek=peek, fft_size=fft_size)
        if ratio is not None:
            return ratio
    return FFT_THROUGHPUT_PENALTY


def batched_frequency_cost(node: LinearNode,
                           batch: int = DEFAULT_COST_BATCH,
                           fft_size: int | None = None,
                           policy=None) -> float:
    """Per-firing cost of the plan backend's batched FFT convolution.

    The per-flop penalty of the FFT path relative to the dense matmul
    comes from the calibration cache when one is present for this
    machine (the empirically-tuned DP the paper argues for), else from
    the modeled :data:`FFT_THROUGHPUT_PENALTY`.
    """
    n = fft_size if fft_size is not None else fft_size_for(node.peek)
    per_input = frequency_block_flops(node.peek, node.push, n)
    return (FIRING_OVERHEAD / batch
            + node.pop * per_input * _fft_penalty(node.peek, n, policy)
            # batched decimator: one strided copy over the discarded items
            + (node.pop - 1) * node.push)


# ---------------------------------------------------------------------------
# Stateful (state-space) leaves — §7.1
# ---------------------------------------------------------------------------


def _stateful_nnz(node) -> tuple[int, int]:
    import numpy as np

    nnz = sum(int(np.count_nonzero(m))
              for m in (node.Ax, node.As, node.Cx, node.Cs))
    nnz_b = int(np.count_nonzero(node.bx)) + int(np.count_nonzero(node.bs))
    return nnz, nnz_b


def stateful_direct_cost(node) -> float:
    """Thesis-style scalar-firing cost of a stateful-linear leaf: the
    direct formula over the output map *and* the state advance."""
    nnz, nnz_b = _stateful_nnz(node)
    return FIRING_OVERHEAD + 2.0 * node.push + nnz_b + 3.0 * nnz


def batched_stateful_cost(node, batch: int = DEFAULT_COST_BATCH,
                          policy=None) -> float:
    """Per-firing cost of the lifted stateful kernel: the dense case
    plus the state advance, with the block scan's carry overhead
    (charged at the block length the kernel will actually use — the
    calibrated one when a calibration cache is present)."""
    from ..exec.kernels import stateful_block_length  # deferred: no cycle

    k = node.state_dim
    scan_block = stateful_block_length(node.pop, node.push, policy)
    return (FIRING_OVERHEAD / batch
            + FIRING_OVERHEAD / scan_block  # per-block state carry
            + 2.0 * (node.peek + k) * node.push  # dense output map
            + 2.0 * (node.peek + k) * k)  # dense state advance


# ---------------------------------------------------------------------------
# Data-parallel fission — fissioned vs fused (parallel engine)
# ---------------------------------------------------------------------------

#: Modeled cost of dispatching one parallel task (pickling a message,
#: pipe round trip, cursor bookkeeping), in the same abstract units as
#: FIRING_OVERHEAD, amortized over the batch like it.
FISSION_DISPATCH_OVERHEAD = 50_000.0


def fission_speedup(node, k: int, batch: int = DEFAULT_COST_BATCH,
                    policy=None) -> float:
    """Estimated wall-clock speedup of ``k``-way data-parallel fission
    of a linear (or stateful-linear) leaf over the fused batched kernel.

    ``peek == pop`` stateless leaves fission by round-robin cloning, so
    the parallel compute is exactly ``fused / k``.  Lookahead and
    stateful leaves go through the state-monoid lift: every replica
    reads the full ``k``-firing window ``E = e + (k-1)·o`` and repeats
    the (tiny) state advance, so per-replica work inflates by roughly
    ``(E + k_s) / (e + k_s)`` before dividing by ``k`` — peek-dominated
    filters amortize the inflation, shallow ones don't.  Split/join
    copies and task dispatch are charged as serial overhead.  All terms
    reuse the calibrated batched cost model, so a measured machine
    prices fission with the same constants as the selection DP.
    """
    if k <= 1:
        return 1.0
    ks = getattr(node, "state_dim", 0)
    e, o, u = node.peek, node.pop, node.push
    if ks == 0 and e == o:
        fused = batched_direct_cost(node, batch)
        compute = fused / k
        copies = o + u  # round-robin scatter + gather, serial
    else:
        if ks:
            fused = batched_stateful_cost(node, batch, policy)
        else:
            fused = batched_direct_cost(node, batch)
        E = e + (k - 1) * o
        # replica firing: dense output slice + full state advance, once
        # per k original firings, spread over k parallel replicas
        replica = (FIRING_OVERHEAD / batch
                   + 2.0 * (E + ks) * u
                   + 2.0 * (E + ks) * ks)
        compute = replica / k
        copies = o * k + u  # duplicate broadcast + gather, serial
    serial = copies + FISSION_DISPATCH_OVERHEAD / batch
    return fused / (compute + serial)
