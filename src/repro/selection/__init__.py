"""Automatic optimization selection (dynamic programming, thesis §4.3)."""

from .costs import (decimator_cost, direct_cost, frequency_block_flops,
                    frequency_cost)
from .dp import (Config, OptimizationSelector, SelectionResult,
                 select_optimizations)

__all__ = [
    "direct_cost", "frequency_cost", "decimator_cost",
    "frequency_block_flops",
    "Config", "OptimizationSelector", "SelectionResult",
    "select_optimizations",
]
