"""Automatic optimization selection (dynamic programming, thesis §4.3)."""

from .costs import (DEFAULT_COST_BATCH, batched_direct_cost,
                    batched_frequency_cost, decimator_cost, direct_cost,
                    frequency_block_flops, frequency_cost)
from .dp import (Config, OptimizationSelector, SelectionResult,
                 select_optimizations)

__all__ = [
    "direct_cost", "frequency_cost", "decimator_cost",
    "frequency_block_flops",
    "batched_direct_cost", "batched_frequency_cost", "DEFAULT_COST_BATCH",
    "Config", "OptimizationSelector", "SelectionResult",
    "select_optimizations",
]
