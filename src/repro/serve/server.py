"""The asyncio session server: many clients, one shared plan cache.

Architecture: the event loop owns framing and connection lifecycle;
session work — compiling on an OPEN, advancing on PUSH/RUN — runs on a
bounded thread pool, so one client's matmul never blocks another
client's frames.  Exception: requests a session's own history predicts
to be sub-millisecond run *inline* on the loop (see
``ServeConfig.inline_fast_path``) — for small steady-state pushes the
thread-pool hop costs several times the work itself, and blocking the
loop for less than a millisecond is cheaper than the churn.  Each
connection drives at most one session at a time
(frames on a connection are processed strictly in order), which is what
makes pooled reuse serial and interleaved streams deterministic:
concurrent sessions of the same graph share only the immutable compiled
plan, never mutable execution state.

Robustness:

* **Backpressure on input** — ``FEED``/``PUSH`` data that would take a
  session's fed-but-unconsumed input past
  ``config.max_pending_samples`` is rejected with a ``backpressure``
  error frame *before* buffering, so a client that feeds without
  draining caps out instead of growing server memory.
* **Backpressure on output** — every reply awaits the transport drain;
  a client that stops reading stalls its own handler (bounded by the
  socket write buffer), not the server.
* **Per-request timeouts** — each request runs under
  ``config.request_timeout``; expiry returns a clean ``timeout`` error
  frame and poisons the session (its worker thread may still be
  running) so the pool closes it instead of recycling it.
* **Idle TTL** — a background sweep closes sessions parked longer than
  ``config.idle_ttl``, unpinning their plan-cache entries.

Observability: every counter, gauge, and latency histogram lives in a
:class:`~repro.serve.metrics.MetricsRegistry` exposed through the
``STATS`` protocol command (text dump) and ``server.metrics``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..errors import (ChunkDtypeError, CompileOptionError, InterpError,
                      ProtocolError, ReproError, SessionClosedError)
from . import protocol as P
from .metrics import MetricsRegistry
from .pool import SessionPool

__all__ = ["ServeConfig", "StreamServer"]

_MODES = ("push", "pull")


@dataclass
class ServeConfig:
    """Knobs of one :class:`StreamServer` (see module docstring)."""

    #: backends the server accepts in OPEN specs.  All three share the
    #: session interface; restrict to ("plan",) to refuse scalar work.
    backends: tuple = ("interp", "compiled", "plan")
    #: refuse single frames above this many bytes
    max_frame_bytes: int = P.DEFAULT_MAX_FRAME_BYTES
    #: per-session cap on fed-but-unconsumed input samples
    max_pending_samples: int = 1 << 20
    #: seconds one request may run before a ``timeout`` error frame
    request_timeout: float = 30.0
    #: sessions whose recent requests averaged under this many seconds
    #: run the next request *inline* on the event loop instead of paying
    #: a thread-pool hop (~0.15 ms of future/timer/GIL churn per
    #: request — several times the work itself for a small push).  The
    #: first request after a compile always goes to a worker, so the
    #: predictor only ever inlines work it has seen run fast.  Inline
    #: requests cannot be timed out — safe because they are predicted
    #: orders of magnitude under ``request_timeout``.  0 disables.
    inline_fast_path: float = 0.002
    #: seconds a parked session survives before TTL eviction
    idle_ttl: float = 60.0
    #: eviction sweep period (default: ``idle_ttl / 4``, floored)
    evict_interval: float | None = None
    #: parked sessions kept per graph key
    max_idle_per_key: int = 8
    #: session worker threads (None: ThreadPoolExecutor default)
    max_workers: int | None = None


def _code_for(exc: Exception) -> str:
    """Machine-readable error-frame code for an exception."""
    if isinstance(exc, CompileOptionError):
        return "bad-option"
    if isinstance(exc, ChunkDtypeError):
        return "bad-dtype"
    if isinstance(exc, SessionClosedError):
        return "closed"
    if isinstance(exc, ProtocolError):
        return exc.code
    if isinstance(exc, (KeyError, ValueError)):
        return "bad-request"
    if isinstance(exc, (InterpError, ReproError)):
        return "exec"
    return "internal"


class _Connection:
    """Per-connection state: the held pooled session, if any."""

    __slots__ = ("pooled", "peer")

    def __init__(self, peer: str):
        self.pooled = None
        self.peer = peer


class StreamServer:
    """A concurrent streaming session server over asyncio streams."""

    def __init__(self, config: ServeConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pool = SessionPool(
            max_idle_per_key=self.config.max_idle_per_key,
            idle_ttl=self.config.idle_ttl, metrics=self.metrics)
        self._server: asyncio.AbstractServer | None = None
        self._workers: ThreadPoolExecutor | None = None
        self._evict_task: asyncio.Task | None = None
        self._nonce = itertools.count()
        self.address = None  #: ("host", port) or unix-socket path

    # -- lifecycle ---------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    path: str | None = None):
        """Bind and start serving; returns the bound address.

        ``path`` selects a unix-domain socket; otherwise TCP on
        ``host:port`` (port 0 = ephemeral, read ``server.address``).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._workers = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-serve")
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path)
            self.address = path
        else:
            self._server = await asyncio.start_server(
                self._handle, host, port)
            self.address = self._server.sockets[0].getsockname()[:2]
        interval = self.config.evict_interval
        if interval is None:
            interval = max(self.config.idle_ttl / 4, 0.05)
        self._evict_task = asyncio.get_running_loop().create_task(
            self._evict_loop(interval))
        return self.address

    async def aclose(self) -> None:
        """Stop accepting, cancel the evictor, close pooled sessions."""
        if self._evict_task is not None:
            self._evict_task.cancel()
            try:
                await self._evict_task
            except asyncio.CancelledError:
                pass
            self._evict_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.close_all()
        if self._workers is not None:
            self._workers.shutdown(wait=False, cancel_futures=True)
            self._workers = None

    async def _evict_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            self.pool.evict_idle()

    # -- request execution -------------------------------------------------
    async def _in_worker(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await asyncio.wait_for(
            loop.run_in_executor(self._workers, fn, *args),
            timeout=self.config.request_timeout)

    def _resolve_spec(self, spec: dict):
        """(key, label, factory) for an OPEN spec — runs on a worker.

        The key is the graph's content fingerprint plus
        (backend, optimize, mode), so every route to the same program —
        app registry or DSL text — shares one pool bucket.  Graphs whose
        fingerprint is single-use (opaque callables) get a nonce key:
        correct, just never shared.
        """
        from ..exec.cache import fingerprint_stream
        from ..session import StreamSession

        backend = spec.get("backend", "plan")
        optimize = spec.get("optimize", "none")
        mode = spec.get("mode", "push")
        if backend not in self.config.backends:
            raise CompileOptionError("backend", backend,
                                     self.config.backends)
        if mode not in _MODES:
            raise CompileOptionError("mode", mode, _MODES)

        if "app" in spec:
            from ..apps import BENCHMARKS, resolve_app, split_app
            name = resolve_app(spec["app"])
            params = spec.get("params") or {}
            program = BENCHMARKS[name](**params)
            label = name
            if mode == "push":
                _source, graph = split_app(program)
            else:
                graph = program
        elif "dsl" in spec:
            from ..dsl import compile_source
            graph = compile_source(spec["dsl"], spec.get("top"))
            label = getattr(graph, "name", "dsl")
        else:
            raise ProtocolError(
                "OPEN spec needs an 'app' or 'dsl' field",
                code="bad-request")

        digest, single_use = fingerprint_stream(graph)
        nonce = next(self._nonce) if single_use else 0
        key = (digest, nonce, backend, optimize, mode)
        label = f"{label}/{backend}/{optimize}/{mode}"

        def factory(seed=None):
            return StreamSession(graph, backend=backend, optimize=optimize,
                                 _plan_seed=seed)

        return key, label, factory

    def _open(self, spec: dict):
        key, label, factory = self._resolve_spec(spec)
        return self.pool.acquire(key, factory, label)

    # -- connection handler ------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or \
            writer.get_extra_info("sockname") or "?"
        conn = _Connection(str(peer))
        self.metrics.gauge("serve.connections").inc()
        try:
            while True:
                try:
                    frame = await P.read_frame(
                        reader, self.config.max_frame_bytes)
                except ProtocolError as exc:
                    # unrecoverable framing state: best-effort error
                    # frame, then drop the connection
                    await self._error(writer, exc.code, str(exc))
                    break
                if frame is None:
                    break
                await self._dispatch(conn, writer, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.metrics.gauge("serve.connections").dec()
            if conn.pooled is not None:
                self.pool.release(conn.pooled)
                conn.pooled = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _error(self, writer, code: str, message: str) -> None:
        self.metrics.counter("serve.errors").inc()
        self.metrics.counter(f"serve.errors.{code}").inc()
        try:
            await P.write_frame(writer, P.ERR,
                                P.error_payload(code, message))
        except (ConnectionError, OSError):
            pass

    async def _dispatch(self, conn: _Connection, writer,
                        frame: P.Frame) -> None:
        self.metrics.counter("serve.requests").inc()
        kind = frame.kind
        t0 = time.perf_counter()
        try:
            if kind == P.PING:
                await P.write_frame(writer, P.OK)
                return
            if kind == P.STATS:
                await P.write_frame(writer, P.TXT,
                                    self.render_stats().encode("utf-8"))
                return
            if kind == P.OPEN:
                if conn.pooled is not None:
                    raise ProtocolError(
                        "connection already holds a session; CLOSE it "
                        "before opening another", code="session-open")
                spec = frame.json()
                conn.pooled = await self._in_worker(self._open, spec)
                await P.write_frame(writer, P.OK)
                return
            if kind == P.CLOSE:
                if conn.pooled is not None:
                    self.pool.release(conn.pooled)
                    conn.pooled = None
                await P.write_frame(writer, P.OK)
                return
            ps = conn.pooled
            if ps is None:
                raise ProtocolError(
                    "no session on this connection; OPEN one first",
                    code="no-session")
            session = ps.session
            if kind in (P.PUSH, P.FEED):
                arr = frame.array()
                try:
                    pending = session.pending_input
                except ReproError:
                    raise ProtocolError(
                        "session is pull-mode (the program has its own "
                        "sources); drive it with RUN", code="bad-request")
                if pending + len(arr) > self.config.max_pending_samples:
                    raise ProtocolError(
                        f"session holds {pending} unconsumed samples; "
                        f"feeding {len(arr)} more would exceed the "
                        f"{self.config.max_pending_samples}-sample "
                        "backpressure cap — RUN/PUSH to drain first",
                        code="backpressure")
                self.metrics.counter("serve.chunks.in").inc()
                self.metrics.counter("serve.samples.in").inc(len(arr))
                # high-water mark includes the chunk about to be buffered
                self.metrics.gauge("serve.pending_samples").set(
                    pending + len(arr))
                if kind == P.PUSH:
                    out = await self._run_session(ps, session.push, arr)
                    self.metrics.gauge("serve.pending_samples").set(
                        session.pending_input)
                    await self._reply_array(writer, out)
                else:
                    count = await self._run_session(ps, session.feed, arr)
                    self.metrics.gauge("serve.pending_samples").set(
                        session.pending_input)
                    await P.write_frame(writer, P.OK,
                                        int(count).to_bytes(8, "big"))
                return
            if kind == P.RUN:
                n = frame.u32()
                out = await self._run_session(ps, session.run, n)
                await self._reply_array(writer, out)
                return
            if kind == P.RESET:
                await self._run_session(ps, session.reset)
                await P.write_frame(writer, P.OK)
                return
            raise ProtocolError(f"unknown request kind {kind}",
                                code="bad-frame")
        except asyncio.TimeoutError:
            if conn.pooled is not None:
                conn.pooled.poisoned = True
            name = P.REQUEST_NAMES.get(kind, str(kind))
            await self._error(
                writer, "timeout",
                f"{name} exceeded the {self.config.request_timeout}s "
                "request timeout; the session is retired")
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # noqa: BLE001 - mapped to error frames
            await self._error(writer, _code_for(exc), str(exc))
        finally:
            self.metrics.histogram("serve.latency").observe(
                time.perf_counter() - t0)

    async def _run_session(self, ps, fn, *args):
        """Run one session operation, attributing serve time to the
        session's graph; execution errors poison the session (its stream
        position is indeterminate).

        Requests predicted fast (the session's recent average is under
        ``config.inline_fast_path``) run inline on the event loop; the
        rest go to the worker pool under the request timeout.
        """
        t0 = time.perf_counter()
        inline = (ps.avg_serve is not None
                  and ps.avg_serve < self.config.inline_fast_path)
        exec_dt = None  # pure execution time — excludes worker-queue wait
        try:
            if inline:
                self.metrics.counter("serve.requests.inline").inc()
                result = fn(*args)
                exec_dt = time.perf_counter() - t0
                return result

            def timed():
                t1 = time.perf_counter()
                r = fn(*args)
                return r, time.perf_counter() - t1

            result, exec_dt = await self._in_worker(timed)
            return result
        except asyncio.TimeoutError:
            raise
        except Exception:
            ps.poisoned = True
            raise
        finally:
            if exec_dt is not None:
                # the predictor must see what the work *costs*, not how
                # long it queued — under a cold stampede the span is
                # dominated by executor backlog, which would lock the
                # EWMA above the inline threshold forever
                ps.avg_serve = (exec_dt if ps.avg_serve is None
                                else 0.25 * exec_dt + 0.75 * ps.avg_serve)
                self.pool.record_serve(ps, exec_dt)
            else:  # timeout/error: bill the full span, skip the EWMA
                self.pool.record_serve(ps, time.perf_counter() - t0)

    async def _reply_array(self, writer, out) -> None:
        payload = P.encode_array(out)
        self.metrics.counter("serve.chunks.out").inc()
        self.metrics.counter("serve.samples.out").inc(len(payload) // 8)
        await P.write_frame(writer, P.ARR, payload)

    # -- observability -----------------------------------------------------
    def render_stats(self) -> str:
        """The ``STATS`` text dump: metrics registry + plan-cache
        counters + per-graph compile/serve accounting."""
        from ..exec.cache import plan_cache_stats

        lines = [self.metrics.render()]
        for name, value in sorted(plan_cache_stats().items()):
            lines.append(f"plan_cache.{name} {value}")
        for row in self.pool.graph_stats():
            g = row["graph"]
            lines.append(f"graph.{g}.compiles {row['compiles']}")
            lines.append(
                f"graph.{g}.compile_seconds {row['compile_seconds']:.6f}")
            lines.append(f"graph.{g}.requests {row['requests']}")
            lines.append(
                f"graph.{g}.serve_seconds {row['serve_seconds']:.6f}")
        return "\n".join(line for line in lines if line)

    def stats_snapshot(self) -> dict:
        """Metrics as a flat dict (tests and the load generator)."""
        snap = self.metrics.snapshot()
        snap["graphs"] = self.pool.graph_stats()
        return snap


def parse_stats(text: str) -> dict:
    """Parse a ``STATS`` text dump back into ``{name: float}``."""
    out = {}
    for line in text.splitlines():
        name, _, value = line.rpartition(" ")
        if name:
            try:
                out[name] = float(value)
            except ValueError:
                pass
    return out
