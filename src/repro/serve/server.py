"""The asyncio session server: many clients, one shared plan cache.

Architecture: the event loop owns framing and connection lifecycle;
session work — compiling on an OPEN, advancing on PUSH/RUN — runs on a
bounded thread pool, so one client's matmul never blocks another
client's frames.  Exception: requests a session's own history predicts
to be sub-millisecond run *inline* on the loop (see
``ServeConfig.inline_fast_path``) — for small steady-state pushes the
thread-pool hop costs several times the work itself, and blocking the
loop for less than a millisecond is cheaper than the churn.  Each
connection drives at most one session at a time
(frames on a connection are processed strictly in order), which is what
makes pooled reuse serial and interleaved streams deterministic:
concurrent sessions of the same graph share only the immutable compiled
plan, never mutable execution state.

Robustness:

* **Backpressure on input** — ``FEED``/``PUSH`` data that would take a
  session's fed-but-unconsumed input past
  ``config.max_pending_samples`` is rejected with a ``backpressure``
  error frame *before* buffering, so a client that feeds without
  draining caps out instead of growing server memory.
* **Backpressure on output** — every reply awaits the transport drain;
  a client that stops reading stalls its own handler (bounded by the
  socket write buffer), not the server.
* **Per-request deadlines** — each request runs under
  ``config.request_timeout``; expiry returns a clean ``timeout`` error
  frame and poisons the session (its worker thread may still be
  running) so the pool closes it instead of recycling it.  Further
  requests on a poisoned session get a ``poisoned`` error frame.
* **Idle TTL** — a background sweep closes sessions parked longer than
  ``config.idle_ttl``, unpinning their plan-cache entries.

Recovery (see also :mod:`repro.faults` and ``README`` §Fault
tolerance):

* **Checkpoints + degradation** — sessions journal their call history
  (:meth:`~repro.session.StreamSession.snapshot`); after every
  successful request on a resumable session the server refreshes its
  checkpoint.  When a plan-backend kernel raises mid-advance, the
  server rebuilds the session on the **compiled backend**, restores the
  checkpoint, and transparently re-runs the failed request — counted in
  ``serve.requests.degraded``, invisible to the client.  A
  per-fingerprint circuit breaker in the pool quarantines plan keys
  that poison repeatedly; new opens of a quarantined key go straight to
  the compiled backend.
* **Idempotent retries** — ``RPUSH``/``RRUN`` carry a client request
  id; executed replies are cached per session, so a retry after a lost
  reply is answered from the cache and never re-applies state.
* **RESUME** — a resumable OPEN returns a token; when the connection
  drops, the session is *parked* (not discarded) for
  ``config.resume_ttl`` seconds, then falls back to its checkpoint for
  another ``resume_ttl`` before the token expires.  A reconnecting
  client re-attaches with RESUME and continues its stream.
* **Graceful shutdown** — ``shutdown()`` (wired to SIGTERM via
  :meth:`install_signal_handlers`) stops accepting, drains in-flight
  requests under ``config.drain_deadline``, parks sessions, and
  returns a final STATS dump.

Observability: every counter, gauge, and latency histogram lives in a
:class:`~repro.serve.metrics.MetricsRegistry` exposed through the
``STATS`` protocol command (text dump) and ``server.metrics``.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import faults as _faults
from ..errors import (ChunkDtypeError, CombinationError, CompileOptionError,
                      DeadlineError, DSLError, FaultInjected, InterpError,
                      IRError, NonLinearError, ProtocolError, ReproError,
                      SchedulingError, SessionClosedError,
                      SessionPoisonedError, StreamGraphError)
from . import protocol as P
from .metrics import MetricsRegistry
from .pool import SessionPool

__all__ = ["ServeConfig", "StreamServer", "WIRE_CODES", "wire_code"]

_MODES = ("push", "pull")


@dataclass
class ServeConfig:
    """Knobs of one :class:`StreamServer` (see module docstring)."""

    #: backends the server accepts in OPEN specs.  All three share the
    #: session interface; restrict to ("plan",) to refuse scalar work.
    backends: tuple = ("interp", "compiled", "plan")
    #: refuse single frames above this many bytes
    max_frame_bytes: int = P.DEFAULT_MAX_FRAME_BYTES
    #: per-session cap on fed-but-unconsumed input samples
    max_pending_samples: int = 1 << 20
    #: seconds one request may run before a ``timeout`` error frame
    request_timeout: float = 30.0
    #: sessions whose recent requests averaged under this many seconds
    #: run the next request *inline* on the event loop instead of paying
    #: a thread-pool hop (~0.15 ms of future/timer/GIL churn per
    #: request — several times the work itself for a small push).  The
    #: first request after a compile always goes to a worker, so the
    #: predictor only ever inlines work it has seen run fast.  Inline
    #: requests cannot be timed out — safe because they are predicted
    #: orders of magnitude under ``request_timeout``.  0 disables.
    inline_fast_path: float = 0.002
    #: seconds a parked session survives before TTL eviction
    idle_ttl: float = 60.0
    #: eviction sweep period (default: ``idle_ttl / 4``, floored)
    evict_interval: float | None = None
    #: parked sessions kept per graph key
    max_idle_per_key: int = 8
    #: session worker threads (None: ThreadPoolExecutor default)
    max_workers: int | None = None
    #: seconds ``aclose``/``shutdown`` wait for in-flight requests
    #: before tearing the worker pool down
    drain_deadline: float = 5.0
    #: seconds a disconnected resumable session stays parked awaiting
    #: RESUME; its checkpoint survives a further ``resume_ttl`` after
    #: the live session is reclaimed
    resume_ttl: float = 30.0
    #: re-run a failed plan-backend request on the compiled backend
    #: from the last checkpoint (the degradation path)
    degrade: bool = True
    #: executed replies kept per resumable session for idempotent
    #: retries — must exceed the client's pipeline window
    reply_cache: int = 32
    #: journal cap (samples) for server-built sessions; 0 disables
    #: checkpoints (and with them degradation and snapshot-RESUME)
    journal_limit: int = 1 << 20
    #: execution failures per graph key before the pool's circuit
    #: breaker quarantines it (plan opens degrade to compiled)
    breaker_threshold: int = 3
    #: seconds a tripped breaker stays quarantined
    breaker_cooldown: float = 30.0


#: Declarative exception -> wire-code table; first match wins, so
#: subclasses come before their bases and ``ReproError`` is the final
#: catch-all.  ``ProtocolError`` is special-cased in :func:`wire_code`
#: (it carries its own code).  The table *is* the public error contract:
#: a test asserts every public ``ReproError`` subclass resolves through
#: it to a stable code.
WIRE_CODES: tuple = (
    (CompileOptionError, "bad-option"),
    (ChunkDtypeError, "bad-dtype"),
    (SessionClosedError, "closed"),
    (SessionPoisonedError, "poisoned"),
    (DeadlineError, "timeout"),
    (FaultInjected, "exec"),
    (DSLError, "bad-request"),
    (StreamGraphError, "bad-request"),
    (SchedulingError, "bad-request"),
    (IRError, "bad-request"),
    (NonLinearError, "exec"),
    (CombinationError, "exec"),
    (InterpError, "exec"),
    (ReproError, "exec"),
    (KeyError, "bad-request"),
    (ValueError, "bad-request"),
)


def wire_code(exc: Exception) -> str:
    """Machine-readable error-frame code for an exception."""
    if isinstance(exc, ProtocolError):
        return exc.code
    for etype, code in WIRE_CODES:
        if isinstance(exc, etype):
            return code
    return "internal"


#: Errors the degradation path may recover from: execution failures
#: mid-advance.  Client mistakes (bad dtype, pull-mode misuse, ...)
#: and protocol errors re-run identically, so they are excluded.
_RECOVERABLE = (InterpError, FaultInjected)

_NO_RECOVERY = object()


class _Connection:
    """Per-connection state: the held pooled session, if any."""

    __slots__ = ("pooled", "peer")

    def __init__(self, peer: str):
        self.pooled = None
        self.peer = peer


class _ResumeEntry:
    """A parked resumable session awaiting its client's RESUME."""

    __slots__ = ("ps", "snap", "replies", "key", "label", "factory",
                 "parked_at")

    def __init__(self, ps, parked_at: float):
        self.ps = ps  # cleared when the live session is reclaimed
        self.snap = ps.snap
        self.replies = ps.replies
        self.key = ps.key
        self.label = ps.label
        self.factory = ps.factory
        self.parked_at = parked_at


class StreamServer:
    """A concurrent streaming session server over asyncio streams."""

    def __init__(self, config: ServeConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pool = SessionPool(
            max_idle_per_key=self.config.max_idle_per_key,
            idle_ttl=self.config.idle_ttl,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown,
            metrics=self.metrics)
        self._server: asyncio.AbstractServer | None = None
        self._workers: ThreadPoolExecutor | None = None
        self._evict_task: asyncio.Task | None = None
        self._nonce = itertools.count()
        self._tokens = itertools.count(1)
        #: token -> _ResumeEntry for disconnected resumable sessions
        self._resume: dict[int, _ResumeEntry] = {}
        #: tokens issued and not yet retired (CLOSE or expiry): RESUME
        #: uses this to tell "your park is still in flight" (the old
        #: connection's teardown has not run yet — wait for it) from
        #: "never existed / expired" (fail with ``resume-lost``)
        self._issued: set[int] = set()
        self._inflight = 0
        self._drained: asyncio.Event | None = None
        self._closing = False
        #: the STATS dump :meth:`shutdown` captured before teardown
        self.final_stats: str | None = None
        self.address = None  #: ("host", port) or unix-socket path

    # -- lifecycle ---------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    path: str | None = None):
        """Bind and start serving; returns the bound address.

        ``path`` selects a unix-domain socket; otherwise TCP on
        ``host:port`` (port 0 = ephemeral, read ``server.address``).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._workers = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-serve")
        self._drained = asyncio.Event()
        self._drained.set()
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path)
            self.address = path
        else:
            self._server = await asyncio.start_server(
                self._handle, host, port)
            self.address = self._server.sockets[0].getsockname()[:2]
        interval = self.config.evict_interval
        if interval is None:
            interval = max(self.config.idle_ttl / 4, 0.05)
        self._evict_task = asyncio.get_running_loop().create_task(
            self._evict_loop(interval))
        return self.address

    def install_signal_handlers(self, signals=(signal.SIGTERM,),
                                loop=None) -> None:
        """SIGTERM (by default) triggers :meth:`shutdown`."""
        loop = loop if loop is not None else asyncio.get_running_loop()
        for sig in signals:
            loop.add_signal_handler(
                sig, lambda: loop.create_task(self.shutdown()))

    async def shutdown(self, deadline: float | None = None) -> str:
        """Graceful stop: refuse new work, drain in-flight requests
        under ``deadline`` (default ``config.drain_deadline``), park
        sessions, and return the final STATS dump (also kept as
        ``server.final_stats``)."""
        if self._closing:
            return self.final_stats or self.render_stats()
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._await_drain(deadline)
        self.final_stats = self.render_stats()
        await self.aclose()
        return self.final_stats

    async def _await_drain(self, deadline: float | None = None) -> bool:
        if deadline is None:
            deadline = self.config.drain_deadline
        if self._drained is None or self._drained.is_set():
            return True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout=deadline)
            return True
        except asyncio.TimeoutError:
            self.metrics.counter("serve.shutdown.drain_expired").inc()
            return False

    async def aclose(self) -> None:
        """Stop accepting, cancel the evictor, drain in-flight work
        (bounded by ``config.drain_deadline``), close pooled sessions.

        The drain runs *before* the worker pool shuts down: killing a
        worker mid-advance would leave a half-mutated session behind a
        reply the client already counts on."""
        self._closing = True
        if self._evict_task is not None:
            self._evict_task.cancel()
            try:
                await self._evict_task
            except asyncio.CancelledError:
                pass
            self._evict_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = await self._await_drain()
        for entry in self._resume.values():
            if entry.ps is not None:
                self.pool.release(entry.ps)
                entry.ps = None
        self._resume.clear()
        self._issued.clear()
        self.pool.close_all()
        if self._workers is not None:
            self._workers.shutdown(wait=drained, cancel_futures=not drained)
            self._workers = None
        # parallel-engine worker processes: sessions closed above already
        # retired their plans' shared rings; now stop the pool itself
        from ..parallel.pool import shutdown_pool
        shutdown_pool()

    async def _evict_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            self.pool.evict_idle()
            self._sweep_resume()

    def _sweep_resume(self, now: float | None = None) -> None:
        """Reclaim parked resumable sessions past ``resume_ttl`` (their
        checkpoint stays restorable for another ``resume_ttl``), then
        expire the tokens entirely."""
        if now is None:
            now = time.monotonic()
        ttl = self.config.resume_ttl
        for token, entry in list(self._resume.items()):
            age = now - entry.parked_at
            if entry.ps is not None and age >= ttl:
                self.metrics.gauge("serve.sessions.parked").dec()
                ps = entry.ps
                entry.ps = None
                ps.resume_token = None
                self.pool.release(ps)
            if entry.ps is None and age >= 2 * ttl:
                del self._resume[token]
                self._issued.discard(token)

    # -- request execution -------------------------------------------------
    async def _in_worker(self, fn, *args):
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(self._workers, fn, *args),
                timeout=self.config.request_timeout)
        except asyncio.TimeoutError:
            raise DeadlineError(
                f"request exceeded the {self.config.request_timeout}s "
                "deadline") from None

    def _resolve_spec(self, spec: dict):
        """(key, label, factory) for an OPEN spec — runs on a worker.

        The key is the graph's content fingerprint plus
        (backend, optimize, mode, dtype), so every route to the same
        program — app registry or DSL text — shares one pool bucket.
        Graphs whose fingerprint is single-use (opaque callables) get a
        nonce key: correct, just never shared.
        ``factory(seed, backend_override)`` builds the session; the
        override is the degradation/quarantine hook.
        """
        from ..exec.cache import fingerprint_stream
        from ..numeric import resolve_policy
        from ..session import StreamSession

        backend = spec.get("backend", "plan")
        optimize = spec.get("optimize", "none")
        mode = spec.get("mode", "push")
        policy = resolve_policy(spec.get("dtype"))
        if backend not in self.config.backends:
            raise CompileOptionError("backend", backend,
                                     self.config.backends)
        if mode not in _MODES:
            raise CompileOptionError("mode", mode, _MODES)

        if "app" in spec:
            from ..apps import BENCHMARKS, resolve_app, split_app
            name = resolve_app(spec["app"])
            params = spec.get("params") or {}
            program = BENCHMARKS[name](**params)
            label = name
            if mode == "push":
                _source, graph = split_app(program)
            else:
                graph = program
        elif "dsl" in spec:
            from ..dsl import load_source
            args = spec.get("args") or ()
            graph = load_source(spec["dsl"], spec.get("top"), *args,
                                fingerprint=True)
            label = getattr(graph, "name", "dsl")
        else:
            raise ProtocolError(
                "OPEN spec needs an 'app' or 'dsl' field",
                code="bad-request")

        digest, single_use = fingerprint_stream(graph)
        nonce = next(self._nonce) if single_use else 0
        # dtype goes at the END: the quarantine rewrite slices
        # key[:2] + ("compiled",) + key[3:] by position
        key = (digest, nonce, backend, optimize, mode, policy.name)
        label = f"{label}/{backend}/{optimize}/{mode}"
        if not policy.is_default:
            label += f"/{policy.name}"
        journal_limit = self.config.journal_limit

        def factory(seed=None, backend_override=None):
            return StreamSession(
                graph, backend=backend_override or backend,
                optimize=optimize, journal_limit=journal_limit,
                dtype=policy, _plan_seed=seed)

        return key, label, factory

    def _open(self, spec: dict):
        key, label, factory = self._resolve_spec(spec)
        if key[2] == "plan" and self.pool.quarantined(key):
            # the breaker tripped on this plan graph: serve the compiled
            # backend under its own pool key until the cooldown passes
            self.metrics.counter("serve.sessions.quarantine_opens").inc()
            key = key[:2] + ("compiled",) + key[3:]
            label += "/quarantined"

            def factory(seed=None, backend_override=None,
                        _inner=factory):
                return _inner(seed, backend_override or "compiled")

        ps = self.pool.acquire(key, factory, label)
        ps.factory = factory
        # field hygiene: a recycled session must start this client's
        # life with a fresh checkpoint and no reply cache
        ps.snap = ps.session.snapshot()
        ps.replies = None
        ps.resume_token = None
        return ps

    def _restore_session(self, entry: _ResumeEntry):
        """Rebuild a parked-then-reclaimed session from its checkpoint
        (runs on a worker)."""
        ps = self.pool.acquire(entry.key, entry.factory, entry.label)
        ps.factory = entry.factory
        try:
            ps.session.restore(entry.snap)
        except Exception:
            ps.poisoned = True
            self.pool.release(ps)
            raise
        ps.snap = entry.snap
        return ps

    # -- connection handler ------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or \
            writer.get_extra_info("sockname") or "?"
        conn = _Connection(str(peer))
        self.metrics.gauge("serve.connections").inc()
        try:
            while True:
                try:
                    frame = await P.read_frame(
                        reader, self.config.max_frame_bytes)
                except ProtocolError as exc:
                    # unrecoverable framing state: best-effort error
                    # frame, then drop the connection
                    await self._error(writer, exc.code, str(exc))
                    break
                if frame is None:
                    break
                await self._dispatch(conn, writer, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.metrics.gauge("serve.connections").dec()
            if conn.pooled is not None:
                ps = conn.pooled
                conn.pooled = None
                if ps.resume_token is not None and not self._closing:
                    self._park_for_resume(ps)
                else:
                    self.pool.release(ps)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # the handler is ending either way

    def _park_for_resume(self, ps) -> None:
        """A resumable connection dropped: park its session (or, if the
        session is poisoned, just its checkpoint) for RESUME."""
        entry = _ResumeEntry(ps, time.monotonic())
        if ps.poisoned:
            # the live session is unusable, but its last checkpoint can
            # still seed a restore
            entry.ps = None
            self.pool.release(ps)
        else:
            self.metrics.gauge("serve.sessions.parked").inc()
        self.metrics.counter("serve.sessions.parks").inc()
        self._resume[ps.resume_token] = entry

    async def _error(self, writer, code: str, message: str) -> None:
        self.metrics.counter("serve.errors").inc()
        self.metrics.counter(f"serve.errors.{code}").inc()
        try:
            await P.write_frame(writer, P.ERR,
                                P.error_payload(code, message))
        except (ConnectionError, OSError):
            pass

    async def _dispatch(self, conn: _Connection, writer,
                        frame: P.Frame) -> None:
        self.metrics.counter("serve.requests").inc()
        kind = frame.kind
        t0 = time.perf_counter()
        self._inflight += 1
        self._drained.clear()
        try:
            if kind == P.PING:
                await P.write_frame(writer, P.OK)
                return
            if kind == P.STATS:
                await P.write_frame(writer, P.TXT,
                                    self.render_stats().encode("utf-8"))
                return
            if self._closing and kind not in (P.CLOSE,):
                raise ProtocolError(
                    "server is shutting down; no new work accepted",
                    code="shutting-down")
            if kind == P.OPEN:
                if conn.pooled is not None:
                    raise ProtocolError(
                        "connection already holds a session; CLOSE it "
                        "before opening another", code="session-open")
                spec = frame.json()
                ps = await self._in_worker(self._open, spec)
                conn.pooled = ps
                if spec.get("resumable"):
                    token = next(self._tokens)
                    ps.resume_token = token
                    ps.replies = OrderedDict()
                    self._issued.add(token)
                    await P.write_frame(writer, P.OK,
                                        token.to_bytes(8, "big"))
                else:
                    await P.write_frame(writer, P.OK)
                return
            if kind == P.RESUME:
                await self._resume_session(conn, writer, frame)
                return
            if kind == P.CLOSE:
                if conn.pooled is not None:
                    ps = conn.pooled
                    conn.pooled = None
                    if ps.resume_token is not None:
                        self._issued.discard(ps.resume_token)
                    self.pool.release(ps)
                await P.write_frame(writer, P.OK)
                return
            ps = conn.pooled
            if ps is None:
                raise ProtocolError(
                    "no session on this connection; OPEN one first",
                    code="no-session")
            if ps.poisoned:
                raise SessionPoisonedError(
                    "session was poisoned by an earlier failure; "
                    "RESUME (resumable sessions) or reopen")
            if kind in (P.RPUSH, P.RRUN):
                await self._idempotent(conn, writer, frame)
                return
            session = ps.session
            if kind in (P.PUSH, P.FEED, P.PUSHT, P.FEEDT):
                if kind in (P.PUSH, P.FEED):
                    if not session.policy.is_default:
                        raise ProtocolError(
                            f"untagged float64 chunk sent to a "
                            f"{session.policy.name} session; use "
                            "PUSHT/FEEDT with a dtype tag",
                            code="dtype-mismatch")
                    arr = frame.array()
                else:
                    arr = P.decode_array_tagged(frame.payload,
                                                expected=session.policy)
                self._check_backpressure(session, len(arr))
                self.metrics.counter("serve.chunks.in").inc()
                self.metrics.counter("serve.samples.in").inc(len(arr))
                if kind in (P.PUSH, P.PUSHT):
                    out = await self._execute(ps, "push", arr)
                    self.metrics.gauge("serve.pending_samples").set(
                        session.pending_input)
                    await self._reply_array(writer, out, session.policy)
                else:
                    count = await self._execute(ps, "feed", arr)
                    self.metrics.gauge("serve.pending_samples").set(
                        session.pending_input)
                    await P.write_frame(writer, P.OK,
                                        int(count).to_bytes(8, "big"))
                return
            if kind == P.RUN:
                n = frame.u32()
                out = await self._execute(ps, "run", n)
                await self._reply_array(writer, out, session.policy)
                return
            if kind == P.RESET:
                await self._execute(ps, "reset")
                await P.write_frame(writer, P.OK)
                return
            raise ProtocolError(f"unknown request kind {kind}",
                                code="bad-frame")
        except DeadlineError as exc:
            if conn.pooled is not None:
                conn.pooled.poisoned = True
            name = P.REQUEST_NAMES.get(kind, str(kind))
            await self._error(
                writer, wire_code(exc),
                f"{name} exceeded the {self.config.request_timeout}s "
                "request timeout; the session is retired")
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # noqa: BLE001 - mapped to error frames
            await self._error(writer, wire_code(exc), str(exc))
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()
            self.metrics.histogram("serve.latency").observe(
                time.perf_counter() - t0)

    def _check_backpressure(self, session, incoming: int) -> None:
        try:
            pending = session.pending_input
        except ReproError:
            raise ProtocolError(
                "session is pull-mode (the program has its own "
                "sources); drive it with RUN", code="bad-request")
        if pending + incoming > self.config.max_pending_samples:
            raise ProtocolError(
                f"session holds {pending} unconsumed samples; "
                f"feeding {incoming} more would exceed the "
                f"{self.config.max_pending_samples}-sample "
                "backpressure cap — RUN/PUSH to drain first",
                code="backpressure")
        # high-water mark includes the chunk about to be buffered
        self.metrics.gauge("serve.pending_samples").set(
            pending + incoming)

    async def _idempotent(self, conn: _Connection, writer,
                          frame: P.Frame) -> None:
        """RPUSH/RRUN: execute once per request id; retried ids are
        answered from the session's reply cache."""
        ps = conn.pooled
        if ps.replies is None:
            raise ProtocolError(
                "RPUSH/RRUN need a resumable session (OPEN with "
                '"resumable": true)', code="bad-request")
        if not ps.session.policy.is_default:
            raise ProtocolError(
                "RPUSH/RRUN are float64-only; "
                f"this session is {ps.session.policy.name}",
                code="dtype-mismatch")
        if len(frame.payload) < 8:
            raise ProtocolError("missing request id", code="bad-request")
        rid = int.from_bytes(frame.payload[:8], "big")
        cached = ps.replies.get(rid)
        if cached is not None:
            self.metrics.counter("serve.requests.replayed").inc()
            await P.write_frame(writer, cached[0], cached[1])
            return
        if frame.kind == P.RPUSH:
            arr = P.decode_array(frame.payload[8:])
            self._check_backpressure(ps.session, len(arr))
            self.metrics.counter("serve.chunks.in").inc()
            self.metrics.counter("serve.samples.in").inc(len(arr))
            out = await self._execute(ps, "push", arr)
            self.metrics.gauge("serve.pending_samples").set(
                ps.session.pending_input)
        else:
            if len(frame.payload) != 12:
                raise ProtocolError("RRUN payload must be id + u32 n",
                                    code="bad-request")
            n = int.from_bytes(frame.payload[8:12], "big")
            out = await self._execute(ps, "run", n)
        payload = P.encode_array(out)
        self.metrics.counter("serve.chunks.out").inc()
        self.metrics.counter("serve.samples.out").inc(len(payload) // 8)
        # cache before writing: if the reply write dies on the wire the
        # retry must find it
        ps.replies[rid] = (P.ARR, payload)
        while len(ps.replies) > self.config.reply_cache:
            ps.replies.popitem(last=False)
        await P.write_frame(writer, P.ARR, payload)

    async def _resume_session(self, conn: _Connection, writer,
                              frame: P.Frame) -> None:
        if conn.pooled is not None:
            raise ProtocolError(
                "connection already holds a session; CLOSE it before "
                "resuming another", code="session-open")
        token = frame.u64()
        entry = self._resume.pop(token, None)
        if entry is None and token in self._issued:
            # the old connection's teardown (which parks the session)
            # may still be in flight — it runs strictly after the
            # request that broke it, so wait it out briefly
            give_up = time.monotonic() + self.config.drain_deadline
            while entry is None and time.monotonic() < give_up:
                await asyncio.sleep(0.01)
                entry = self._resume.pop(token, None)
        if entry is None:
            raise ProtocolError("unknown or expired resume token",
                                code="resume-lost")
        if entry.ps is not None:
            ps = entry.ps
            self.metrics.gauge("serve.sessions.parked").dec()
            self.metrics.counter("serve.sessions.resumed").inc()
        else:
            if entry.snap is None:
                raise ProtocolError(
                    "session expired and left no checkpoint",
                    code="resume-lost")
            ps = await self._in_worker(self._restore_session, entry)
            self.metrics.counter("serve.sessions.restored").inc()
        ps.resume_token = token
        ps.replies = entry.replies if entry.replies is not None \
            else OrderedDict()
        conn.pooled = ps
        await P.write_frame(writer, P.OK, token.to_bytes(8, "big"))

    async def _execute(self, ps, op: str, *args):
        """Run one session operation; a recoverable plan failure is
        transparently re-run on the compiled backend from the last
        checkpoint (the degradation path)."""
        try:
            result = await self._run_session(ps, getattr(ps.session, op),
                                             *args)
        except _RECOVERABLE as exc:
            recovered = await self._try_degrade(ps, op, args)
            if recovered is _NO_RECOVERY:
                raise exc
            result = recovered
        # refresh the checkpoint after *every* success: a snapshot is a
        # prefix length into the live journal, so a stale one would
        # restore the session to a long-gone stream position
        snap = ps.session.snapshot()
        if snap is not None:
            ps.snap = snap
        return result

    async def _try_degrade(self, ps, op: str, args):
        """Rebuild ``ps`` on the compiled backend, restore the last
        checkpoint, and re-run the failed request; ``_NO_RECOVERY``
        when not applicable or the re-run also fails."""
        if not (self.config.degrade and ps.snap is not None
                and ps.factory is not None
                and ps.session.backend == "plan"
                and op in ("push", "run")):
            return _NO_RECOVERY

        def recover():
            with _faults.suppress():
                repl = ps.factory(None, "compiled")
                repl.restore(ps.snap)
                return repl, getattr(repl, op)(*args)

        try:
            repl, out = await self._in_worker(recover)
        except Exception:
            return _NO_RECOVERY  # the original error surfaces
        self.pool.replace(ps, repl)
        ps.poisoned = False
        self.pool.record_poison(ps.key)  # feeds the circuit breaker
        self.metrics.counter("serve.requests.degraded").inc()
        return out

    async def _run_session(self, ps, fn, *args):
        """Run one session operation, attributing serve time to the
        session's graph; execution errors poison the session (its stream
        position is indeterminate).

        Requests predicted fast (the session's recent average is under
        ``config.inline_fast_path``) run inline on the event loop; the
        rest go to the worker pool under the request timeout.
        """
        t0 = time.perf_counter()
        inline = (ps.avg_serve is not None
                  and ps.avg_serve < self.config.inline_fast_path)
        exec_dt = None  # pure execution time — excludes worker-queue wait
        try:
            if inline:
                self.metrics.counter("serve.requests.inline").inc()
                result = fn(*args)
                exec_dt = time.perf_counter() - t0
                return result

            def timed():
                t1 = time.perf_counter()
                r = fn(*args)
                return r, time.perf_counter() - t1

            result, exec_dt = await self._in_worker(timed)
            return result
        except DeadlineError:
            raise
        except Exception:
            ps.poisoned = True
            raise
        finally:
            if exec_dt is not None:
                # the predictor must see what the work *costs*, not how
                # long it queued — under a cold stampede the span is
                # dominated by executor backlog, which would lock the
                # EWMA above the inline threshold forever
                ps.avg_serve = (exec_dt if ps.avg_serve is None
                                else 0.25 * exec_dt + 0.75 * ps.avg_serve)
                self.pool.record_serve(ps, exec_dt)
            else:  # timeout/error: bill the full span, skip the EWMA
                self.pool.record_serve(ps, time.perf_counter() - t0)

    async def _reply_array(self, writer, out, policy=None) -> None:
        """Reply with samples: untagged ARR for float64 sessions (the
        back-compatible default), tagged ARRT otherwise."""
        if policy is None or policy.is_default:
            kind, payload = P.ARR, P.encode_array(out)
        else:
            kind, payload = P.ARRT, P.encode_array_tagged(out, policy)
        self.metrics.counter("serve.chunks.out").inc()
        self.metrics.counter("serve.samples.out").inc(len(out))
        await P.write_frame(writer, kind, payload)

    # -- observability -----------------------------------------------------
    def render_stats(self) -> str:
        """The ``STATS`` text dump: metrics registry + plan-cache
        counters + per-graph compile/serve accounting."""
        from ..exec.cache import plan_cache_stats

        from ..parallel.pool import pool_stats

        lines = [self.metrics.render()]
        for name, value in sorted(plan_cache_stats().items()):
            lines.append(f"plan_cache.{name} {value}")
        pool = pool_stats()
        if pool is not None:
            for name, value in sorted(pool.items()):
                lines.append(f"parallel.pool.{name} {value}")
        for row in self.pool.graph_stats():
            g = row["graph"]
            lines.append(f"graph.{g}.compiles {row['compiles']}")
            lines.append(
                f"graph.{g}.compile_seconds {row['compile_seconds']:.6f}")
            lines.append(f"graph.{g}.requests {row['requests']}")
            lines.append(
                f"graph.{g}.serve_seconds {row['serve_seconds']:.6f}")
        return "\n".join(line for line in lines if line)

    def stats_snapshot(self) -> dict:
        """Metrics as a flat dict (tests and the load generator)."""
        snap = self.metrics.snapshot()
        snap["graphs"] = self.pool.graph_stats()
        return snap


def parse_stats(text: str) -> dict:
    """Parse a ``STATS`` text dump back into ``{name: float}``."""
    out = {}
    for line in text.splitlines():
        name, _, value = line.rpartition(" ")
        if name:
            try:
                out[name] = float(value)
            except ValueError:
                pass
    return out
