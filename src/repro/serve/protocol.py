"""Length-prefixed binary framing for the session server.

One frame = a 5-byte header (``kind`` u8, payload ``length`` u32
big-endian) followed by the payload.  Chunk data travels as raw
little-endian float64 bytes — the same memory layout the sessions and
ring buffers use, so neither side re-encodes samples.

Request kinds (client -> server)::

    OPEN   JSON spec {"app"|"dsl", "backend", "optimize", "mode", ...}
    PUSH   f64le chunk -> ARR of every output it completes
    FEED   f64le chunk -> OK(count) without draining
    RUN    u32be n     -> ARR of the next n outputs
    RESET  rewind the session without recompiling
    CLOSE  release the session back to the pool (connection stays open)
    STATS  -> TXT metrics dump
    PING   -> OK liveness probe

Response kinds (server -> client)::

    OK     empty or u64be count
    ARR    f64le output samples
    TXT    utf-8 text
    ERR    JSON {"code": <machine code>, "error": <message>}

Errors are *frames*, not connection drops: a request that fails
(unknown app, backpressure cap, timeout) gets an ERR reply and the
connection keeps serving.  Only unrecoverable framing states (oversized
or truncated frames) close the transport.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from ..errors import ProtocolError

__all__ = ["Frame", "ProtocolError", "read_frame", "write_frame",
           "encode_array", "decode_array", "error_payload",
           "OPEN", "PUSH", "FEED", "RUN", "RESET", "CLOSE", "STATS",
           "PING", "OK", "ARR", "TXT", "ERR", "REQUEST_NAMES",
           "DEFAULT_MAX_FRAME_BYTES"]

# request kinds
OPEN, PUSH, FEED, RUN, RESET, CLOSE, STATS, PING = range(1, 9)
# response kinds
OK, ARR, TXT, ERR = range(16, 20)

REQUEST_NAMES = {OPEN: "open", PUSH: "push", FEED: "feed", RUN: "run",
                 RESET: "reset", CLOSE: "close", STATS: "stats",
                 PING: "ping"}

_HEADER_LEN = 5

#: Refuse frames above this size (a malformed length prefix must not
#: make the server allocate gigabytes); servers may configure lower.
DEFAULT_MAX_FRAME_BYTES = 64 << 20


class Frame:
    """A decoded frame: ``kind`` plus raw ``payload`` bytes."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: int, payload: bytes = b""):
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = REQUEST_NAMES.get(self.kind, str(self.kind))
        return f"Frame({name}, {len(self.payload)}B)"

    # -- payload views -----------------------------------------------------
    def json(self) -> dict:
        try:
            obj = json.loads(self.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON payload: {exc}",
                                code="bad-request") from None
        if not isinstance(obj, dict):
            raise ProtocolError("JSON payload must be an object",
                                code="bad-request")
        return obj

    def array(self) -> np.ndarray:
        return decode_array(self.payload)

    def u32(self) -> int:
        if len(self.payload) != 4:
            raise ProtocolError(
                f"expected a u32 payload, got {len(self.payload)} bytes",
                code="bad-request")
        return int.from_bytes(self.payload, "big")

    def u64(self) -> int:
        if len(self.payload) != 8:
            raise ProtocolError(
                f"expected a u64 payload, got {len(self.payload)} bytes",
                code="bad-request")
        return int.from_bytes(self.payload, "big")

    def text(self) -> str:
        return self.payload.decode("utf-8")


def encode_array(arr: np.ndarray) -> bytes:
    """Sample data as little-endian float64 bytes."""
    return np.ascontiguousarray(arr, dtype="<f8").tobytes()


def decode_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`; rejects ragged byte counts."""
    if len(payload) % 8:
        raise ProtocolError(
            f"sample payload of {len(payload)} bytes is not a whole "
            "number of float64 items", code="bad-request")
    return np.frombuffer(payload, dtype="<f8").astype(np.float64,
                                                      copy=False)


def error_payload(code: str, message: str) -> bytes:
    return json.dumps({"code": code, "error": message}).encode("utf-8")


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    return bytes([kind]) + len(payload).to_bytes(4, "big") + payload


async def read_frame(reader: asyncio.StreamReader,
                     max_bytes: int = DEFAULT_MAX_FRAME_BYTES
                     ) -> Frame | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` for truncated or oversized frames —
    states the connection cannot recover from (the stream position is
    unknown), so callers close the transport.
    """
    try:
        header = await reader.readexactly(_HEADER_LEN)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header",
                            code="bad-frame") from None
    kind = header[0]
    length = int.from_bytes(header[1:], "big")
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte "
            "limit", code="too-large")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-payload",
                            code="bad-frame") from None
    return Frame(kind, payload)


async def write_frame(writer: asyncio.StreamWriter, kind: int,
                      payload: bytes = b"") -> None:
    """Write one frame and drain.

    The drain is the transport half of backpressure: a client that
    stops reading stalls its server-side handler here (bounded by the
    transport's write buffer), instead of queueing unbounded replies.
    """
    writer.write(encode_frame(kind, payload))
    await writer.drain()
