"""Length-prefixed binary framing for the session server.

One frame = a 9-byte header (``kind`` u8, payload ``length`` u32
big-endian, payload ``CRC-32`` u32 big-endian) followed by the payload.
Chunk data travels as raw little-endian float64 bytes — the same memory
layout the sessions and ring buffers use, so neither side re-encodes
samples.  The CRC turns silent payload corruption (a flipped bit would
otherwise deliver wrong samples as valid float64s) into a typed
``corrupt`` error, which is what lets the recovery protocol treat a
corrupted frame exactly like a dropped connection: reconnect, RESUME,
retry.

Request kinds (client -> server)::

    OPEN   JSON spec {"app"|"dsl", "backend", "optimize", "mode",
           "resumable", ...} -> OK (u64be resume token when resumable)
    PUSH   f64le chunk -> ARR of every output it completes
    FEED   f64le chunk -> OK(count) without draining
    RUN    u32be n     -> ARR of the next n outputs
    RESET  rewind the session without recompiling
    CLOSE  release the session back to the pool (connection stays open)
    STATS  -> TXT metrics dump
    PING   -> OK liveness probe
    RPUSH  u64be request id + f64le chunk — idempotent PUSH: a retried
           id is answered from the session's reply cache, never re-run
    RRUN   u64be request id + u32be n — idempotent RUN
    RESUME u64be token -> OK(token); re-attaches this connection to the
           parked session of a dropped one (or restores it from its
           last checkpoint)
    PUSHT  dtype tag byte + samples — PUSH for non-float64 sessions
    FEEDT  dtype tag byte + samples — FEED for non-float64 sessions

Response kinds (server -> client)::

    OK     empty or u64be count/token
    ARR    f64le output samples
    ARRT   dtype tag byte + output samples (non-float64 sessions)
    TXT    utf-8 text
    ERR    JSON {"code": <machine code>, "error": <message>}

**Numeric policy on the wire.**  The original chunk frames are untagged
float64 (``f64le``) and stay the default — an old client talking to a
float64 session sees byte-identical traffic.  Sessions opened with a
``"dtype"`` spec field exchange *tagged* frames instead: one dtype tag
byte (1=f64le, 2=f32le, 3=c64le, 4=c128le — the
:class:`~repro.numeric.NumericPolicy` wire tags) followed by the raw
little-endian samples.  An untagged PUSH/FEED sent to a non-float64
session — or a tag that disagrees with the session's policy — is a
typed ``dtype-mismatch`` error frame, never a silent reinterpretation
of the byte stream.  ``RPUSH``/``RRUN`` remain float64-only.

Errors are *frames*, not connection drops: a request that fails
(unknown app, backpressure cap, timeout) gets an ERR reply and the
connection keeps serving.  Only unrecoverable framing states (oversized,
truncated, or CRC-failing frames) close the transport.

``write_frame`` is also the wire-layer fault-injection site
(:mod:`repro.faults`): an installed plan may delay, corrupt, truncate,
or drop any frame either peer writes.
"""

from __future__ import annotations

import asyncio
import json
import zlib

import numpy as np

from .. import faults as _faults
from ..errors import ProtocolError

__all__ = ["Frame", "ProtocolError", "read_frame", "write_frame",
           "encode_array", "decode_array", "error_payload",
           "encode_array_tagged", "decode_array_tagged",
           "OPEN", "PUSH", "FEED", "RUN", "RESET", "CLOSE", "STATS",
           "PING", "RPUSH", "RRUN", "RESUME", "PUSHT", "FEEDT",
           "OK", "ARR", "TXT", "ERR", "ARRT", "REQUEST_NAMES",
           "DEFAULT_MAX_FRAME_BYTES"]

# request kinds
OPEN, PUSH, FEED, RUN, RESET, CLOSE, STATS, PING = range(1, 9)
RPUSH, RRUN, RESUME = range(9, 12)
PUSHT, FEEDT = 12, 13
# response kinds
OK, ARR, TXT, ERR = range(16, 20)
ARRT = 20

REQUEST_NAMES = {OPEN: "open", PUSH: "push", FEED: "feed", RUN: "run",
                 RESET: "reset", CLOSE: "close", STATS: "stats",
                 PING: "ping", RPUSH: "rpush", RRUN: "rrun",
                 RESUME: "resume", PUSHT: "pusht", FEEDT: "feedt"}

_HEADER_LEN = 9

#: Refuse frames above this size (a malformed length prefix must not
#: make the server allocate gigabytes); servers may configure lower.
DEFAULT_MAX_FRAME_BYTES = 64 << 20


class Frame:
    """A decoded frame: ``kind`` plus raw ``payload`` bytes."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: int, payload: bytes = b""):
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = REQUEST_NAMES.get(self.kind, str(self.kind))
        return f"Frame({name}, {len(self.payload)}B)"

    # -- payload views -----------------------------------------------------
    def json(self) -> dict:
        try:
            obj = json.loads(self.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON payload: {exc}",
                                code="bad-request") from None
        if not isinstance(obj, dict):
            raise ProtocolError("JSON payload must be an object",
                                code="bad-request")
        return obj

    def array(self) -> np.ndarray:
        return decode_array(self.payload)

    def u32(self) -> int:
        if len(self.payload) != 4:
            raise ProtocolError(
                f"expected a u32 payload, got {len(self.payload)} bytes",
                code="bad-request")
        return int.from_bytes(self.payload, "big")

    def u64(self) -> int:
        if len(self.payload) != 8:
            raise ProtocolError(
                f"expected a u64 payload, got {len(self.payload)} bytes",
                code="bad-request")
        return int.from_bytes(self.payload, "big")

    def text(self) -> str:
        return self.payload.decode("utf-8")


def encode_array(arr: np.ndarray) -> bytes:
    """Sample data as little-endian float64 bytes."""
    return np.ascontiguousarray(arr, dtype="<f8").tobytes()


def decode_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`; rejects ragged byte counts."""
    if len(payload) % 8:
        raise ProtocolError(
            f"sample payload of {len(payload)} bytes is not a whole "
            "number of float64 items", code="bad-request")
    return np.frombuffer(payload, dtype="<f8").astype(np.float64,
                                                      copy=False)


def encode_array_tagged(arr: np.ndarray, policy) -> bytes:
    """One dtype tag byte + samples in the policy's little-endian
    format — the payload of PUSHT/FEEDT/ARRT frames."""
    return (bytes([policy.wire_tag])
            + np.ascontiguousarray(arr, dtype=policy.wire_fmt).tobytes())


def decode_array_tagged(payload: bytes, expected=None) -> np.ndarray:
    """Inverse of :func:`encode_array_tagged`.

    Returns the samples in the tagged policy's dtype.  With
    ``expected`` (a :class:`~repro.numeric.NumericPolicy`), a tag that
    disagrees raises a ``dtype-mismatch`` error instead of decoding:
    the bytes are valid *some* dtype's samples, just not this
    session's, and reinterpreting them would be silent corruption.
    """
    from ..numeric import policy_for_wire_tag

    if not payload:
        raise ProtocolError("tagged sample payload is empty",
                            code="bad-request")
    policy = policy_for_wire_tag(payload[0])
    if policy is None:
        raise ProtocolError(f"unknown dtype tag {payload[0]}",
                            code="bad-request")
    if expected is not None and policy.name != expected.name:
        raise ProtocolError(
            f"chunk tagged {policy.name} sent to a {expected.name} "
            "session", code="dtype-mismatch")
    body = payload[1:]
    if len(body) % policy.itemsize:
        raise ProtocolError(
            f"tagged sample payload of {len(body)} bytes is not a whole "
            f"number of {policy.name} items", code="bad-request")
    return np.frombuffer(body, dtype=policy.wire_fmt).astype(
        policy.dtype, copy=False)


def error_payload(code: str, message: str) -> bytes:
    return json.dumps({"code": code, "error": message}).encode("utf-8")


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    return (bytes([kind]) + len(payload).to_bytes(4, "big")
            + zlib.crc32(payload).to_bytes(4, "big") + payload)


async def read_frame(reader: asyncio.StreamReader,
                     max_bytes: int = DEFAULT_MAX_FRAME_BYTES
                     ) -> Frame | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` for truncated, oversized, or
    CRC-failing frames — states the connection cannot recover from (the
    stream position or payload integrity is unknown), so callers close
    the transport.
    """
    try:
        header = await reader.readexactly(_HEADER_LEN)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header",
                            code="bad-frame") from None
    kind = header[0]
    length = int.from_bytes(header[1:5], "big")
    crc = int.from_bytes(header[5:9], "big")
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte "
            "limit", code="too-large")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-payload",
                            code="bad-frame") from None
    if zlib.crc32(payload) != crc:
        raise ProtocolError(
            f"frame payload failed its CRC-32 check "
            f"({length} bytes, kind {kind})", code="corrupt")
    return Frame(kind, payload)


async def _inject_wire_faults(plan, writer, data: bytes) -> bytes:
    """Apply the active plan's wire faults to one encoded frame."""
    if plan.roll("wire.latency"):
        await asyncio.sleep(plan.latency)
    if plan.roll("wire.drop"):
        transport = writer.transport
        if transport is not None:
            transport.abort()
        raise ConnectionResetError(
            "injected fault: connection dropped before frame write")
    if plan.roll("wire.truncate"):
        writer.write(data[:max(1, len(data) // 2)])
        writer.close()
        raise ConnectionResetError(
            "injected fault: frame truncated mid-write")
    if plan.roll("wire.corrupt"):
        # flip one bit past the length field: in the payload when there
        # is one, else in the CRC itself — either way the receiver's
        # CRC check fails and raises a typed ``corrupt`` error, instead
        # of silently delivering wrong samples
        i = len(data) - 1
        data = data[:i] + bytes([data[i] ^ 0x01])
    return data


async def write_frame(writer: asyncio.StreamWriter, kind: int,
                      payload: bytes = b"") -> None:
    """Write one frame and drain.

    The drain is the transport half of backpressure: a client that
    stops reading stalls its server-side handler here (bounded by the
    transport's write buffer), instead of queueing unbounded replies.
    """
    data = encode_frame(kind, payload)
    plan = _faults.ACTIVE
    if plan is not None:
        data = await _inject_wire_faults(plan, writer, data)
    writer.write(data)
    await writer.drain()
