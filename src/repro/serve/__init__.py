"""``repro.serve`` — a concurrent streaming session server.

The serving layer over PR 5's compile-once sessions: an asyncio server
multiplexing many concurrent :class:`~repro.session.StreamSession`
streams over the shared plan cache.

* :mod:`~repro.serve.server` — :class:`StreamServer` + serving knobs
  (:class:`ServeConfig`): backpressure caps, per-request timeouts,
  idle-session TTL eviction, thread-pool execution;
* :mod:`~repro.serve.pool` — :class:`SessionPool`: sessions keyed by
  graph fingerprint, recycled via ``reset()`` (zero recompiles), TTL
  eviction unpins plan entries;
* :mod:`~repro.serve.protocol` — length-prefixed binary framing
  (float64 chunk payloads, JSON error frames);
* :mod:`~repro.serve.client` — :class:`ServeClient`, the async client;
* :mod:`~repro.serve.metrics` — :class:`MetricsRegistry` behind the
  ``STATS`` command;
* :mod:`~repro.serve.loadgen` — ``bench --serve`` load generator;
* :mod:`~repro.serve.chaos` — ``bench --serve --chaos`` fault-injection
  harness: seeded faults at every site class, bitwise parity against
  the fault-free run, session-leak accounting.

The stack is fault-tolerant end to end (see ``README`` §Fault
tolerance): CRC-checked frames, idempotent retries with reply caching,
RESUME re-attachment of dropped connections, checkpoint/restore with
transparent plan→compiled degradation, a per-graph circuit breaker,
and graceful drain on shutdown.

Quick start::

    server = StreamServer()
    await server.start(path="/tmp/repro.sock")

    client = await ServeClient.connect(path="/tmp/repro.sock")
    await client.open(app="fir", optimize="auto")
    out = await client.push(chunk)
"""

from .chaos import format_chaos_report, run_chaos
from .client import RETRYABLE, ServeClient
from .metrics import MetricsRegistry
from .pool import PooledSession, SessionPool
from .server import (WIRE_CODES, ServeConfig, StreamServer, parse_stats,
                     wire_code)

__all__ = ["StreamServer", "ServeConfig", "ServeClient", "SessionPool",
           "PooledSession", "MetricsRegistry", "parse_stats",
           "WIRE_CODES", "wire_code", "RETRYABLE", "run_chaos",
           "format_chaos_report"]
