"""``repro.serve`` — a concurrent streaming session server.

The serving layer over PR 5's compile-once sessions: an asyncio server
multiplexing many concurrent :class:`~repro.session.StreamSession`
streams over the shared plan cache.

* :mod:`~repro.serve.server` — :class:`StreamServer` + serving knobs
  (:class:`ServeConfig`): backpressure caps, per-request timeouts,
  idle-session TTL eviction, thread-pool execution;
* :mod:`~repro.serve.pool` — :class:`SessionPool`: sessions keyed by
  graph fingerprint, recycled via ``reset()`` (zero recompiles), TTL
  eviction unpins plan entries;
* :mod:`~repro.serve.protocol` — length-prefixed binary framing
  (float64 chunk payloads, JSON error frames);
* :mod:`~repro.serve.client` — :class:`ServeClient`, the async client;
* :mod:`~repro.serve.metrics` — :class:`MetricsRegistry` behind the
  ``STATS`` command;
* :mod:`~repro.serve.loadgen` — ``bench --serve`` load generator.

Quick start::

    server = StreamServer()
    await server.start(path="/tmp/repro.sock")

    client = await ServeClient.connect(path="/tmp/repro.sock")
    await client.open(app="fir", optimize="auto")
    out = await client.push(chunk)
"""

from .client import ServeClient
from .metrics import MetricsRegistry
from .pool import PooledSession, SessionPool
from .server import ServeConfig, StreamServer, parse_stats

__all__ = ["StreamServer", "ServeConfig", "ServeClient", "SessionPool",
           "PooledSession", "MetricsRegistry", "parse_stats"]
