"""Async client for the session server.

Mirrors the :class:`~repro.session.StreamSession` surface over the wire
(``open``/``push``/``feed``/``run``/``reset``), adding ``stats`` and
``ping``.  Error frames raise :class:`~repro.errors.ProtocolError` with
the server's machine-readable ``code`` — the client never has to parse
messages.  One client = one connection = at most one session, matching
the server's sequential-per-connection execution model.

Used in-process by the test suite and the load generator (connect to a
server running on the same event loop), and equally usable against a
remote server — the transport is plain TCP or a unix-domain socket.

::

    client = await ServeClient.connect(path="/tmp/repro.sock")
    await client.open(app="fir")
    out = await client.push(chunk)          # np.ndarray
    print(await client.stats())
    await client.close()
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..errors import ChunkDtypeError, ProtocolError
from . import protocol as P

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.StreamServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0,
                      path: str | None = None) -> "ServeClient":
        """Connect over a unix socket (``path``) or TCP (``host:port``)."""
        if path is not None:
            reader, writer = await asyncio.open_unix_connection(path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # -- request/response core ---------------------------------------------
    async def _request(self, kind: int, payload: bytes = b"") -> P.Frame:
        await P.write_frame(self._writer, kind, payload)
        frame = await P.read_frame(self._reader)
        if frame is None:
            raise ProtocolError("server closed the connection",
                                code="disconnected")
        if frame.kind == P.ERR:
            info = frame.json()
            raise ProtocolError(info.get("error", "server error"),
                                code=info.get("code", "internal"))
        return frame

    @staticmethod
    def _chunk_bytes(chunk) -> bytes:
        arr = np.asarray(chunk)
        if arr.dtype.kind not in "fiub":
            raise ChunkDtypeError(arr.dtype)
        return P.encode_array(arr)

    # -- session surface ---------------------------------------------------
    async def open(self, *, app: str | None = None,
                   dsl: str | None = None, top: str | None = None,
                   backend: str = "plan", optimize: str = "none",
                   mode: str = "push", params: dict | None = None) -> None:
        """Open a session: a registry app (``app="fir"``) or a DSL
        program (``dsl=source``); ``mode="push"`` strips a registry
        app's source/Collector harness so input arrives via ``push``,
        ``mode="pull"`` serves the complete program via ``run``."""
        import json

        spec: dict = {"backend": backend, "optimize": optimize,
                      "mode": mode}
        if app is not None:
            spec["app"] = app
            if params:
                spec["params"] = params
        if dsl is not None:
            spec["dsl"] = dsl
            if top is not None:
                spec["top"] = top
        await self._request(P.OPEN, json.dumps(spec).encode("utf-8"))

    async def push(self, chunk) -> np.ndarray:
        """Feed a chunk; returns every output it completes."""
        frame = await self._request(P.PUSH, self._chunk_bytes(chunk))
        return frame.array()

    async def push_stream(self, chunks, window: int = 8,
                          latencies: list | None = None):
        """Pipelined pushes: async-iterates the per-chunk outputs, in
        order, keeping up to ``window`` pushes in flight.

        Awaiting every reply before the next send costs a full client ↔
        server task round-trip per chunk; with a send window the server
        drains whole bursts of buffered frames without yielding, so the
        round-trip amortizes across the window.  ``latencies`` (optional
        list) collects each chunk's send→reply seconds — with a full
        window that includes queueing behind the chunks ahead of it,
        exactly what a streaming client experiences.  An error frame
        raises :class:`~repro.errors.ProtocolError` and aborts the
        stream with replies possibly still in flight — close the
        connection rather than reusing it.
        """
        chunks = list(chunks)
        sent: list[float] = []
        done = 0
        for chunk in chunks:  # prime one full window before reading
            if len(sent) - done >= window:
                break
            payload = self._chunk_bytes(chunk)
            sent.append(time.perf_counter())
            await P.write_frame(self._writer, P.PUSH, payload)
        while done < len(chunks):
            frame = await P.read_frame(self._reader)
            if frame is None:
                raise ProtocolError("server closed the connection",
                                    code="disconnected")
            if frame.kind == P.ERR:
                info = frame.json()
                raise ProtocolError(info.get("error", "server error"),
                                    code=info.get("code", "internal"))
            if latencies is not None:
                latencies.append(time.perf_counter() - sent[done])
            done += 1
            if len(sent) < len(chunks):
                payload = self._chunk_bytes(chunks[len(sent)])
                sent.append(time.perf_counter())
                await P.write_frame(self._writer, P.PUSH, payload)
            yield frame.array()

    async def feed(self, chunk) -> int:
        """Feed without draining; returns the item count added."""
        frame = await self._request(P.FEED, self._chunk_bytes(chunk))
        return frame.u64()

    async def run(self, n: int) -> np.ndarray:
        """The next ``n`` outputs (pull sessions, or fed push sessions)."""
        frame = await self._request(P.RUN, int(n).to_bytes(4, "big"))
        return frame.array()

    async def reset(self) -> None:
        await self._request(P.RESET)

    async def close_session(self) -> None:
        """Release the session to the pool; the connection stays open."""
        await self._request(P.CLOSE)

    async def stats(self) -> str:
        """The server's ``STATS`` text dump."""
        return (await self._request(P.STATS)).text()

    async def ping(self) -> None:
        await self._request(P.PING)

    # -- lifecycle ---------------------------------------------------------
    async def close(self) -> None:
        """Close the connection (the server releases the session)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
