"""Async client for the session server.

Mirrors the :class:`~repro.session.StreamSession` surface over the wire
(``open``/``push``/``feed``/``run``/``reset``), adding ``stats`` and
``ping``.  Error frames raise :class:`~repro.errors.ProtocolError` with
the server's machine-readable ``code`` — the client never has to parse
messages.  Transport failures surface the same way: a connection that
dies mid-request raises ``ProtocolError(code="disconnected")``, never a
bare ``ConnectionResetError``.  One client = one connection = at most
one session, matching the server's sequential-per-connection execution
model.

Recovery: ``open(resumable=True)`` makes the session resumable — the
server returns a resume token, and ``push``/``run`` switch to their
idempotent forms (``RPUSH``/``RRUN``), stamping every request with a
client-side id.  With ``retries > 0`` a retryable failure (disconnect,
corrupt frame, timeout, poisoned session, execution error) makes the
client back off (exponential + seeded jitter), **reconnect**, RESUME
its session, and re-send the same request id — the server answers
replayed ids from its reply cache, so a retry after a lost reply never
double-applies state.  ``retries_used`` and ``resumes`` count what
recovery cost.

Used in-process by the test suite, the load generator, and the chaos
harness (connect to a server running on the same event loop), and
equally usable against a remote server — the transport is plain TCP or
a unix-domain socket.

::

    client = await ServeClient.connect(path="/tmp/repro.sock",
                                       retries=5)
    await client.open(app="fir", resumable=True)
    out = await client.push(chunk)          # np.ndarray
    print(await client.stats())
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import time

import numpy as np

from ..errors import ChunkDtypeError, ProtocolError
from ..numeric import resolve_policy
from . import protocol as P

__all__ = ["ServeClient", "RETRYABLE"]

#: Error codes a retry can plausibly fix: transport failures (the
#: request or its reply was lost), deadline expiries, and execution
#: errors on a session a RESUME will rebuild from its checkpoint.
#: Client mistakes (``bad-request``, ``bad-option``, ...) re-run
#: identically and ``resume-lost`` means the server no longer holds
#: anything to retry against — both fail immediately.
RETRYABLE = frozenset({"disconnected", "bad-frame", "corrupt",
                       "timeout", "poisoned", "exec"})


class ServeClient:
    """One connection to a :class:`~repro.serve.server.StreamServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 host: str = "127.0.0.1", port: int = 0,
                 path: str | None = None, retries: int = 0,
                 backoff: float = 0.05, backoff_cap: float = 2.0,
                 jitter: float = 0.5, retry_seed=None):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._path = path
        self._retries = retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._jitter = jitter
        self._rng = random.Random(retry_seed)
        self._token: int | None = None  # resume token, when resumable
        self._policy = None  # session numeric policy (None: float64)
        self._ids = itertools.count(1)  # request ids for RPUSH/RRUN
        self._broken = False  # the transport needs a reconnect
        #: requests re-sent after a retryable failure
        self.retries_used = 0
        #: successful RESUMEs after a reconnect
        self.resumes = 0

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0,
                      path: str | None = None, *, retries: int = 0,
                      backoff: float = 0.05, backoff_cap: float = 2.0,
                      jitter: float = 0.5, retry_seed=None
                      ) -> "ServeClient":
        """Connect over a unix socket (``path``) or TCP (``host:port``).

        ``retries`` enables the recovery loop: that many re-sends per
        request, with exponential backoff starting at ``backoff``
        seconds (capped at ``backoff_cap``) plus up to ``jitter``
        fraction of seeded random spread — ``retry_seed`` pins the
        jitter sequence for reproducible runs.
        """
        if path is not None:
            reader, writer = await asyncio.open_unix_connection(path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port, path=path,
                   retries=retries, backoff=backoff,
                   backoff_cap=backoff_cap, jitter=jitter,
                   retry_seed=retry_seed)

    # -- request/response core ---------------------------------------------
    async def _roundtrip(self, kind: int, payload: bytes = b"") -> P.Frame:
        """One request frame out, one response frame back.

        Transport deaths (reset, broken pipe, EOF mid-frame) become
        ``ProtocolError(code="disconnected")`` — typed, catchable, and
        retryable — never a bare OS-level exception.
        """
        try:
            await P.write_frame(self._writer, kind, payload)
            frame = await P.read_frame(self._reader)
        except (ConnectionError, OSError) as exc:
            self._broken = True
            raise ProtocolError(
                f"connection lost mid-request: {exc}",
                code="disconnected") from None
        if frame is None:
            self._broken = True
            raise ProtocolError("server closed the connection",
                                code="disconnected")
        if frame.kind == P.ERR:
            info = frame.json()
            raise ProtocolError(info.get("error", "server error"),
                                code=info.get("code", "internal"))
        return frame

    async def _reconnect(self) -> None:
        """Replace the dead transport; RESUME the session if resumable."""
        try:
            self._writer.close()
        except Exception:
            pass
        if self._path is not None:
            self._reader, self._writer = \
                await asyncio.open_unix_connection(self._path)
        else:
            self._reader, self._writer = \
                await asyncio.open_connection(self._host, self._port)
        self._broken = False
        if self._token is not None:
            await self._roundtrip(
                P.RESUME, self._token.to_bytes(8, "big"))
            self.resumes += 1

    async def _request(self, kind: int, payload: bytes = b"",
                       retryable: bool = False) -> P.Frame:
        """Send a request; with ``retryable`` (idempotent kinds only),
        run the backoff → reconnect → RESUME → re-send loop."""
        attempt = 0
        while True:
            try:
                if self._broken:
                    await self._reconnect()
                return await self._roundtrip(kind, payload)
            except ProtocolError as exc:
                if (not retryable or exc.code not in RETRYABLE
                        or attempt >= self._retries):
                    raise
                # a retryable failure leaves either the transport or the
                # session suspect; reconnect + RESUME restores both
                self._broken = True
            except OSError as exc:  # reconnect itself refused
                if not retryable or attempt >= self._retries:
                    raise ProtocolError(
                        f"reconnect failed: {exc}",
                        code="disconnected") from None
            attempt += 1
            self.retries_used += 1
            delay = min(self._backoff * (2 ** (attempt - 1)),
                        self._backoff_cap)
            await asyncio.sleep(
                delay * (1.0 + self._jitter * self._rng.random()))

    @property
    def _tagged(self) -> bool:
        """Whether this session exchanges dtype-tagged chunk frames."""
        return self._policy is not None and not self._policy.is_default

    def _chunk_bytes(self, chunk) -> bytes:
        arr = np.asarray(chunk)
        if self._tagged:
            kinds = "fiubc" if self._policy.is_complex else "fiub"
            if arr.dtype.kind not in kinds:
                raise ChunkDtypeError(arr.dtype,
                                      complex_ok=self._policy.is_complex)
            return P.encode_array_tagged(arr, self._policy)
        if arr.dtype.kind not in "fiub":
            raise ChunkDtypeError(arr.dtype)
        return P.encode_array(arr)

    def _decode_reply(self, frame: P.Frame) -> np.ndarray:
        if frame.kind == P.ARRT:
            return P.decode_array_tagged(frame.payload,
                                         expected=self._policy)
        return frame.array()

    # -- session surface ---------------------------------------------------
    async def open(self, *, app: str | None = None,
                   dsl: str | None = None, top: str | None = None,
                   backend: str = "plan", optimize: str = "none",
                   mode: str = "push", params: dict | None = None,
                   resumable: bool = False, dtype=None) -> None:
        """Open a session: a registry app (``app="fir"``) or a DSL
        program (``dsl=source``); ``mode="push"`` strips a registry
        app's source/Collector harness so input arrives via ``push``,
        ``mode="pull"`` serves the complete program via ``run``.

        ``resumable=True`` requests a resume token: the session
        survives disconnects (parked server-side for RESUME) and
        ``push``/``run`` become idempotent — see the module docstring.

        ``dtype`` selects the session's numeric policy (``"f32"``,
        ``"c64"``, ...).  Non-float64 sessions exchange dtype-tagged
        chunk frames (PUSHT/FEEDT/ARRT) and are not resumable — the
        idempotent retry frames are float64-only.
        """
        policy = resolve_policy(dtype)
        if resumable and not policy.is_default:
            raise ProtocolError(
                "resumable sessions are float64-only (RPUSH/RRUN carry "
                "untagged f64 payloads)", code="dtype-mismatch")
        spec: dict = {"backend": backend, "optimize": optimize,
                      "mode": mode}
        if not policy.is_default:
            spec["dtype"] = policy.name
        if app is not None:
            spec["app"] = app
            if params:
                spec["params"] = params
        if dsl is not None:
            spec["dsl"] = dsl
            if top is not None:
                spec["top"] = top
        if resumable:
            spec["resumable"] = True
        frame = await self._request(
            P.OPEN, json.dumps(spec).encode("utf-8"),
            retryable=resumable)
        self._policy = None if policy.is_default else policy
        if resumable:
            self._token = frame.u64()

    async def push(self, chunk) -> np.ndarray:
        """Feed a chunk; returns every output it completes.

        On a resumable session this is an idempotent ``RPUSH``: safe to
        retry, and retried automatically when ``retries`` is set.
        """
        payload = self._chunk_bytes(chunk)
        if self._token is not None:
            rid = next(self._ids)
            frame = await self._request(
                P.RPUSH, rid.to_bytes(8, "big") + payload,
                retryable=True)
        else:
            frame = await self._request(
                P.PUSHT if self._tagged else P.PUSH, payload)
        return self._decode_reply(frame)

    async def push_stream(self, chunks, window: int = 8,
                          latencies: list | None = None):
        """Pipelined pushes: async-iterates the per-chunk outputs, in
        order, keeping up to ``window`` pushes in flight.

        Awaiting every reply before the next send costs a full client ↔
        server task round-trip per chunk; with a send window the server
        drains whole bursts of buffered frames without yielding, so the
        round-trip amortizes across the window.  ``latencies`` (optional
        list) collects each chunk's send→reply seconds — with a full
        window that includes queueing behind the chunks ahead of it,
        exactly what a streaming client experiences.  A failure —
        an error frame, or the connection dying mid-stream — raises
        :class:`~repro.errors.ProtocolError` and aborts the stream with
        replies possibly still in flight — close the connection rather
        than reusing it (resumable sessions can reconnect + RESUME and
        re-push the unacknowledged tail with ``push``).
        """
        chunks = list(chunks)
        push_kind = P.PUSHT if self._tagged else P.PUSH
        sent: list[float] = []
        done = 0
        try:
            for chunk in chunks:  # prime one full window before reading
                if len(sent) - done >= window:
                    break
                payload = self._chunk_bytes(chunk)
                sent.append(time.perf_counter())
                await P.write_frame(self._writer, push_kind, payload)
            while done < len(chunks):
                frame = await P.read_frame(self._reader)
                if frame is None:
                    raise ProtocolError("server closed the connection",
                                        code="disconnected")
                if frame.kind == P.ERR:
                    info = frame.json()
                    raise ProtocolError(
                        info.get("error", "server error"),
                        code=info.get("code", "internal"))
                if latencies is not None:
                    latencies.append(time.perf_counter() - sent[done])
                done += 1
                if len(sent) < len(chunks):
                    payload = self._chunk_bytes(chunks[len(sent)])
                    sent.append(time.perf_counter())
                    await P.write_frame(self._writer, push_kind, payload)
                yield self._decode_reply(frame)
        except (ConnectionError, OSError) as exc:
            self._broken = True
            raise ProtocolError(
                f"connection lost mid-stream after {done} replies: "
                f"{exc}", code="disconnected") from None

    async def feed(self, chunk) -> int:
        """Feed without draining; returns the item count added."""
        frame = await self._request(
            P.FEEDT if self._tagged else P.FEED, self._chunk_bytes(chunk))
        return frame.u64()

    async def run(self, n: int) -> np.ndarray:
        """The next ``n`` outputs (pull sessions, or fed push sessions).

        Idempotent (``RRUN``) and auto-retried on resumable sessions.
        """
        if self._token is not None:
            rid = next(self._ids)
            frame = await self._request(
                P.RRUN,
                rid.to_bytes(8, "big") + int(n).to_bytes(4, "big"),
                retryable=True)
        else:
            frame = await self._request(P.RUN, int(n).to_bytes(4, "big"))
        return self._decode_reply(frame)

    async def reset(self) -> None:
        await self._request(P.RESET)

    async def close_session(self) -> None:
        """Release the session to the pool; the connection stays open."""
        try:
            await self._request(P.CLOSE,
                                retryable=self._token is not None)
        except ProtocolError as exc:
            # a retried CLOSE whose RESUME finds nothing means the
            # first CLOSE landed and only its reply was lost — which is
            # exactly the outcome we wanted
            if exc.code != "resume-lost":
                raise
        self._token = None
        self._policy = None

    async def stats(self) -> str:
        """The server's ``STATS`` text dump."""
        return (await self._request(P.STATS)).text()

    async def ping(self) -> None:
        await self._request(P.PING)

    # -- lifecycle ---------------------------------------------------------
    async def close(self) -> None:
        """Close the connection (the server releases — or, for
        resumable sessions, parks — the session)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
