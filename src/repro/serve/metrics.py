"""Serve-side observability: counters, gauges, latency histograms.

The server executes session work on a thread pool while the asyncio
loop handles framing, so every instrument takes a lock — the costs are
nanoseconds against request latencies in the tens of microseconds.

A :class:`MetricsRegistry` is a flat namespace of named instruments
(``serve.sessions.live``, ``serve.latency.push``, ...).  ``render()``
produces the text dump the ``STATS`` protocol command returns: one
``name value`` line per scalar, plus ``count/sum/p50/p99`` lines per
histogram — greppable in tests and readable over a socket.

Latency histograms use geometric buckets (10 per decade from 1 us), so
quantiles are exact to within ~12% at any scale without storing
samples; that error bar is far below the run-to-run variance of any
latency being measured here.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]

#: Histogram bucket upper bounds in seconds: 10 per decade, 1 us .. 100 s.
_BOUNDS = tuple(1e-6 * 10 ** (i / 10) for i in range(81))


class Counter:
    """A monotonically increasing count (float-valued: also used for
    accumulated seconds)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (live sessions, pending samples)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._max = max(self._max, value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._max = max(self._max, self._value)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        """High-water mark since creation (memory-cap evidence for the
        backpressure tests)."""
        return self._max


class LatencyHistogram:
    """Fixed geometric buckets over seconds with quantile estimation."""

    def __init__(self):
        self._lock = threading.Lock()
        self._buckets = [0] * (len(_BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        i = bisect_left(_BOUNDS, seconds)
        with self._lock:
            self._buckets[i] += 1
            self.count += 1
            self.sum += seconds

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile in seconds (0 when empty)."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * (self.count - 1)
            seen = 0
            for i, n in enumerate(self._buckets):
                seen += n
                if seen > rank:
                    if i == 0:
                        return _BOUNDS[0] / 2
                    if i >= len(_BOUNDS):
                        return _BOUNDS[-1]
                    # geometric midpoint of the matched bucket
                    return (_BOUNDS[i - 1] * _BOUNDS[i]) ** 0.5
            return _BOUNDS[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments plus the ``STATS`` text dump."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = self._metrics[name] = cls()
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(m).__name__}")
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> LatencyHistogram:
        return self._get(name, LatencyHistogram)

    def snapshot(self) -> dict:
        """Flat ``{name: value}`` dict (histograms expand to
        ``.count/.sum/.p50/.p99``; gauges add ``.max``)."""
        out: dict[str, float] = {}
        with self._lock:
            items = sorted(self._metrics.items())
        for name, m in items:
            if isinstance(m, LatencyHistogram):
                out[f"{name}.count"] = m.count
                out[f"{name}.sum"] = m.sum
                out[f"{name}.p50"] = m.quantile(0.50)
                out[f"{name}.p99"] = m.quantile(0.99)
            elif isinstance(m, Gauge):
                out[name] = m.value
                out[f"{name}.max"] = m.max
            else:
                out[name] = m.value
        return out

    def render(self) -> str:
        """The ``STATS`` text dump: one ``name value`` line, sorted."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, float) and not value.is_integer():
                lines.append(f"{name} {value:.9g}")
            else:
                lines.append(f"{name} {int(value)}")
        return "\n".join(lines)
