"""Chaos harness: fault-injected serving must stay bitwise-correct.

``bench --serve --chaos`` drives N concurrent resumable clients through
the full serving stack while a seeded :class:`~repro.faults.FaultPlan`
injects failures at every site class — kernel raises mid-advance, plan
cache lookups, pool compile/recycle, and the wire (corrupted frames,
dropped connections, truncated writes, latency).  The harness then
asserts the one property the whole recovery design exists for:

    **every client-visible output is bitwise-equal to the fault-free
    run** — degradation, retries, and RESUME are invisible except in
    the metrics.

The workload program is a 2-tap DSL smoother chosen because its plan
and compiled backends are bitwise-identical (a single fused expression
per output; no reassociation), so a mid-stream plan→compiled
degradation cannot show up as a least-significant-bit wobble and every
parity failure is a real protocol bug.  The fault-free baseline is
computed with *direct* sessions (no server), so the comparison also
spans the entire wire encoding.

Checks beyond parity:

* **no leaked sessions** — ``SessionPool.accounting()["outstanding"]``
  must be zero after shutdown: every session ever compiled was closed
  or sits idle;
* **coverage** — each of the four site classes (kernel / cache / pool /
  wire) fired at least one injection, so a green run can't mean "the
  faults never happened";
* **recovery actually ran** — degradations and retries are nonzero.

The report lands in ``results/chaos.txt``; exit codes for CI come from
the returned dict (``violations``, ``leaked``, ``missing_classes``).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from .. import faults
from .client import ServeClient
from .server import ServeConfig, StreamServer

__all__ = ["CHAOS_DSL", "DEFAULT_RATES", "run_chaos",
           "format_chaos_report"]

#: The workload: bitwise-identical across all three backends (each
#: output is one fused multiply-add; no sum reassociation), which is
#: what lets the harness demand *bitwise* parity across mid-stream
#: backend degradations.
CHAOS_DSL = """
float->float filter Smooth {
  work push 1 pop 1 peek 2 {
    push(0.75 * peek(0) + 0.25 * peek(1));
    pop();
  }
}
"""

#: Default injection rates: every site class exercised, transport
#: faults at or above the 5% the acceptance bar asks for.
DEFAULT_RATES = {
    "kernel.step": 0.05,
    "cache.lookup": 0.35,
    "pool.compile": 0.25,
    "pool.recycle": 0.25,
    "wire.corrupt": 0.05,
    "wire.drop": 0.05,
    "wire.truncate": 0.03,
    "wire.latency": 0.10,
}


def _client_inputs(index: int, chunks: int, chunk: int) -> list:
    """Client ``index``'s deterministic input chunks."""
    rng = np.random.default_rng(10_000 + index)
    return [rng.standard_normal(chunk) for _ in range(chunks)]


def _baseline(inputs: list) -> list:
    """Fault-free expected outputs, computed on direct sessions."""
    from ..dsl import compile_source
    from ..session import StreamSession

    graph = compile_source(CHAOS_DSL)
    session = StreamSession(graph, backend="compiled")
    try:
        return [session.push(c) for c in inputs]
    finally:
        session.close()


async def _chaos_client(index: int, host: str, port: int,
                        inputs: list, retries: int,
                        latencies: list) -> dict:
    """One resumable client pushing its chunks under the fault storm."""
    client = await ServeClient.connect(
        host, port, retries=retries, retry_seed=500 + index,
        backoff=0.02, backoff_cap=0.25)
    outputs = []
    try:
        await client.open(dsl=CHAOS_DSL, backend="plan", resumable=True)
        for chunk in inputs:
            t0 = time.perf_counter()
            outputs.append(await client.push(chunk))
            latencies.append(time.perf_counter() - t0)
        await client.close_session()
    finally:
        await client.close()
    return {"index": index, "outputs": outputs,
            "retries": client.retries_used, "resumes": client.resumes}


async def _recycle_wave(host: str, port: int, opens: int,
                        retries: int) -> None:
    """Sequential open/close churn on an interp-backend session so the
    ``pool.recycle`` site sees attempts: the first open parks a session
    at close, every later open rolls recycle against it.  Interp
    sessions never reach the kernel fault site, so this wave only
    exercises pool and wire faults."""
    client = await ServeClient.connect(
        host, port, retries=retries, retry_seed=999,
        backoff=0.02, backoff_cap=0.25)
    try:
        for _ in range(opens):
            await client.open(dsl=CHAOS_DSL, backend="interp",
                              resumable=True)
            await client.close_session()
    finally:
        await client.close()


async def _run(clients: int, chunks: int, chunk: int, seed: int,
               rates: dict, retries: int) -> dict:
    expected = {i: _baseline(_client_inputs(i, chunks, chunk))
                for i in range(clients)}

    config = ServeConfig(resume_ttl=10.0, drain_deadline=5.0,
                         request_timeout=30.0)
    server = StreamServer(config)
    host, port = await server.start()

    plan = faults.FaultPlan(seed=seed, rates=rates)
    latencies: list = []
    t0 = time.perf_counter()
    faults.install(plan)
    try:
        results = await asyncio.gather(*(
            _chaos_client(i, host, port,
                          _client_inputs(i, chunks, chunk),
                          retries, latencies)
            for i in range(clients)))
        await _recycle_wave(host, port, opens=12, retries=retries)
    finally:
        faults.uninstall()
    wall = time.perf_counter() - t0

    snap = server.stats_snapshot()
    await server.aclose()
    accounting = server.pool.accounting()

    violations = []
    for r in results:
        got = np.concatenate([np.asarray(o) for o in r["outputs"]]) \
            if r["outputs"] else np.empty(0)
        want = np.concatenate(expected[r["index"]]) \
            if expected[r["index"]] else np.empty(0)
        if got.tobytes() != want.tobytes():
            diff = "length mismatch" if len(got) != len(want) else \
                f"maxdiff {np.max(np.abs(got - want)):.3e}"
            violations.append(f"client {r['index']}: {diff}")

    fired_by_class = plan.fired_by_class()
    missing = [cls for cls in ("kernel", "cache", "pool", "wire")
               if fired_by_class.get(cls, 0) == 0]

    lat = np.sort(np.asarray(latencies)) if latencies else np.zeros(1)
    counts = plan.counts()
    return {
        "seed": seed,
        "clients": clients,
        "chunks": chunks,
        "chunk": chunk,
        "rates": dict(rates),
        "attempts": counts["attempts"],
        "fired": counts["fired"],
        "fired_by_class": fired_by_class,
        "missing_classes": missing,
        "violations": violations,
        "retries": sum(r["retries"] for r in results),
        "resumes": sum(r["resumes"] for r in results),
        "degraded": int(snap.get("serve.requests.degraded", 0)),
        "replayed": int(snap.get("serve.requests.replayed", 0)),
        "parks": int(snap.get("serve.sessions.parks", 0)),
        "session_resumes": int(snap.get("serve.sessions.resumed", 0)),
        "restores": int(snap.get("serve.sessions.restored", 0)),
        "breaker_trips": int(snap.get("serve.breaker.tripped", 0)),
        "accounting": accounting,
        "leaked": accounting["outstanding"],
        "p50_ms": float(lat[int(0.50 * (len(lat) - 1))]) * 1e3,
        "p99_ms": float(lat[int(0.99 * (len(lat) - 1))]) * 1e3,
        "wall_seconds": wall,
    }


def run_chaos(clients: int = 8, chunks: int = 12, chunk: int = 64,
              seed: int = 20260807, rates: dict | None = None,
              retries: int = 8) -> dict:
    """Run the chaos harness; returns the result dict (see module
    docstring for the checks it encodes)."""
    if rates is None:
        rates = DEFAULT_RATES
    return asyncio.run(_run(clients, chunks, chunk, seed, rates, retries))


def format_chaos_report(r: dict) -> str:
    """``results/chaos.txt``: the parity verdict, fault ledger, and
    what recovery cost."""
    lines = []
    w = lines.append
    w("repro chaos harness — fault-injected serving parity")
    w("=" * 60)
    w(f"{'seed':<26}{r['seed']}")
    w(f"{'clients':<26}{r['clients']}")
    w(f"{'workload':<26}{r['chunks']} x {r['chunk']}-sample pushes "
      "per client (Smooth DSL, plan backend, resumable)")
    w(f"{'wall time':<26}{r['wall_seconds']:.2f} s")
    w("")
    w("fault plan (site: rate / attempts / fired)")
    for site in faults.SITES:
        rate = r["rates"].get(site, 0.0)
        w(f"  {site:<24}{rate:<8.2f}{r['attempts'][site]:<10}"
          f"{r['fired'][site]}")
    classes = ", ".join(
        f"{cls}={n}" for cls, n in sorted(r["fired_by_class"].items()))
    w(f"{'fired by class':<26}{classes}")
    if r["missing_classes"]:
        w(f"{'UNEXERCISED CLASSES':<26}{', '.join(r['missing_classes'])}")
    w("")
    w("parity")
    total = r["clients"]
    bad = len(r["violations"])
    w(f"{'  bitwise violations':<26}{bad} / {total} clients")
    for v in r["violations"]:
        w(f"    {v}")
    w("")
    w("recovery")
    w(f"{'  degraded re-runs':<26}{r['degraded']}")
    w(f"{'  replayed replies':<26}{r['replayed']}")
    w(f"{'  client retries':<26}{r['retries']}")
    w(f"{'  client resumes':<26}{r['resumes']}")
    w(f"{'  sessions parked':<26}{r['parks']}")
    w(f"{'  sessions reattached':<26}{r['session_resumes']}")
    w(f"{'  sessions restored':<26}{r['restores']}")
    w(f"{'  breaker trips':<26}{r['breaker_trips']}")
    acc = r["accounting"]
    w(f"{'  sessions leaked':<26}{r['leaked']} "
      f"(compiled {acc['compiled']}, closed {acc['closed']}, "
      f"idle {acc['idle']})")
    w("")
    w("latency under faults")
    w(f"{'  p50 push':<26}{r['p50_ms']:.3f} ms")
    w(f"{'  p99 push':<26}{r['p99_ms']:.3f} ms")
    verdict = "PASS" if not (r["violations"] or r["leaked"]
                             or r["missing_classes"]) else "FAIL"
    w("")
    w(f"{'verdict':<26}{verdict}")
    return "\n".join(lines)
