"""Load generator: N concurrent clients against one session server.

``python -m repro.bench --serve --clients N --app fir`` lands here.
The harness measures the serving layer the way the north star cares
about it — aggregate throughput across many concurrent streams — and
anchors it against the one-shot path a client would otherwise use:

* **serve** — one in-process :class:`~repro.serve.server.StreamServer`
  (unix-domain socket), ``clients`` concurrent
  :class:`~repro.serve.client.ServeClient` coroutines, each opening a
  push session on the app and streaming ``chunk_size``-sample pushes
  with a ``window``-deep pipeline until ``outputs`` outputs arrive.
  An *untimed* warmup wave first opens and parks one session per
  client, so the timed wave measures steady-state pooled serving
  (recycled sessions, inline fast path) — the cold-compile cost stays
  visible in the report's compiled/compile-seconds columns.  Per-push
  send→reply latencies are recorded client-side.
* **one-shot baseline** — the same total workload as ``clients``
  *sequential* ``run_graph(..., backend="plan")`` calls (cache warm):
  what serving costs when every request replans, re-fingerprints, and
  rebuilds an executor instead of recycling a pooled session.

The report (written to ``results/serve.txt``) carries aggregate
outputs/s for both, the speedup, client-side p50/p99 push latency,
session pool traffic (compiled / recycled / discarded / TTL-evicted),
the server's error-frame count — zero on a healthy run — and the
recovery columns (degraded re-runs, replayed replies, client retries,
resumed/restored sessions), which the chaos harness
(``bench --serve --chaos``, :mod:`repro.serve.chaos`) shares: a clean
load run shows them all zero, a chaos run shows what recovery cost.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time

import numpy as np

__all__ = ["run_load", "format_report"]


def _prepare_inputs(build, app_key: str, outputs: int, chunk_size: int,
                    backend: str, optimize: str) -> np.ndarray:
    """Pregenerate enough source input for one client's output budget."""
    from ..apps import source_values, split_app
    from ..profiling import NullProfiler
    from ..session import StreamSession

    source, body = split_app(build())
    probe = StreamSession(body, backend=backend, optimize=optimize,
                          profiler=NullProfiler())
    fed = 0
    got = 0
    while got < max(64, outputs // 100):
        got += len(probe.push(source_values(source, chunk_size)))
        fed += chunk_size
    probe.close()
    rate = max(fed / max(got, 1), 1.0)
    n = int(outputs * rate * 1.2) + fed
    return np.asarray(source_values(source, n), dtype=np.float64)


async def _client_task(path: str, app_key: str, backend: str,
                       optimize: str, inputs: np.ndarray, outputs: int,
                       chunk_size: int, latencies: list,
                       window: int) -> tuple:
    from .client import ServeClient

    client = await ServeClient.connect(path=path)
    try:
        await client.open(app=app_key, backend=backend, optimize=optimize)
        received = 0
        chunks = [inputs[start:start + chunk_size]
                  for start in range(0, len(inputs), chunk_size)]
        async for out in client.push_stream(chunks, window=window,
                                            latencies=latencies):
            received += len(out)
        if received < outputs:
            raise RuntimeError(
                f"client underfed: {received}/{outputs} outputs")
        await client.close_session()
        return received, client.retries_used, client.resumes
    finally:
        await client.close()


async def _warm_task(path: str, app_key: str, backend: str,
                     optimize: str, chunk: np.ndarray) -> None:
    """Open, touch, and park one session so the timed wave recycles it."""
    from .client import ServeClient

    client = await ServeClient.connect(path=path)
    try:
        await client.open(app=app_key, backend=backend, optimize=optimize)
        await client.push(chunk)
        await client.close_session()  # releases to the pool (reset+park)
    finally:
        await client.close()


async def _serve_phase(app_key: str, backend: str, optimize: str,
                       inputs: np.ndarray, clients: int, outputs: int,
                       chunk_size: int, config, window: int) -> dict:
    from .server import StreamServer, parse_stats

    server = StreamServer(config=config)
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    path = os.path.join(sockdir, "s")
    await server.start(path=path)
    latencies: list[float] = []
    try:
        # untimed warmup: park `clients` sessions so the measured wave
        # exercises steady-state serving (recycled sessions), not the
        # cold-start compile stampede — that cost is still visible in
        # the report's compiled/compile-seconds columns
        await asyncio.gather(*[
            _warm_task(path, app_key, backend, optimize,
                       inputs[:chunk_size])
            for _ in range(clients)])
        t0 = time.perf_counter()
        totals = await asyncio.gather(*[
            _client_task(path, app_key, backend, optimize, inputs,
                         outputs, chunk_size, latencies, window)
            for _ in range(clients)])
        wall = time.perf_counter() - t0
        retries = sum(t[1] for t in totals)
        resumes = sum(t[2] for t in totals)
        totals = [t[0] for t in totals]
        # demonstrate TTL eviction: expire every parked session now
        # instead of waiting out the idle_ttl clock
        evicted = server.pool.evict_idle(
            now=time.monotonic() + server.pool.idle_ttl + 1)
        from .client import ServeClient
        probe = await ServeClient.connect(path=path)
        stats_text = await probe.stats()
        await probe.close()
        stats = parse_stats(stats_text)
        return {"wall": wall, "outputs": sum(totals),
                "latencies": latencies, "stats": stats,
                "stats_text": stats_text, "evicted": evicted,
                "retries": retries, "resumes": resumes,
                "graphs": server.pool.graph_stats()}
    finally:
        await server.aclose()
        try:
            os.unlink(path)
            os.rmdir(sockdir)
        except OSError:
            pass


def _oneshot_phase(build, clients: int, outputs: int, backend: str,
                   optimize: str) -> float:
    """Wall seconds for ``clients`` sequential one-shot run_graph calls."""
    from ..runtime.executor import run_graph

    run_graph(build(), min(outputs, 256), backend=backend,
              optimize=optimize)  # warm the plan cache
    t0 = time.perf_counter()
    for _ in range(clients):
        run_graph(build(), outputs, backend=backend, optimize=optimize)
    return time.perf_counter() - t0


def run_load(*, app: str = "fir", clients: int = 64,
             outputs: int = 4096, chunk_size: int = 1024,
             backend: str = "plan", optimize: str = "none",
             window: int = 2, config=None,
             out_path: str | None = None) -> dict:
    """Drive the benchmark; returns the result record (see module doc).

    ``out_path`` additionally writes the human-readable report there
    (parent directories are created).
    """
    from ..apps import BENCHMARKS, resolve_app
    from .server import ServeConfig

    app_key = resolve_app(app)
    build = BENCHMARKS[app_key]
    if config is None:
        # every warmed session must fit the idle bucket or the warmup
        # wave's overflow gets discarded instead of parked; a small
        # worker pool beats the executor default here — session work is
        # GIL-bound, so more threads only add scheduling thrash
        config = ServeConfig(max_idle_per_key=max(clients, 8),
                             max_workers=4)
    inputs = _prepare_inputs(build, app_key, outputs, chunk_size,
                             backend, optimize)
    oneshot_wall = _oneshot_phase(build, clients, outputs, backend,
                                  optimize)
    serve = asyncio.run(_serve_phase(app_key, backend, optimize, inputs,
                                     clients, outputs, chunk_size,
                                     config, window))
    lat = np.asarray(serve["latencies"])
    total = serve["outputs"]
    stats = serve["stats"]
    result = {
        "app": app_key,
        "backend": backend,
        "optimize": optimize,
        "clients": clients,
        "outputs_per_client": outputs,
        "chunk_size": chunk_size,
        "window": window,
        "serve_wall_s": round(serve["wall"], 6),
        "oneshot_wall_s": round(oneshot_wall, 6),
        "aggregate_outputs_per_s": round(total / serve["wall"], 1),
        "oneshot_outputs_per_s": round(
            clients * outputs / oneshot_wall, 1),
        "speedup_vs_oneshot": round(
            (total / serve["wall"])
            / ((clients * outputs) / oneshot_wall), 2),
        "push_requests": int(len(lat)),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
        "sessions_compiled": int(stats.get("serve.sessions.compiled", 0)),
        "sessions_recycled": int(stats.get("serve.sessions.recycled", 0)),
        "sessions_discarded": int(
            stats.get("serve.sessions.discarded", 0)),
        "sessions_evicted_ttl": serve["evicted"],
        "error_frames": int(stats.get("serve.errors", 0)),
        # recovery columns (shared with the chaos report): all zero on
        # a healthy fault-free run
        "requests_degraded": int(
            stats.get("serve.requests.degraded", 0)),
        "requests_replayed": int(
            stats.get("serve.requests.replayed", 0)),
        "client_retries": serve["retries"],
        "client_resumes": serve["resumes"],
        "sessions_resumed": int(stats.get("serve.sessions.resumed", 0)),
        "sessions_restored": int(
            stats.get("serve.sessions.restored", 0)),
        "breaker_trips": int(stats.get("serve.breaker.tripped", 0)),
        "graphs": serve["graphs"],
    }
    if out_path is not None:
        os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
        with open(out_path, "w") as fh:
            fh.write(format_report(result))
    return result


def format_report(r: dict) -> str:
    """The ``results/serve.txt`` report for one load run."""
    title = (f"repro.serve load test — {r['app']}: {r['clients']} "
             f"concurrent clients x {r['outputs_per_client']} outputs "
             f"(chunk {r['chunk_size']}, pipeline window {r['window']}, "
             f"backend {r['backend']}, optimize {r['optimize']})")
    lines = [title, "=" * len(title)]

    def row(label, value):
        lines.append(f"{label.ljust(26)}{value}")

    row("aggregate throughput",
        f"{r['aggregate_outputs_per_s']:,.0f} outputs/s  "
        f"(wall {r['serve_wall_s']:.3f} s)")
    row("one-shot baseline",
        f"{r['oneshot_outputs_per_s']:,.0f} outputs/s  "
        f"({r['clients']} sequential run_graph calls, wall "
        f"{r['oneshot_wall_s']:.3f} s)")
    row("speedup vs one-shot", f"{r['speedup_vs_oneshot']:.2f}x")
    row("push latency",
        f"p50 {r['p50_ms']:.3f} ms   p99 {r['p99_ms']:.3f} ms   "
        f"({r['push_requests']} requests)")
    row("session pool",
        f"compiled {r['sessions_compiled']}  recycled "
        f"{r['sessions_recycled']}  discarded {r['sessions_discarded']}  "
        f"evicted(ttl) {r['sessions_evicted_ttl']}")
    row("error frames", str(r["error_frames"]))
    row("recovery",
        f"degraded {r['requests_degraded']}  replayed "
        f"{r['requests_replayed']}  retries {r['client_retries']}  "
        f"resumed {r['sessions_resumed']}  restored "
        f"{r['sessions_restored']}  breaker-trips "
        f"{r['breaker_trips']}")
    for g in r["graphs"]:
        comp = g["compile_seconds"]
        serve = g["serve_seconds"]
        row(f"graph {g['graph']}",
            f"compiles {g['compiles']} ({comp:.3f} s)  requests "
            f"{g['requests']}  serve {serve:.3f} s")
    lines.append("")
    lines.append(
        "serve = pooled push sessions over one shared plan cache "
        "(compile once, recycle via reset); one-shot = replan + rebuild "
        "an executor per call.")
    return "\n".join(lines) + "\n"
