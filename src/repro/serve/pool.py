"""Session pooling keyed by graph fingerprint.

Compilation is the expensive part of serving: planning probes every
filter, runs the optimize rewrite, and simulates the schedule.  A
session holds all of that — its pinned
:class:`~repro.exec.cache.PlanEntry` — and PR 5's simulator end-state
snapshot makes ``reset()`` rewind a session to its initial state
*without* recompiling.  The pool turns that into a server primitive:

* ``acquire(key, factory)`` hands back a parked idle session for
  ``key`` (zero compile work — the reset already happened at release
  time) or builds a fresh one through ``factory(seed)``, timing the
  compile.  The first compile per key is **single-flighted** and its
  :class:`~repro.exec.cache.PlanEntry` becomes the key's *plan seed*:
  concurrent siblings block until it exists, then compile with the
  seed's extraction decisions and probe results instead of redoing
  them — push-session graphs fingerprint single-use (the feed ring),
  so without the seed a cold stampede of N clients would pay N full
  planning passes the plan cache can never share;
* ``release`` resets the session and parks it for the next client,
  bounded by ``max_idle_per_key`` (overflow sessions are closed);
* ``evict_idle`` closes sessions parked longer than ``idle_ttl`` —
  ``StreamSession.close`` unpins the plan entry, so an abandoned
  graph's plan becomes evictable from the plan cache too.

Robustness extensions:

* **Circuit breaker** — ``record_poison(key)`` counts execution
  failures per key; at ``breaker_threshold`` the key is *quarantined*
  for ``breaker_cooldown`` seconds and ``quarantined(key)`` turns true,
  which the server uses to route new opens of a repeatedly-poisoning
  plan graph to the compiled backend instead of recompiling the same
  poisonous plan forever.
* **Accounting** — every session the pool has ever built (or adopted
  through ``replace``) is counted in ``compiled_total``; every close in
  ``closed_total``.  ``accounting()["outstanding"]`` is therefore the
  number of sessions currently alive outside the idle buckets — zero
  after a clean drain, which is exactly the chaos harness's leak check.
* **Fault sites** — ``pool.compile`` fires before a factory runs,
  ``pool.recycle`` before an idle session is popped; both leave the
  pool's books balanced when they fire.

Keys are content fingerprints (plus backend/optimize/mode), so two
clients opening the same program by different routes share one pool
bucket.  Sharing is sound because pooled reuse is *serial*: a session
is held by at most one client at a time, and concurrent sessions of the
same graph share only the immutable plan (read-only), which the
interleaving-parity tests pin down.

The pool is thread-safe: the server compiles and executes on worker
threads while the event loop acquires and releases.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .. import faults as _faults
from .metrics import MetricsRegistry

__all__ = ["PooledSession", "SessionPool"]

_NO_SEED = object()  # key compiled, but yields no plan entry to donate


class PooledSession:
    """A pool-managed :class:`~repro.session.StreamSession`."""

    __slots__ = ("session", "key", "label", "parked_at", "poisoned",
                 "avg_serve", "factory", "snap", "replies", "resume_token",
                 "degraded")

    def __init__(self, session, key, label: str):
        self.session = session
        self.key = key
        self.label = label
        self.parked_at: float | None = None  # set while idle
        #: a request timed out (its worker thread may still be touching
        #: the session) or errored mid-advance: never recycle, only close
        self.poisoned = False
        #: EWMA of recent request durations (seconds; None until the
        #: first request) — the server's inline-fast-path predictor
        self.avg_serve: float | None = None
        #: the OPEN's session factory — kept so recovery can rebuild
        #: this session (optionally on another backend)
        self.factory = None
        #: last good :class:`~repro.session.SessionSnapshot`
        self.snap = None
        #: request-id -> (reply kind, payload) for idempotent retries
        #: (``OrderedDict``; ``None`` on non-resumable sessions)
        self.replies = None
        #: u64 token a disconnected client RESUMEs with
        self.resume_token = None
        #: the session was swapped to the compiled backend mid-stream;
        #: correct to keep serving this client, wrong to park under a
        #: plan-backend key — release closes it
        self.degraded = False


class _GraphStats:
    __slots__ = ("label", "compiles", "compile_seconds", "serve_seconds",
                 "requests")

    def __init__(self, label: str):
        self.label = label
        self.compiles = 0
        self.compile_seconds = 0.0
        self.serve_seconds = 0.0
        self.requests = 0


class SessionPool:
    def __init__(self, *, max_idle_per_key: int = 8,
                 idle_ttl: float = 60.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 metrics: MetricsRegistry | None = None,
                 clock=time.monotonic):
        self.max_idle_per_key = max_idle_per_key
        self.idle_ttl = idle_ttl
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._lock = threading.Lock()
        self._idle: dict[object, deque[PooledSession]] = {}
        self._graphs: dict[object, _GraphStats] = {}
        #: key -> donated PlanEntry (or _NO_SEED for scalar backends)
        self._seeds: dict[object, object] = {}
        #: key -> lock serializing that key's *first* compile
        self._seed_locks: dict[object, threading.Lock] = {}
        #: key -> (poison count, last poison timestamp) — the breaker
        self._poisons: dict[object, tuple[int, float]] = {}
        self.compiled_total = 0
        self.closed_total = 0
        self._closed = False

    # -- internal ----------------------------------------------------------
    def _graph(self, key, label: str) -> _GraphStats:
        g = self._graphs.get(key)
        if g is None:
            g = self._graphs[key] = _GraphStats(label)
        return g

    def _close_session(self, ps: PooledSession, reason: str) -> None:
        self.metrics.counter(f"serve.sessions.{reason}").inc()
        self.metrics.gauge("serve.sessions.pooled").dec()
        with self._lock:
            self.closed_total += 1
        try:
            ps.session.close()
        except Exception:  # closing must never propagate into serving
            pass

    def _compile(self, key, factory, label: str, seed) -> PooledSession:
        """Build a fresh session through ``factory(seed)``, timed."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("pool.compile")
        g = self._graph(key, label)
        t0 = self._clock()
        session = factory(seed)
        dt = self._clock() - t0
        with self._lock:
            g.compiles += 1
            g.compile_seconds += dt
            self.compiled_total += 1
        self.metrics.counter("serve.sessions.compiled").inc()
        self.metrics.counter("serve.compile_seconds").inc(dt)
        self.metrics.gauge("serve.sessions.pooled").inc()
        self.metrics.gauge("serve.sessions.live").inc()
        return PooledSession(session, key, label)

    # -- public API --------------------------------------------------------
    def acquire(self, key, factory, label: str = "?") -> PooledSession:
        """A ready-to-use session for ``key``: a recycled idle one, or a
        fresh compile through ``factory(seed)`` (timed as compile cost).

        ``seed`` is the key's donated plan entry (None on the very first
        compile, which is serialized per key so later siblings always
        find the seed — see the module docstring).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("session pool is closed")
            bucket = self._idle.get(key)
            if bucket:
                # fault site fires *before* the pop: the candidate stays
                # parked, nothing leaks
                if _faults.ACTIVE is not None:
                    _faults.ACTIVE.fire("pool.recycle")
                ps = bucket.popleft()
                ps.parked_at = None
                self.metrics.counter("serve.sessions.recycled").inc()
                self.metrics.gauge("serve.sessions.idle").dec()
                self.metrics.gauge("serve.sessions.live").inc()
                return ps
            self._graph(key, label)
            seed = self._seeds.get(key)
            seed_lock = self._seed_locks.setdefault(key, threading.Lock())
        if seed is None:
            with seed_lock:
                with self._lock:
                    seed = self._seeds.get(key)
                if seed is None:  # won the race: the seeding compile
                    ps = self._compile(key, factory, label, None)
                    entry = getattr(ps.session, "cache_entry", None)
                    with self._lock:
                        self._seeds[key] = \
                            entry if entry is not None else _NO_SEED
                    return ps
        return self._compile(key, factory, label,
                             None if seed is _NO_SEED else seed)

    def release(self, ps: PooledSession) -> None:
        """Return a session: reset + park it for reuse, or close it
        (poisoned, degraded, pool closed, or the idle bucket is full).

        Parking scrubs the recovery attachments (checkpoint, reply
        cache, resume token) — a recycled session must never leak a
        previous client's stream state."""
        self.metrics.gauge("serve.sessions.live").dec()
        if ps.poisoned:
            self.record_poison(ps.key)
        ps.snap = None
        ps.replies = None
        ps.resume_token = None
        if not ps.poisoned and not ps.degraded and not ps.session.closed:
            try:
                ps.session.reset(clear_profile=True)
            except Exception:
                ps.poisoned = True
        with self._lock:
            full = self._closed or ps.poisoned or ps.degraded or \
                ps.session.closed or \
                len(self._idle.setdefault(ps.key, deque())) \
                >= self.max_idle_per_key
            if not full:
                ps.parked_at = self._clock()
                self._idle[ps.key].append(ps)
                self.metrics.gauge("serve.sessions.idle").inc()
                return
        self._close_session(
            ps, "poisoned" if ps.poisoned else "discarded")

    def discard(self, ps: PooledSession) -> None:
        """Close a session outright (never parked)."""
        self.metrics.gauge("serve.sessions.live").dec()
        self._close_session(ps, "discarded")

    def replace(self, ps: PooledSession, session,
                reason: str = "degraded") -> None:
        """Swap ``ps``'s underlying session for a replacement built
        outside the pool (the degradation path), keeping the books
        balanced: the old session is closed and counted, the new one
        adopted into ``compiled_total``."""
        old = ps.session
        self.metrics.counter(f"serve.sessions.{reason}").inc()
        with self._lock:
            self.closed_total += 1
            self.compiled_total += 1
        try:
            old.close()
        except Exception:
            pass
        ps.session = session
        ps.degraded = True

    # -- circuit breaker ---------------------------------------------------
    def record_poison(self, key) -> int:
        """Count one execution failure against ``key``; returns the
        running count and trips the breaker at the threshold."""
        now = self._clock()
        with self._lock:
            count, _last = self._poisons.get(key, (0, now))
            count += 1
            self._poisons[key] = (count, now)
            tripped = count == self.breaker_threshold
        if tripped:
            self.metrics.counter("serve.breaker.tripped").inc()
        return count

    def quarantined(self, key) -> bool:
        """Whether the breaker currently quarantines ``key``.  A key
        cools down ``breaker_cooldown`` seconds after its last poison,
        then gets a clean slate."""
        now = self._clock()
        with self._lock:
            entry = self._poisons.get(key)
            if entry is None:
                return False
            count, last = entry
            if now - last >= self.breaker_cooldown:
                del self._poisons[key]
                return False
            return count >= self.breaker_threshold

    # -- bookkeeping -------------------------------------------------------
    def record_serve(self, ps: PooledSession, seconds: float) -> None:
        """Attribute request execution time to the session's graph."""
        with self._lock:
            g = self._graph(ps.key, ps.label)
            g.requests += 1
            g.serve_seconds += seconds

    def evict_idle(self, now: float | None = None) -> int:
        """Close sessions parked longer than ``idle_ttl``; returns the
        count.  Closing unpins their plan entries."""
        if now is None:
            now = self._clock()
        victims = []
        with self._lock:
            for bucket in self._idle.values():
                while bucket and \
                        now - bucket[0].parked_at >= self.idle_ttl:
                    victims.append(bucket.popleft())
            if victims:
                self.metrics.gauge("serve.sessions.idle").dec(len(victims))
        for ps in victims:
            self._close_session(ps, "evicted")
        return len(victims)

    def close_all(self) -> None:
        """Close every idle session and refuse further acquires."""
        with self._lock:
            self._closed = True
            victims = [ps for b in self._idle.values() for ps in b]
            self._idle.clear()
            self._seeds.clear()
            self._seed_locks.clear()
            if victims:
                self.metrics.gauge("serve.sessions.idle").dec(len(victims))
        for ps in victims:
            self._close_session(ps, "discarded")

    # -- introspection -----------------------------------------------------
    @property
    def idle_count(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._idle.values())

    def accounting(self) -> dict:
        """Lifetime session books: ``outstanding`` is sessions alive
        outside the idle buckets (held by connections, parked for
        resume) — zero after a clean drain, the leak check."""
        with self._lock:
            idle = sum(len(b) for b in self._idle.values())
            return {"compiled": self.compiled_total,
                    "closed": self.closed_total, "idle": idle,
                    "outstanding":
                        self.compiled_total - self.closed_total - idle}

    def graph_stats(self) -> list[dict]:
        """Per-graph compile vs serve accounting, sorted by label."""
        with self._lock:
            rows = [{"graph": g.label, "compiles": g.compiles,
                     "compile_seconds": g.compile_seconds,
                     "requests": g.requests,
                     "serve_seconds": g.serve_seconds}
                    for g in self._graphs.values()]
        return sorted(rows, key=lambda r: r["graph"])
