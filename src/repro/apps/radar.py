"""Radar benchmark: coarse-grained beamformer (thesis §5.1, Figures B-4/B-5).

The thesis could not include this source (old syntax); we reimplement it
from the description: 12 input channels, each a pipeline of an input
generator and two complex FIR stages, joined roundrobin(2,...); then 4
beams in a duplicate splitjoin, each a pipeline of Beamform (pop/peek
2*channels, push 2 — the vector-vector multiply the paper highlights), a
complex matched FIR, a magnitude stage, and a detector.

Complex samples travel interleaved (re, im) on the tapes, so every
complex FIR is a linear filter with peek 2*taps, pop 2*decimation,
push 2.
"""

from __future__ import annotations

import math

from ..graph.streams import Duplicate, Filter, Pipeline, RoundRobin, SplitJoin
from ..ir import FilterBuilder, call
from .common import printer

NAME = "Radar"


def _coeffs(seed: int, n: int) -> list[float]:
    """Deterministic pseudo-random coefficients (no RNG dependency)."""
    return [math.sin(0.7 * seed + 1.3 * k + 0.5) for k in range(n)]


def input_generate(channel: int) -> Filter:
    """Pushes an interleaved complex sample per firing (stateful)."""
    f = FilterBuilder(f"InputGenerate{channel}", peek=0, pop=0, push=2)
    n = f.state("n", 0)
    phase = f.const("phase", 0.25 * channel)
    with f.work():
        f.push(call("sin", 0.1 * n + phase))
        f.push(call("cos", 0.05 * n + phase))
        f.assign(n, n + 1)
    return f.build()


def complex_fir(name: str, taps: int, decimation: int = 1,
                seed: int = 1) -> Filter:
    """Complex FIR on interleaved (re, im) data: peek 2t, pop 2d, push 2."""
    hr = _coeffs(seed, taps)
    hi = _coeffs(seed + 17, taps)
    f = FilterBuilder(name, peek=max(2 * taps, 2 * decimation),
                      pop=2 * decimation, push=2)
    chr_ = f.const_array("hr", hr)
    chi = f.const_array("hi", hi)
    with f.work():
        re = f.local("re", 0.0)
        im = f.local("im", 0.0)
        with f.loop("k", 0, taps) as k:
            f.assign(re, re + chr_[k] * f.peek(2 * k)
                     - chi[k] * f.peek(2 * k + 1))
            f.assign(im, im + chr_[k] * f.peek(2 * k + 1)
                     + chi[k] * f.peek(2 * k))
        f.push(re)
        f.push(im)
        with f.loop("k", 0, 2 * decimation):
            f.pop()
    return f.build()


def beamform(beam: int, channels: int) -> Filter:
    """Weighted sum of one complex sample per channel: the vector-vector
    multiply with push 2, pop/peek 2*channels (§5.2)."""
    wr = _coeffs(100 + beam, channels)
    wi = _coeffs(200 + beam, channels)
    f = FilterBuilder(f"Beamform{beam}", peek=2 * channels,
                      pop=2 * channels, push=2)
    cwr = f.const_array("wr", wr)
    cwi = f.const_array("wi", wi)
    with f.work():
        re = f.local("re", 0.0)
        im = f.local("im", 0.0)
        with f.loop("c", 0, channels) as c:
            f.assign(re, re + cwr[c] * f.peek(2 * c)
                     - cwi[c] * f.peek(2 * c + 1))
            f.assign(im, im + cwr[c] * f.peek(2 * c + 1)
                     + cwi[c] * f.peek(2 * c))
        f.push(re)
        f.push(im)
        with f.loop("c", 0, 2 * channels):
            f.pop()
    return f.build()


def magnitude() -> Filter:
    f = FilterBuilder("Magnitude", peek=2, pop=2, push=1)
    with f.work():
        re = f.local("re", f.pop_expr())
        im = f.local("im", f.pop_expr())
        f.push(call("sqrt", re * re + im * im))
    return f.build()


def detector(threshold: float = 0.5) -> Filter:
    f = FilterBuilder("Detector", peek=1, pop=1, push=1)
    with f.work():
        v = f.local("v", f.pop_expr())
        hit = f.if_(v > threshold)
        with hit:
            f.push(v)
        with hit.otherwise():
            f.push(0.0)
    return f.build()


def build(channels: int = 12, beams: int = 4, fir1_taps: int = 8,
          fir2_taps: int = 4, mf_taps: int = 8,
          decimation: int = 1) -> Pipeline:
    channel_pipes = [
        Pipeline([
            input_generate(c),
            complex_fir(f"BeamFir1_{c}", fir1_taps, decimation, seed=c),
            complex_fir(f"BeamFir2_{c}", fir2_taps, 1, seed=c + 31),
        ], name=f"channel{c}")
        for c in range(channels)
    ]
    # Channels are independent sources (pop 0), so the splitter is
    # vestigial — only the roundrobin(2, ...) joiner shapes the data
    # (StreamIt uses a null splitter here).
    channel_sj = SplitJoin(
        Duplicate(), channel_pipes, RoundRobin(tuple([2] * channels)),
        name="ChannelSplitJoin")
    beam_pipes = [
        Pipeline([
            beamform(b, channels),
            complex_fir(f"BeamFirMF_{b}", mf_taps, 1, seed=300 + b),
            magnitude(),
            detector(),
        ], name=f"beam{b}")
        for b in range(beams)
    ]
    beam_sj = SplitJoin(Duplicate(), beam_pipes,
                        RoundRobin(tuple([1] * beams)),
                        name="BeamSplitJoin")
    return Pipeline([
        channel_sj,
        beam_sj,
        printer(),
    ], name="Radar")
