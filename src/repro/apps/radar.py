"""Radar benchmark: coarse-grained beamformer (thesis §5.1, Figures B-4/B-5).

The thesis could not include this source (old syntax); we reimplement it
from the description: 12 input channels, each a pipeline of an input
generator and two complex FIR stages, joined roundrobin(2,...); then 4
beams in a duplicate splitjoin, each a pipeline of Beamform (pop/peek
2*channels, push 2 — the vector-vector multiply the paper highlights), a
complex matched FIR, a magnitude stage, and a detector.

Complex samples travel interleaved (re, im) on the tapes, so every
complex FIR is a linear filter with peek 2*taps, pop 2*decimation,
push 2.  Elaborated from ``apps/dsl/radar.str``.
"""

from __future__ import annotations

from ..graph.streams import Filter, Pipeline
from ._loader import load_app, load_unit

NAME = "Radar"


def input_generate(channel: int) -> Filter:
    """Pushes an interleaved complex sample per firing (stateful)."""
    f = load_unit("radar", "InputGenerate", channel)
    f.name = f"InputGenerate{channel}"
    return f


def complex_fir(name: str, taps: int, decimation: int = 1,
                seed: int = 1) -> Filter:
    """Complex FIR on interleaved (re, im) data: peek 2t, pop 2d, push 2."""
    f = load_unit("radar", "ComplexFir", taps, decimation, seed, seed + 17)
    f.name = name
    return f


def beamform(beam: int, channels: int) -> Filter:
    """Weighted sum of one complex sample per channel: the vector-vector
    multiply with push 2, pop/peek 2*channels (§5.2)."""
    f = load_unit("radar", "Beamform", beam, channels)
    f.name = f"Beamform{beam}"
    return f


def magnitude() -> Filter:
    return load_unit("radar", "Magnitude")


def detector(threshold: float = 0.5) -> Filter:
    return load_unit("radar", "Detector", threshold)


def build(channels: int = 12, beams: int = 4, fir1_taps: int = 8,
          fir2_taps: int = 4, mf_taps: int = 8,
          decimation: int = 1) -> Pipeline:
    g = load_app("radar", "Radar", channels, beams, fir1_taps, fir2_taps,
                 mf_taps, decimation)
    for c, chan in enumerate(g.children[0].children):
        chan.name = f"channel{c}"
        chan.children[0].name = f"InputGenerate{c}"
        chan.children[1].name = f"BeamFir1_{c}"
        chan.children[2].name = f"BeamFir2_{c}"
    for b, beam in enumerate(g.children[1].children):
        beam.name = f"beam{b}"
        beam.children[0].name = f"Beamform{b}"
        beam.children[1].name = f"BeamFirMF_{b}"
    return g
