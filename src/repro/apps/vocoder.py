"""Vocoder benchmark: channel voice coder (thesis Figure A-14).

A pitch-detection branch (center clipper + autocorrelation peak picker,
both nonlinear) runs in parallel with a four-channel filter bank of
band-pass filters and decimators (all linear).  The joiner interleaves
one pitch value with four subband values.

:func:`build_feedback` is the feedback variant (benchmark name
``VocoderEcho``): the conditioned input passes through an IIR echo
`FeedbackLoop` before analysis, exercising the plan backend's hybrid
islanding on a real multi-stage program — the splitjoin and filter bank
stay batched while the cycle runs as a feedback island.
Elaborated from ``apps/dsl/vocoder.str``.
"""

from __future__ import annotations

from ..graph.streams import Filter, Pipeline, SplitJoin
from ._loader import load_app, load_unit

NAME = "Vocoder"

#: The feedback variant needs echo.str for its EchoLoop.
_FILES = ("common", "echo", "vocoder")

_SOURCE_VALUES = [
    -0.70867825, 0.9750938, -0.009129746, 0.28532153, -0.42127264,
    -0.95795095, 0.68976873, 0.99901736, -0.8581795, 0.9863592, 0.909825,
]


def data_source() -> Filter:
    return load_unit(_FILES, "DataSource")


def center_clip(lo: float = -0.75, hi: float = 0.75) -> Filter:
    return load_unit(_FILES, "CenterClip", lo, hi)


def corr_peak(winsize: int, decimation: int,
              threshold: float = 0.07) -> Filter:
    """Autocorrelation peak picker — quadratic in the input, nonlinear."""
    return load_unit(_FILES, "CorrPeak", winsize, decimation, threshold)


def pitch_detector(window: int, decimation: int) -> Pipeline:
    return load_unit(_FILES, "PitchDetector", window, decimation)


def filter_decimate(i: int, decimation: int, taps: int,
                    rate: float = 8000.0) -> Pipeline:
    g = load_unit(_FILES, "FilterDecimate", i, decimation, taps, rate)
    g.name = f"FilterDecimate{i}"
    return g


def vocoder_filter_bank(n: int, decimation: int, taps: int) -> SplitJoin:
    sj = load_unit(_FILES, "VocoderFilterBank", n, decimation, taps)
    for i, branch in enumerate(sj.children):
        branch.name = f"FilterDecimate{i}"
    return sj


def _rename_main(main: SplitJoin) -> SplitJoin:
    for i, branch in enumerate(main.children[1].children):
        branch.name = f"FilterDecimate{i}"
    return main


def build(window: int = 100, decimation: int = 50, n_filters: int = 4,
          taps: int = 64) -> Pipeline:
    g = load_app(_FILES, "ChannelVocoder", window, decimation, n_filters,
                 taps)
    _rename_main(g.children[2])
    return g


NAME_FEEDBACK = "VocoderEcho"


def build_feedback(window: int = 100, decimation: int = 50,
                   n_filters: int = 4, taps: int = 64,
                   echo_delay: int = 256,
                   echo_gain: float = 0.35) -> Pipeline:
    """The vocoder with an IIR echo feedback stage after conditioning."""
    g = load_app(_FILES, "ChannelVocoderEcho", window, decimation,
                 n_filters, taps, echo_delay, echo_gain)
    g.children[2].name = "VocoderEchoLoop"
    _rename_main(g.children[3])
    return g
