"""Vocoder benchmark: channel voice coder (thesis Figure A-14).

A pitch-detection branch (center clipper + autocorrelation peak picker,
both nonlinear) runs in parallel with a four-channel filter bank of
band-pass filters and decimators (all linear).  The joiner interleaves
one pitch value with four subband values.

:func:`build_feedback` is the feedback variant (benchmark name
``VocoderEcho``): the conditioned input passes through an IIR echo
`FeedbackLoop` before analysis, exercising the plan backend's hybrid
islanding on a real multi-stage program — the splitjoin and filter bank
stay batched while the cycle runs as a feedback island.
"""

from __future__ import annotations

import math

from ..graph.streams import Duplicate, Filter, Pipeline, RoundRobin, SplitJoin
from ..ir import FilterBuilder
from .common import band_pass_filter, compressor, low_pass_filter, printer

NAME = "Vocoder"

_SOURCE_VALUES = [
    -0.70867825, 0.9750938, -0.009129746, 0.28532153, -0.42127264,
    -0.95795095, 0.68976873, 0.99901736, -0.8581795, 0.9863592, 0.909825,
]


def data_source() -> Filter:
    f = FilterBuilder("DataSource", peek=0, pop=0, push=1)
    data = f.const_array("x", _SOURCE_VALUES)
    idx = f.state("index", 0)
    with f.work():
        f.push(data[idx])
        f.assign(idx, (idx + 1) % len(_SOURCE_VALUES))
    return f.build()


def center_clip(lo: float = -0.75, hi: float = 0.75) -> Filter:
    f = FilterBuilder("CenterClip", peek=1, pop=1, push=1)
    with f.work():
        t = f.local("t", f.pop_expr())
        below = f.if_(t < lo)
        with below:
            f.push(lo)
        with below.otherwise():
            above = f.if_(t > hi)
            with above:
                f.push(hi)
            with above.otherwise():
                f.push(t)
    return f.build()


def corr_peak(winsize: int, decimation: int,
              threshold: float = 0.07) -> Filter:
    """Autocorrelation peak picker — quadratic in the input, nonlinear."""
    f = FilterBuilder("CorrPeak", peek=winsize, pop=decimation, push=1)
    thresh = f.const("THRESHOLD", threshold)
    w = f.const("winsize", winsize)
    with f.work():
        maxpeak = f.local("maxpeak", 0.0)
        with f.loop("i", 0, winsize) as i:
            s = f.local("sum", 0.0)
            with f.loop("j", i, winsize) as j:
                f.assign(s, s + f.peek(i) * f.peek(j))
            acorr = f.local("ac", s / w)
            bigger = f.if_(acorr > maxpeak)
            with bigger:
                f.assign(maxpeak, acorr)
        over = f.if_(maxpeak > thresh)
        with over:
            f.push(maxpeak)
        with over.otherwise():
            f.push(0.0)
        with f.loop("i", 0, decimation):
            f.pop()
    return f.build()


def pitch_detector(window: int, decimation: int) -> Pipeline:
    return Pipeline([center_clip(), corr_peak(window, decimation)],
                    name="PitchDetector")


def filter_decimate(i: int, decimation: int, taps: int,
                    rate: float = 8000.0) -> Pipeline:
    ws = 2 * math.pi * 400.0 * i / rate
    wp = 2 * math.pi * 400.0 * (i + 1) / rate
    return Pipeline([
        band_pass_filter(2.0, max(ws, 1e-3), wp, taps),
        compressor(decimation),
    ], name=f"FilterDecimate{i}")


def vocoder_filter_bank(n: int, decimation: int, taps: int) -> SplitJoin:
    return SplitJoin(
        Duplicate(),
        [filter_decimate(i, decimation, taps) for i in range(n)],
        RoundRobin(tuple([1] * n)),
        name="VocoderFilterBank")


def build(window: int = 100, decimation: int = 50, n_filters: int = 4,
          taps: int = 64) -> Pipeline:
    main = SplitJoin(
        Duplicate(),
        [pitch_detector(window, decimation),
         vocoder_filter_bank(n_filters, decimation, taps)],
        RoundRobin((1, n_filters)),
        name="MainSplitjoin")
    return Pipeline([
        data_source(),
        low_pass_filter(1.0, 2 * math.pi * 5000 / 8000, taps),
        main,
        printer(),
    ], name="ChannelVocoder")


NAME_FEEDBACK = "VocoderEcho"


def build_feedback(window: int = 100, decimation: int = 50,
                   n_filters: int = 4, taps: int = 64,
                   echo_delay: int = 256,
                   echo_gain: float = 0.35) -> Pipeline:
    """The vocoder with an IIR echo feedback stage after conditioning."""
    from .echo import echo_loop

    main = SplitJoin(
        Duplicate(),
        [pitch_detector(window, decimation),
         vocoder_filter_bank(n_filters, decimation, taps)],
        RoundRobin((1, n_filters)),
        name="MainSplitjoin")
    return Pipeline([
        data_source(),
        low_pass_filter(1.0, 2 * math.pi * 5000 / 8000, taps),
        echo_loop(echo_delay, echo_gain, name="VocoderEchoLoop"),
        main,
        printer(),
    ], name="ChannelVocoderEcho")
