"""Shared DSP components used across the benchmark suite.

These are the standard StreamIt library filters the benchmarks are
built from: windowed-sinc low/high-pass FIR filters, band-pass/
band-stop compositions, rate changers (compressor/expander), adders,
and sources/sinks.  Each factory elaborates its filter from the
canonical DSL declarations in ``apps/dsl/common.str`` — coefficient
computation happens in the declarations' ``init`` blocks at
elaboration time (the moral equivalent of StreamIt's ``init``
functions), and the work bodies lower to exactly the IR the
hand-written builders produced, so the linear extraction analysis sees
the same program either way.

``lowpass_coeffs``/``highpass_coeffs`` remain as pure-Python oracles
for tests and for callers that feed explicit coefficient vectors
through :func:`fir_filter`.
"""

from __future__ import annotations

import math

import numpy as np

from ..graph.streams import Filter, Pipeline
from ..runtime.builtins import Collector
from ._loader import load_unit


def lowpass_coeffs(gain: float, cutoff: float, taps: int) -> list[float]:
    """Windowed-sinc low-pass coefficients (rectangular window).

    ``h[i] = g * sin(wc * (i - N/2)) / (pi * (i - N/2))`` with the
    singularity at the center resolved to ``g * wc / pi``.  This is the
    Python mirror of ``LowPassFilter``'s init block in ``common.str``.
    """
    offset = taps // 2
    coeffs = []
    for i in range(taps):
        idx = i + 1
        if idx == offset:
            coeffs.append(gain * cutoff / math.pi)
        else:
            coeffs.append(gain * math.sin(cutoff * (idx - offset))
                          / (math.pi * (idx - offset)))
    return coeffs


def highpass_coeffs(gain: float, ws: float, taps: int) -> list[float]:
    """High-pass via spectral inversion of the low-pass prototype."""
    low = lowpass_coeffs(1.0, ws, taps)
    coeffs = [-gain * c for c in low]
    center = taps // 2 - 1
    coeffs[center] += gain
    return coeffs


def fir_filter(name: str, coeffs, decimation: int = 0) -> Filter:
    """An FIR convolution filter: peek N, pop 1+decimation, push 1."""
    h = np.asarray(coeffs, dtype=float)
    f = load_unit("common", "FIRFilter", len(h), decimation, h)
    f.name = name
    return f


def low_pass_filter(gain: float, cutoff: float, taps: int,
                    decimation: int = 0,
                    name: str = "LowPassFilter") -> Filter:
    f = load_unit("common", "LowPassFilter", gain, cutoff, taps, decimation)
    f.name = name
    return f


def high_pass_filter(gain: float, ws: float, taps: int,
                     name: str = "HighPassFilter") -> Filter:
    f = load_unit("common", "HighPassFilter", gain, ws, taps)
    f.name = name
    return f


def band_pass_filter(gain: float, ws: float, wp: float,
                     taps: int, name: str = "BandPassFilter") -> Pipeline:
    """Low-pass cascaded with high-pass (thesis Figure A-11)."""
    g = load_unit("common", "BandPassFilter", gain, ws, wp, taps)
    g.name = name
    return g


def band_stop_filter(gain: float, wp: float, ws: float,
                     taps: int, name: str = "BandStopFilter") -> Pipeline:
    """Parallel low-pass + high-pass, summed (thesis Figure A-12)."""
    g = load_unit("common", "BandStopFilter", gain, wp, ws, taps)
    g.name = name
    g.children[0].name = f"{name}.split"
    g.children[1].name = "Adder(2)"
    return g


def compressor(m: int, name: str | None = None) -> Filter:
    """Pass 1 of every M items (thesis Figure A-4)."""
    f = load_unit("common", "Compressor", m)
    f.name = name or f"Compressor({m})"
    return f


def expander(l: int, name: str | None = None) -> Filter:
    """Push the input followed by L-1 zeros (thesis Figure A-5)."""
    f = load_unit("common", "Expander", l)
    f.name = name or f"Expander({l})"
    return f


def adder(n: int, name: str | None = None) -> Filter:
    """Sum N consecutive items into one (linear)."""
    f = load_unit("common", "Adder", n)
    f.name = name or f"Adder({n})"
    return f


def float_diff(name: str = "FloatDiff") -> Filter:
    """peek(0) - peek(1), pop 2 (FMRadio's equalizer building block)."""
    f = load_unit("common", "FloatDiff")
    f.name = name
    return f


def float_dup(name: str = "FloatDup") -> Filter:
    """Duplicate each item (pop 1, push 2)."""
    f = load_unit("common", "FloatDup")
    f.name = name
    return f


def delay(name: str = "Delay") -> Filter:
    """One-item unit delay implemented with prework (initial zero)."""
    f = load_unit("common", "Delay")
    f.name = name
    return f


def ramp_source(period: int = 16, name: str = "FloatSource") -> Filter:
    """The FIR benchmark's source: a repeating 0..period-1 ramp."""
    f = load_unit("common", "FloatSource", period)
    f.name = name
    return f


def cosine_source(w: float, name: str = "SampledSource") -> Filter:
    """push(cos(w*n)) — RateConvert's source (Figure A-6)."""
    f = load_unit("common", "SampledSource", w)
    f.name = name
    return f


def multi_sine_source(name: str = "DataSource", size: int = 100) -> Filter:
    """Sum of three incommensurate sinusoids (Oversampler/DToA source)."""
    f = load_unit(("common", "oversampler"), "DataSource", size)
    f.name = name
    return f


def printer(name: str = "FloatPrinter") -> Collector:
    """The benchmark sink; collects outputs for measurement."""
    return Collector(name)
