"""Shared DSP components used across the benchmark suite.

These are the standard StreamIt library filters the benchmarks are built
from: windowed-sinc low/high-pass FIR filters, band-pass/band-stop
compositions, rate changers (compressor/expander), adders, and sources/
sinks.  Coefficient computation happens at elaboration time in Python
(the moral equivalent of StreamIt's ``init`` functions); the work
functions are IR so the linear extraction analysis sees exactly what the
paper's compiler saw.
"""

from __future__ import annotations

import math

from ..graph.streams import Filter, Pipeline, RoundRobin, SplitJoin
from ..graph.streams import Duplicate
from ..ir import FilterBuilder
from ..runtime.builtins import Collector


def lowpass_coeffs(gain: float, cutoff: float, taps: int) -> list[float]:
    """Windowed-sinc low-pass coefficients (rectangular window).

    ``h[i] = g * sin(wc * (i - N/2)) / (pi * (i - N/2))`` with the
    singularity at the center resolved to ``g * wc / pi``.
    """
    offset = taps // 2
    coeffs = []
    for i in range(taps):
        idx = i + 1
        if idx == offset:
            coeffs.append(gain * cutoff / math.pi)
        else:
            coeffs.append(gain * math.sin(cutoff * (idx - offset))
                          / (math.pi * (idx - offset)))
    return coeffs


def highpass_coeffs(gain: float, ws: float, taps: int) -> list[float]:
    """High-pass via spectral inversion of the low-pass prototype."""
    low = lowpass_coeffs(1.0, ws, taps)
    coeffs = [-gain * c for c in low]
    center = taps // 2 - 1
    coeffs[center] += gain
    return coeffs


def fir_filter(name: str, coeffs, decimation: int = 0) -> Filter:
    """An FIR convolution filter: peek N, pop 1+decimation, push 1."""
    n = len(coeffs)
    pop = 1 + decimation
    f = FilterBuilder(name, peek=max(n, pop), pop=pop, push=1)
    h = f.const_array("h", coeffs)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        with f.loop("i", 0, pop):
            f.pop()
    return f.build()


def low_pass_filter(gain: float, cutoff: float, taps: int,
                    decimation: int = 0,
                    name: str = "LowPassFilter") -> Filter:
    return fir_filter(name, lowpass_coeffs(gain, cutoff, taps), decimation)


def high_pass_filter(gain: float, ws: float, taps: int,
                     name: str = "HighPassFilter") -> Filter:
    return fir_filter(name, highpass_coeffs(gain, ws, taps))


def band_pass_filter(gain: float, ws: float, wp: float,
                     taps: int, name: str = "BandPassFilter") -> Pipeline:
    """Low-pass cascaded with high-pass (thesis Figure A-11)."""
    return Pipeline([
        low_pass_filter(1.0, wp, taps),
        high_pass_filter(gain, ws, taps),
    ], name=name)


def band_stop_filter(gain: float, wp: float, ws: float,
                     taps: int, name: str = "BandStopFilter") -> Pipeline:
    """Parallel low-pass + high-pass, summed (thesis Figure A-12)."""
    return Pipeline([
        SplitJoin(Duplicate(),
                  [low_pass_filter(gain, wp, taps),
                   high_pass_filter(gain, ws, taps)],
                  RoundRobin((1, 1)), name=f"{name}.split"),
        adder(2),
    ], name=name)


def compressor(m: int, name: str | None = None) -> Filter:
    """Pass 1 of every M items (thesis Figure A-4)."""
    f = FilterBuilder(name or f"Compressor({m})", peek=m, pop=m, push=1)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, m - 1):
            f.pop()
    return f.build()


def expander(l: int, name: str | None = None) -> Filter:
    """Push the input followed by L-1 zeros (thesis Figure A-5)."""
    f = FilterBuilder(name or f"Expander({l})", peek=1, pop=1, push=l)
    with f.work():
        f.push(f.pop_expr())
        with f.loop("i", 0, l - 1):
            f.push(0.0)
    return f.build()


def adder(n: int, name: str | None = None) -> Filter:
    """Sum N consecutive items into one (linear)."""
    f = FilterBuilder(name or f"Adder({n})", peek=n, pop=n, push=1)
    with f.work():
        s = f.local("sum", 0.0)
        with f.loop("i", 0, n) as i:
            f.assign(s, s + f.peek(i))
        f.push(s)
        with f.loop("i", 0, n):
            f.pop()
    return f.build()


def float_diff(name: str = "FloatDiff") -> Filter:
    """peek(0) - peek(1), pop 2 (FMRadio's equalizer building block)."""
    f = FilterBuilder(name, peek=2, pop=2, push=1)
    with f.work():
        f.push(f.peek(0) - f.peek(1))
        f.pop()
        f.pop()
    return f.build()


def float_dup(name: str = "FloatDup") -> Filter:
    """Duplicate each item (pop 1, push 2)."""
    f = FilterBuilder(name, peek=1, pop=1, push=2)
    with f.work():
        v = f.local("val", f.pop_expr())
        f.push(v)
        f.push(v)
    return f.build()


def delay(name: str = "Delay") -> Filter:
    """One-item unit delay implemented with prework (initial zero)."""
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    with f.prework(peek=0, pop=0, push=1):
        f.push(0.0)
    with f.work():
        f.push(f.pop_expr())
    return f.build()


def ramp_source(period: int = 16, name: str = "FloatSource") -> Filter:
    """The FIR benchmark's source: a repeating 0..period-1 ramp."""
    f = FilterBuilder(name, peek=0, pop=0, push=1)
    idx = f.state("idx", 0)
    data = f.const_array("inputs", [float(i) for i in range(period)])
    with f.work():
        f.push(data[idx])
        f.assign(idx, (idx + 1) % period)
    return f.build()


def cosine_source(w: float, name: str = "SampledSource") -> Filter:
    """push(cos(w*n)) — RateConvert's source (Figure A-6)."""
    from ..ir import call

    f = FilterBuilder(name, peek=0, pop=0, push=1)
    n = f.state("n", 0)
    wc = f.const("w", w)
    with f.work():
        f.push(call("cos", wc * n))
        f.assign(n, n + 1)
    return f.build()


def multi_sine_source(name: str = "DataSource", size: int = 100) -> Filter:
    """Sum of three incommensurate sinusoids (Oversampler/DToA source)."""
    values = []
    for i in range(size):
        t = float(i)
        values.append(math.sin(2 * math.pi * t / size)
                      + math.sin(2 * math.pi * 1.7 * t / size + math.pi / 3)
                      + math.sin(2 * math.pi * 2.1 * t / size + math.pi / 5))
    f = FilterBuilder(name, peek=0, pop=0, push=1)
    data = f.const_array("data", values)
    idx = f.state("index", 0)
    with f.work():
        f.push(data[idx])
        f.assign(idx, (idx + 1) % size)
    return f.build()


def printer(name: str = "FloatPrinter") -> Collector:
    """The benchmark sink; collects outputs for measurement."""
    return Collector(name)
