"""FMRadio benchmark: software FM demodulation with a multi-band equalizer
(thesis Figures A-9/A-10, Figure B-3).

Structure: decimating front-end low-pass -> nonlinear FM demodulator ->
10-band equalizer.  The equalizer is a duplicate splitjoin of band-edge
low-pass filters whose outputs are differenced pairwise and summed — all
linear, and the showcase for splitjoin combination (§3.3.4).
"""

from __future__ import annotations

import math

from ..graph.streams import Duplicate, Filter, Pipeline, RoundRobin, SplitJoin
from ..ir import FilterBuilder, call
from .common import adder, fir_filter, float_diff, float_dup, printer

NAME = "FMRadio"

SAMPLING_RATE = 200_000.0
CUTOFF_FREQUENCY = 108_000_000.0
MAX_AMPLITUDE = 27_000.0
BANDWIDTH = 10_000.0


def _fm_lowpass_coeffs(rate: float, cutoff: float, taps: int) -> list[float]:
    """Hamming-windowed sinc (the benchmark's own LowPassFilter)."""
    pi = math.pi
    m = taps - 1
    if cutoff == 0.0:
        raw = [0.54 - 0.46 * math.cos(2 * pi * i / m) for i in range(taps)]
        total = sum(raw)
        return [c / total for c in raw]
    w = 2 * pi * cutoff / rate
    coeffs = []
    for i in range(taps):
        if i - m / 2 == 0:
            coeffs.append(w / pi)
        else:
            coeffs.append(
                math.sin(w * (i - m / 2)) / pi / (i - m / 2)
                * (0.54 - 0.46 * math.cos(2 * pi * i / m)))
    return coeffs


def fm_lowpass(rate: float, cutoff: float, taps: int, decimation: int,
               name: str) -> Filter:
    return fir_filter(name, _fm_lowpass_coeffs(rate, cutoff, taps),
                      decimation=decimation)


def fm_demodulator(rate: float, max_amp: float, bandwidth: float) -> Filter:
    """push(gain * atan(peek(0) * peek(1))) — inherently nonlinear."""
    gain = max_amp * rate / (bandwidth * math.pi)
    f = FilterBuilder("FMDemodulator", peek=2, pop=1, push=1)
    g = f.const("mGain", gain)
    with f.work():
        f.push(g * call("atan", f.peek(0) * f.peek(1)))
        f.pop()
    return f.build()


def counter_source() -> Filter:
    f = FilterBuilder("FloatOneSource", peek=0, pop=0, push=1)
    x = f.state("x", 0.0)
    with f.work():
        f.push(x)
        f.assign(x, x + 1.0)
    return f.build()


def equalizer(rate: float, bands: int = 10, low: float = 55.0,
              high: float = 1760.0, taps: int = 64) -> Pipeline:
    """The 10-band equalizer: band-edge filters, differences, and a sum."""
    cutoffs = [
        math.exp(i * (math.log(high) - math.log(low)) / bands
                 + math.log(low))
        for i in range(1, bands)
    ]
    inner = SplitJoin(
        Duplicate(),
        [Pipeline([
            fm_lowpass(rate, c, taps, 0, f"LowPass@{c:.0f}Hz"),
            float_dup(),
         ], name=f"EqualizerInnerPipeline{i}")
         for i, c in enumerate(cutoffs)],
        RoundRobin(tuple([2] * len(cutoffs))),
        name="EqualizerInnerSplitJoin")
    outer = SplitJoin(
        Duplicate(),
        [fm_lowpass(rate, high, taps, 0, "LowPassHigh"),
         inner,
         fm_lowpass(rate, low, taps, 0, "LowPassLow")],
        RoundRobin((1, (bands - 1) * 2, 1)),
        name="EqualizerSplitJoin")
    return Pipeline([
        outer,
        float_diff(),
        adder(bands, name=f"FloatNAdder({bands})"),
    ], name="Equalizer")


def build(bands: int = 10, taps: int = 64) -> Pipeline:
    return Pipeline([
        counter_source(),
        Pipeline([
            fm_lowpass(SAMPLING_RATE, CUTOFF_FREQUENCY, taps, 4,
                       "FrontLowPass"),
            fm_demodulator(SAMPLING_RATE, MAX_AMPLITUDE, BANDWIDTH),
            equalizer(SAMPLING_RATE, bands=bands, taps=taps),
        ], name="FMRadio"),
        printer(),
    ], name="LinkedFMTest")
