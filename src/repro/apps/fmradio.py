"""FMRadio benchmark: software FM demodulation with a multi-band equalizer
(thesis Figures A-9/A-10, Figure B-3).

Structure: decimating front-end low-pass -> nonlinear FM demodulator ->
10-band equalizer.  The equalizer is a duplicate splitjoin of band-edge
low-pass filters whose outputs are differenced pairwise and summed — all
linear, and the showcase for splitjoin combination (§3.3.4).
Elaborated from ``apps/dsl/fmradio.str``.
"""

from __future__ import annotations

import math

from ..graph.streams import Filter, Pipeline
from ._loader import load_app, load_unit

NAME = "FMRadio"

SAMPLING_RATE = 200_000.0
CUTOFF_FREQUENCY = 108_000_000.0
MAX_AMPLITUDE = 27_000.0
BANDWIDTH = 10_000.0

_FILES = ("common", "fmradio")


def fm_lowpass(rate: float, cutoff: float, taps: int, decimation: int,
               name: str) -> Filter:
    """Hamming-windowed sinc (the benchmark's own LowPassFilter)."""
    f = load_unit(_FILES, "FMLowPass", rate, cutoff, taps, decimation)
    f.name = name
    return f


def fm_demodulator(rate: float, max_amp: float, bandwidth: float) -> Filter:
    """push(gain * atan(peek(0) * peek(1))) — inherently nonlinear."""
    return load_unit(_FILES, "FMDemodulator", rate, max_amp, bandwidth)


def counter_source() -> Filter:
    return load_unit(_FILES, "FloatOneSource")


def _rename_equalizer(eq: Pipeline, rate: float, bands: int, low: float,
                      high: float) -> Pipeline:
    """Apply the suite's historical instance names to an Equalizer."""
    cutoffs = [
        math.exp(i * (math.log(high) - math.log(low)) / bands
                 + math.log(low))
        for i in range(1, bands)
    ]
    outer = eq.children[0]
    outer.children[0].name = "LowPassHigh"
    outer.children[2].name = "LowPassLow"
    for i, pipe in enumerate(outer.children[1].children):
        pipe.name = f"EqualizerInnerPipeline{i}"
        pipe.children[0].name = f"LowPass@{cutoffs[i]:.0f}Hz"
    eq.children[2].name = f"FloatNAdder({bands})"
    return eq


def equalizer(rate: float, bands: int = 10, low: float = 55.0,
              high: float = 1760.0, taps: int = 64) -> Pipeline:
    """The 10-band equalizer: band-edge filters, differences, and a sum."""
    eq = load_unit(_FILES, "Equalizer", rate, bands, low, high, taps)
    return _rename_equalizer(eq, rate, bands, low, high)


def build(bands: int = 10, taps: int = 64) -> Pipeline:
    g = load_app(_FILES, "LinkedFMTest", bands, taps)
    fm = g.children[1]
    fm.children[0].name = "FrontLowPass"
    _rename_equalizer(fm.children[2], SAMPLING_RATE, bands, 55.0, 1760.0)
    return g
