"""DToA benchmark: one-bit D/A front-end (thesis Figure A-16).

A 16x oversampler feeds a first-order noise shaper — a feedbackloop of an
adder and a quantize-and-error filter with a unit delay on the feedback
path — followed by a 256-tap reconstruction low-pass.  The feedbackloop
is the one construct linear analysis does not collapse (it needs linear
state, §7.1), so this benchmark exercises optimization around a
nonlinear/feedback core.
"""

from __future__ import annotations

import math

from ..graph.streams import FeedbackLoop, Filter, Pipeline, RoundRobin
from ..ir import FilterBuilder
from .common import delay, low_pass_filter, multi_sine_source, printer
from .oversampler import oversampler

NAME = "DToA"


def adder_filter() -> Filter:
    f = FilterBuilder("AdderFilter", peek=2, pop=2, push=1)
    with f.work():
        f.push(f.pop_expr() + f.pop_expr())
    return f.build()


def quantizer_and_error() -> Filter:
    """Quantize to ±1; also emit the quantization error (nonlinear)."""
    f = FilterBuilder("QuantizerAndError", peek=1, pop=1, push=2)
    with f.work():
        v = f.local("inputValue", f.pop_expr())
        out = f.local("outputValue", 0.0)
        neg = f.if_(v < 0.0)
        with neg:
            f.assign(out, -1.0)
        with neg.otherwise():
            f.assign(out, 1.0)
        f.push(out)
        f.push(out - v)
    return f.build()


def noise_shaper() -> FeedbackLoop:
    body = Pipeline([adder_filter(), quantizer_and_error()],
                    name="shaper_body")
    return FeedbackLoop(
        body=body,
        loop=delay(),
        joiner=RoundRobin((1, 1)),
        splitter=RoundRobin((1, 1)),
        enqueued=[0.0],
        name="NoiseShaper")


def build(stages: int = 4, taps: int = 64, out_taps: int = 256) -> Pipeline:
    return Pipeline([
        multi_sine_source(),
        oversampler(stages, taps),
        noise_shaper(),
        low_pass_filter(1.0, math.pi / 100, out_taps),
        printer(name="DataSink"),
    ], name="OneBitDToA")
