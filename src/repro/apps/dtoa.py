"""DToA benchmark: one-bit D/A front-end (thesis Figure A-16).

A 16x oversampler feeds a first-order noise shaper — a feedbackloop of an
adder and a quantize-and-error filter with a unit delay on the feedback
path — followed by a 256-tap reconstruction low-pass.  The feedbackloop
is the one construct linear analysis does not collapse (it needs linear
state, §7.1), so this benchmark exercises optimization around a
nonlinear/feedback core.  Elaborated from ``apps/dsl/dtoa.str``.
"""

from __future__ import annotations

from ..graph.streams import FeedbackLoop, Filter, Pipeline
from ._loader import load_app, load_unit
from .oversampler import _rename_stages

NAME = "DToA"

_FILES = ("common", "oversampler", "dtoa")


def adder_filter() -> Filter:
    return load_unit(_FILES, "AdderFilter")


def quantizer_and_error() -> Filter:
    """Quantize to ±1; also emit the quantization error (nonlinear)."""
    return load_unit(_FILES, "QuantizerAndError")


def noise_shaper() -> FeedbackLoop:
    ns = load_unit(_FILES, "NoiseShaper")
    ns.body.name = "shaper_body"
    return ns


def build(stages: int = 4, taps: int = 64, out_taps: int = 256) -> Pipeline:
    g = load_app(_FILES, "OneBitDToA", stages, taps, out_taps,
                 printer_name="DataSink")
    _rename_stages(g.children[1])
    g.children[2].body.name = "shaper_body"
    return g
