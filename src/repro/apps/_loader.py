"""Elaborate benchmark graphs from the canonical ``.str`` sources.

The DSL files under ``apps/dsl/`` are the single source of truth for
the benchmark suite; every ``repro.apps.<app>.build()`` is a thin
loader that concatenates the app's source files, elaborates its top
stream through the cached :func:`repro.dsl.loader.load_source` path,
and appends the measurement Collector.  The loaders deliberately do
*not* stamp source fingerprints: app graphs are handed to callers that
may mutate coefficients, which must change the plan-cache key
(``repro.compile(dsl_source)`` is the fingerprint-stamping path).

Elaborated streams carry their declaration names (``Compressor``); the
loaders rename clones to the suite's historical instance names
(``Compressor(3)``, ``branch2``, ``FrontLowPass``) so reports, dot
exports, and plan listings are unchanged.  Renaming a clone is safe —
every load returns a fresh ``clone_stream`` copy.
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..graph.streams import Filter, Pipeline, SplitJoin, Stream, walk
from ..runtime.builtins import Collector

#: Directory holding the canonical DSL sources.
DSL_DIR = os.path.join(os.path.dirname(__file__), "dsl")


@lru_cache(maxsize=None)
def dsl_source(*names: str) -> str:
    """The concatenated text of ``apps/dsl/<name>.str`` files."""
    parts = []
    for name in names:
        with open(os.path.join(DSL_DIR, name + ".str"),
                  encoding="utf-8") as fh:
            parts.append(fh.read())
    return "\n".join(parts)


def canonicalize_names(stream: Stream) -> Stream:
    """Rename library instances to their historical builder names.

    DSL instances carry their declaration name; the Python builders
    parameterized some of them (``Compressor(3)``, ``Expander(2)``,
    ``Adder(4)``, ``BandStopFilter.split``).  The parameter is always
    recoverable from the instance's rates.
    """
    for s in walk(stream):
        if isinstance(s, Filter):
            if s.name == "Compressor":
                s.name = f"Compressor({s.pop})"
            elif s.name == "Expander":
                s.name = f"Expander({s.push})"
            elif s.name == "Adder":
                s.name = f"Adder({s.peek})"
        elif isinstance(s, SplitJoin) and s.name == "BandStopSplit":
            s.name = "BandStopFilter.split"
    return stream


def load_unit(files, top: str, *args) -> Stream:
    """Elaborate one stream declaration (no measurement harness)."""
    from ..dsl.loader import load_source

    if isinstance(files, str):
        files = (files,)
    return canonicalize_names(load_source(dsl_source(*files), top, *args))


def load_app(files, top: str, *args,
             printer_name: str = "FloatPrinter") -> Pipeline:
    """Elaborate a benchmark top and append its Collector sink."""
    g = load_unit(files, top, *args)
    return Pipeline(list(g.children) + [Collector(printer_name)],
                    name=g.name)
