"""The nine benchmark applications of the thesis' evaluation (§5.1)."""

from . import (dtoa, filterbank, fir, fmradio, oversampler, radar, ratec,
               targetdetect, vocoder)

#: Registry used by the benchmark harness: name -> build() function.
BENCHMARKS = {
    fir.NAME: fir.build,
    ratec.NAME: ratec.build,
    targetdetect.NAME: targetdetect.build,
    fmradio.NAME: fmradio.build,
    radar.NAME: radar.build,
    filterbank.NAME: filterbank.build,
    vocoder.NAME: vocoder.build,
    oversampler.NAME: oversampler.build,
    dtoa.NAME: dtoa.build,
}

#: Paper ordering for tables/figures.
BENCHMARK_ORDER = ["FIR", "RateConvert", "TargetDetect", "FMRadio", "Radar",
                   "FilterBank", "Vocoder", "Oversampler", "DToA"]

__all__ = ["BENCHMARKS", "BENCHMARK_ORDER", "fir", "ratec", "targetdetect",
           "fmradio", "radar", "filterbank", "vocoder", "oversampler",
           "dtoa"]
