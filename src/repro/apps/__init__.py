"""The nine benchmark applications of the thesis' evaluation (§5.1),
plus two feedback-bearing apps (Echo, VocoderEcho) exercising the plan
backend's feedback islands and a stateful-linear app (IIR) exercising
the §7.1 state-space extension."""

from . import (dtoa, echo, filterbank, fir, fmradio, iir, oversampler,
               radar, ratec, targetdetect, vocoder)

#: Registry used by the benchmark harness: name -> build() function.
BENCHMARKS = {
    fir.NAME: fir.build,
    ratec.NAME: ratec.build,
    targetdetect.NAME: targetdetect.build,
    fmradio.NAME: fmradio.build,
    radar.NAME: radar.build,
    filterbank.NAME: filterbank.build,
    vocoder.NAME: vocoder.build,
    oversampler.NAME: oversampler.build,
    dtoa.NAME: dtoa.build,
    echo.NAME: echo.build,
    vocoder.NAME_FEEDBACK: vocoder.build_feedback,
    iir.NAME: iir.build,
}

#: Paper ordering for tables/figures (the feedback apps are additions
#: of this reproduction, so they stay out of the thesis figures).
BENCHMARK_ORDER = ["FIR", "RateConvert", "TargetDetect", "FMRadio", "Radar",
                   "FilterBank", "Vocoder", "Oversampler", "DToA"]

#: Apps whose graphs contain a FeedbackLoop: the plan backend runs them
#: through feedback islands, which preserve output values exactly but
#: not tail-of-run firing counts (FLOP profiles may differ slightly
#: from the scalar backends on the final partial iteration).
FEEDBACK_APPS = frozenset({echo.NAME, vocoder.NAME_FEEDBACK})


def split_app(program):
    """Split a benchmark program into ``(source, body)``.

    Every benchmark is a top-level Pipeline ``[source, ...body...,
    Collector]``; the *body* is the float->float part a
    :class:`~repro.session.StreamSession` push harness drives directly
    (for Radar the "source" is its whole zero-weight splitjoin source
    bank, whose interleaved output feeds the body).  Raises
    ``ValueError`` for programs without that shape.
    """
    from ..graph.streams import Pipeline
    from ..runtime.builtins import Collector

    children = getattr(program, "children", None)
    if not children or len(children) < 3 or \
            not isinstance(children[-1], Collector):
        raise ValueError(
            f"{getattr(program, 'name', program)!r} is not a "
            "source/body/Collector pipeline")
    name = getattr(program, "name", "app")
    body = Pipeline(list(children[1:-1]), name=f"{name}.body")
    return children[0], body


def source_values(source, n: int) -> list[float]:
    """The first ``n`` values a benchmark source produces (harness input
    for push-session tests and ``bench --chunked``)."""
    from ..graph.streams import Pipeline
    from ..runtime.builtins import Collector
    from ..runtime.executor import run_graph

    probe = Pipeline([source, Collector()], name="source-probe")
    return run_graph(probe, n, backend="compiled")


def resolve_app(name: str) -> str:
    """Canonical registry key for a (case-insensitive) app name."""
    by_lower = {k.lower(): k for k in BENCHMARKS}
    key = by_lower.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown app {name!r}; choose from {sorted(BENCHMARKS)}")
    return key


def build_app(name: str, **params):
    """Build a benchmark by (case-insensitive) name, e.g. ``"fir"``.

    Used by the ``python -m repro.bench`` CLI; ``params`` are forwarded to
    the app's ``build()``.
    """
    key = resolve_app(name)
    return BENCHMARKS[key](**params), key


__all__ = ["BENCHMARKS", "BENCHMARK_ORDER", "FEEDBACK_APPS", "build_app",
           "resolve_app", "split_app", "source_values", "fir", "ratec",
           "targetdetect", "fmradio", "radar", "filterbank", "vocoder",
           "oversampler", "dtoa", "echo", "iir"]
