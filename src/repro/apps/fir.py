"""FIR benchmark: a single 256-tap low-pass filter (thesis Figure A-3)."""

from __future__ import annotations

from ..graph.streams import Pipeline
from .common import low_pass_filter, printer, ramp_source

NAME = "FIR"
DEFAULT_TAPS = 256


def build(taps: int = DEFAULT_TAPS) -> Pipeline:
    """FloatSource -> LowPassFilter(1, pi/3, taps) -> FloatPrinter."""
    import math

    return Pipeline([
        ramp_source(),
        low_pass_filter(1.0, math.pi / 3, taps),
        printer(),
    ], name="FIRProgram")
