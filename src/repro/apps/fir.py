"""FIR benchmark: a single 256-tap low-pass filter (thesis Figure A-3),
elaborated from ``apps/dsl/fir.str``."""

from __future__ import annotations

from ..graph.streams import Pipeline
from ._loader import load_app

NAME = "FIR"
DEFAULT_TAPS = 256


def build(taps: int = DEFAULT_TAPS) -> Pipeline:
    """FloatSource -> LowPassFilter(1, pi/3, taps) -> FloatPrinter."""
    return load_app(("common", "fir"), "FIRProgram", taps)
