"""TargetDetect benchmark: four parallel matched filters with threshold
detection (thesis Figures A-7, A-8), elaborated from
``apps/dsl/targetdetect.str``."""

from __future__ import annotations

from ..graph.streams import Filter, Pipeline
from ._loader import load_app, load_unit

NAME = "TargetDetect"

_FILES = ("common", "targetdetect")


def target_source(n: int) -> Filter:
    """Quiet / triangle-target / quiet cycle, period 4n."""
    return load_unit(_FILES, "TargetSource", n)


def threshold_detector(number: int, threshold: float) -> Filter:
    f = load_unit(_FILES, "ThresholdDetector", number, threshold)
    f.name = f"ThresholdDetector{number}"
    return f


def build(n: int = 300, threshold: float = 8.0) -> Pipeline:
    g = load_app(_FILES, "TargetDetect", n, threshold)
    for k, branch in enumerate(g.children[1].children, start=1):
        branch.name = f"branch{k}"
        branch.children[0].name = f"MatchedFilter{k}"
        branch.children[1].name = f"ThresholdDetector{k}"
    return g
