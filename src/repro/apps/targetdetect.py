"""TargetDetect benchmark: four parallel matched filters with threshold
detection (thesis Figures A-7, A-8)."""

from __future__ import annotations

import math

from ..graph.streams import Duplicate, Filter, Pipeline, RoundRobin, SplitJoin
from ..ir import FilterBuilder
from .common import fir_filter, printer

NAME = "TargetDetect"


def _matched_coeffs(kind: int, n: int) -> list[float]:
    coeffs = []
    for i in range(n):
        pos = float(i)
        if kind == 1:  # triangle minus mean
            v = (pos * 2 / n) if pos < n / 2 else (2 - pos * 2 / n)
            coeffs.append(v - 0.5)
        elif kind == 2:  # half sine, shifted
            coeffs.append(math.sin(math.pi * pos / n) / (2 * math.pi) - 1.0)
        elif kind == 3:  # full sine (zero mean)
            coeffs.append(math.sin(2 * math.pi * pos / n) / (2 * math.pi))
        else:  # time-reversed ramp
            coeffs.append(0.0)
    if kind == 4:
        for i in range(n):
            coeffs[n - 1 - i] = 0.5 * (float(i) / n - 0.5)
    return coeffs


def target_source(n: int) -> Filter:
    """Quiet / triangle-target / quiet cycle, period 4n."""
    f = FilterBuilder("TargetSource", peek=0, pop=0, push=1)
    pos = f.state("currentPosition", 0)
    nn = f.const("N", n)
    with f.work():
        v = f.local("v", 0.0)
        in_target = f.if_((pos >= nn).logical_and(pos < 2 * nn))
        with in_target:
            tri = f.local("tri", 0.0)
            f.assign(tri, pos - nn)
            first_half = f.if_(tri < nn / 2)
            with first_half:
                f.assign(v, tri * 2.0 / nn)
            with first_half.otherwise():
                f.assign(v, 2.0 - tri * 2.0 / nn)
        f.push(v)
        f.assign(pos, (pos + 1) % (4 * nn))
    return f.build()


def threshold_detector(number: int, threshold: float) -> Filter:
    f = FilterBuilder(f"ThresholdDetector{number}", peek=1, pop=1, push=1)
    with f.work():
        t = f.local("t", f.pop_expr())
        cond = f.if_(t > threshold)
        with cond:
            f.push(float(number))
        with cond.otherwise():
            f.push(0.0)
    return f.build()


def build(n: int = 300, threshold: float = 8.0) -> Pipeline:
    branches = [
        Pipeline([
            fir_filter(f"MatchedFilter{k}", _matched_coeffs(k, n)),
            threshold_detector(k, threshold),
        ], name=f"branch{k}")
        for k in (1, 2, 3, 4)
    ]
    return Pipeline([
        target_source(n),
        SplitJoin(Duplicate(), branches, RoundRobin((1, 1, 1, 1)),
                  name="TargetDetectSplitJoin"),
        printer(),
    ], name="TargetDetect")
