"""IIR benchmark: a biquad cascade with a DC blocker — stateful linear.

Every stage carries persistent state fields updated affinely each firing
(direct-form II transposed sections: ``y = b0*x + s1``, ``s1' = b1*x +
a1*y + s2``, ``s2' = b2*x + a2*y``), so the stateless framework of the
thesis cannot touch it — this is exactly the §7.1 future-work workload.
The state-space extractor lifts each stage to a
:class:`~repro.linear.state.StatefulLinearNode`; under the plan backend
every stage advances a whole block of iterations per lifted matmul
(:class:`~repro.exec.kernels.StatefulLinearStep`), and the optimize
rewrites can collapse the cascade into a single state-space leaf.

Coefficient sets are fixed stable resonators (poles well inside the unit
circle) so long runs stay bounded on the ramp source.  The stages are
elaborated from ``apps/dsl/iir.str``; the cascade is composed here so
arbitrary section lists keep working.
"""

from __future__ import annotations

from ..graph.streams import Filter, Pipeline
from ._loader import load_unit
from .common import printer, ramp_source

NAME = "IIR"

#: (b0, b1, b2, a1, a2) per section, paper-style positive feedback sum
#: ``y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] + a1 y[n-1] + a2 y[n-2]``.
DEFAULT_SECTIONS = (
    (0.2929, 0.5858, 0.2929, 0.0000, -0.1716),   # 2nd-order Butterworth LP
    (0.1867, 0.3734, 0.1867, 0.4629, -0.2097),   # resonator
    (0.3913, -0.7826, 0.3913, 0.3695, -0.1958),  # notch
)

DC_BLOCK_R = 0.995

_FILES = ("common", "iir")


def biquad(b0: float, b1: float, b2: float, a1: float, a2: float,
           name: str = "Biquad") -> Filter:
    """One direct-form II transposed second-order section."""
    f = load_unit(_FILES, "Biquad", b0, b1, b2, a1, a2)
    f.name = name
    return f


def dc_blocker(r: float = DC_BLOCK_R, name: str = "DCBlocker") -> Filter:
    """``y[n] = x[n] - x[n-1] + r*y[n-1]`` as one state field."""
    f = load_unit(_FILES, "DCBlocker", r)
    f.name = name
    return f


def cascade(sections=DEFAULT_SECTIONS, name: str = "BiquadCascade") \
        -> Pipeline:
    """DC blocker followed by the second-order sections (float->float)."""
    stages: list[Filter] = [dc_blocker()]
    stages += [biquad(*coeffs, name=f"Biquad{i}")
               for i, coeffs in enumerate(sections)]
    return Pipeline(stages, name=name)


def build(sections=DEFAULT_SECTIONS) -> Pipeline:
    """FloatSource -> DCBlocker -> Biquad0..N -> Printer."""
    return Pipeline([
        ramp_source(),
        cascade(sections),
        printer(),
    ], name="IIRProgram")
