"""Echo benchmark: an IIR comb filter realized as a FeedbackLoop.

``y[n] = x[n] + gain * y[n - delay]`` — the textbook feedback echo
(StreamIt's ``EchoEffect``): the loop joiner interleaves one input
sample with one fed-back sample, the body mixes them and duplicates the
result toward both the output and the feedback path, and the loop path
applies the damping gain.  ``delay`` zeros are enqueued on the back
edge, which is also the plan backend's lookahead budget: the feedback
island advances up to ``delay`` iterations per drain round, each as one
batched matrix product.

The front low-pass conditioner sits *outside* the loop on purpose — it
is the benchmark's witness that hybrid islanding keeps acyclic regions
fully batched while the cycle runs behind its island facade.
Elaborated from ``apps/dsl/echo.str``.
"""

from __future__ import annotations

from ..graph.streams import FeedbackLoop, Filter, Pipeline
from ._loader import load_app, load_unit

NAME = "Echo"

DEFAULT_DELAY = 1024
DEFAULT_GAIN = 0.6

_FILES = ("common", "echo")


def echo_add(name: str = "EchoAdd") -> Filter:
    """Mix one input with one feedback sample; duplicate the result
    (first copy to the output tape, second onto the feedback path)."""
    f = load_unit(_FILES, "EchoAdd")
    f.name = name
    return f


def echo_damp(gain: float, name: str = "EchoDamp") -> Filter:
    """The feedback path's attenuation: push(gain * pop)."""
    f = load_unit(_FILES, "EchoDamp", gain)
    f.name = name
    return f


def echo_loop(delay: int = DEFAULT_DELAY, gain: float = DEFAULT_GAIN,
              name: str = "EchoLoop") -> FeedbackLoop:
    """The feedback construct itself (float -> float)."""
    loop = load_unit(_FILES, "EchoLoop", delay, gain)
    loop.name = name
    return loop


def build(delay: int = DEFAULT_DELAY, gain: float = DEFAULT_GAIN,
          taps: int = 64) -> Pipeline:
    """FloatSource -> LowPassFilter(taps) -> EchoLoop(delay) -> Printer."""
    return load_app(_FILES, "EchoProgram", delay, gain, taps)
