"""Echo benchmark: an IIR comb filter realized as a FeedbackLoop.

``y[n] = x[n] + gain * y[n - delay]`` — the textbook feedback echo
(StreamIt's ``EchoEffect``): the loop joiner interleaves one input
sample with one fed-back sample, the body mixes them and duplicates the
result toward both the output and the feedback path, and the loop path
applies the damping gain.  ``delay`` zeros are enqueued on the back
edge, which is also the plan backend's lookahead budget: the feedback
island advances up to ``delay`` iterations per drain round, each as one
batched matrix product.

The front low-pass conditioner sits *outside* the loop on purpose — it
is the benchmark's witness that hybrid islanding keeps acyclic regions
fully batched while the cycle runs behind its island facade.
"""

from __future__ import annotations

import math

from ..graph.streams import FeedbackLoop, Filter, Pipeline, RoundRobin
from ..ir import FilterBuilder
from .common import low_pass_filter, printer, ramp_source

NAME = "Echo"

DEFAULT_DELAY = 1024
DEFAULT_GAIN = 0.6


def echo_add(name: str = "EchoAdd") -> Filter:
    """Mix one input with one feedback sample; duplicate the result
    (first copy to the output tape, second onto the feedback path)."""
    f = FilterBuilder(name, peek=2, pop=2, push=2)
    with f.work():
        x = f.local("x", f.pop_expr())
        fb = f.local("fb", f.pop_expr())
        y = f.local("y", x + fb)
        f.push(y)
        f.push(y)
    return f.build()


def echo_damp(gain: float, name: str = "EchoDamp") -> Filter:
    """The feedback path's attenuation: push(gain * pop)."""
    f = FilterBuilder(name, peek=1, pop=1, push=1)
    g = f.const("g", gain)
    with f.work():
        f.push(g * f.pop_expr())
    return f.build()


def echo_loop(delay: int = DEFAULT_DELAY, gain: float = DEFAULT_GAIN,
              name: str = "EchoLoop") -> FeedbackLoop:
    """The feedback construct itself (float -> float)."""
    return FeedbackLoop(
        body=echo_add(),
        loop=echo_damp(gain),
        joiner=RoundRobin((1, 1)),
        splitter=RoundRobin((1, 1)),
        enqueued=[0.0] * delay,
        name=name)


def build(delay: int = DEFAULT_DELAY, gain: float = DEFAULT_GAIN,
          taps: int = 64) -> Pipeline:
    """FloatSource -> LowPassFilter(taps) -> EchoLoop(delay) -> Printer."""
    return Pipeline([
        ramp_source(),
        low_pass_filter(1.0, math.pi / 3, taps),
        echo_loop(delay, gain),
        printer(),
    ], name="EchoProgram")
