"""Oversampler benchmark: 16x oversampling in four 2x stages
(thesis Figure A-15) — each stage an expander plus interpolating
low-pass, all linear.  Elaborated from ``apps/dsl/oversampler.str``."""

from __future__ import annotations

from ..graph.streams import Pipeline
from ._loader import load_app, load_unit

NAME = "Oversampler"

_FILES = ("common", "oversampler")


def _rename_stages(over: Pipeline) -> Pipeline:
    for i in range(len(over.children) // 2):
        over.children[2 * i].name = f"Expander2_{i}"
        over.children[2 * i + 1].name = f"LowPass_{i}"
    return over


def oversampler(stages: int = 4, taps: int = 64) -> Pipeline:
    return _rename_stages(load_unit(_FILES, "OverSampler", stages, taps))


def build(stages: int = 4, taps: int = 64) -> Pipeline:
    g = load_app(_FILES, "Oversampler", stages, taps,
                 printer_name="DataSink")
    _rename_stages(g.children[1])
    return g
