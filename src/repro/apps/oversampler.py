"""Oversampler benchmark: 16x oversampling in four 2x stages
(thesis Figure A-15) — each stage an expander plus interpolating
low-pass, all linear."""

from __future__ import annotations

import math

from ..graph.streams import Pipeline
from .common import expander, low_pass_filter, multi_sine_source, printer

NAME = "Oversampler"


def oversampler(stages: int = 4, taps: int = 64) -> Pipeline:
    parts = []
    for i in range(stages):
        parts.append(expander(2, name=f"Expander2_{i}"))
        parts.append(low_pass_filter(2.0, math.pi / 2, taps,
                                     name=f"LowPass_{i}"))
    return Pipeline(parts, name="OverSampler")


def build(stages: int = 4, taps: int = 64) -> Pipeline:
    return Pipeline([
        multi_sine_source(),
        oversampler(stages, taps),
        printer(name="DataSink"),
    ], name="Oversampler")
