"""RateConvert benchmark: non-integral sampling-rate conversion.

Upsample by 2, low-pass interpolate, downsample by 3 (thesis Figure A-6).
"""

from __future__ import annotations

import math

from ..graph.streams import Pipeline
from .common import (compressor, cosine_source, expander, low_pass_filter,
                     printer)

NAME = "RateConvert"


def build(taps: int = 300) -> Pipeline:
    return Pipeline([
        cosine_source(math.pi / 10),
        Pipeline([
            expander(2),
            low_pass_filter(3.0, math.pi / 3, taps),
            compressor(3),
        ], name="converter"),
        printer(),
    ], name="SamplingRateConverter")
