"""RateConvert benchmark: non-integral sampling-rate conversion.

Upsample by 2, low-pass interpolate, downsample by 3 (thesis Figure
A-6), elaborated from ``apps/dsl/ratec.str``.
"""

from __future__ import annotations

from ..graph.streams import Pipeline
from ._loader import load_app

NAME = "RateConvert"


def build(taps: int = 300) -> Pipeline:
    g = load_app(("common", "ratec"), "SamplingRateConverter", taps)
    g.children[1].name = "converter"
    return g
