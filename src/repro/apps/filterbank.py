"""FilterBank benchmark: M-band signal decomposition and reconstruction
(thesis Figure A-13).

Each branch band-passes its subband, decimates by M, applies a per-band
processing filter, upsamples by M, and band-stop interpolates; branches
are summed by an Adder.  Everything but the source is linear — the
benchmark where combination collapses the most structure.
"""

from __future__ import annotations

import math

from ..graph.streams import Duplicate, Filter, Pipeline, RoundRobin, SplitJoin
from ..ir import FilterBuilder, call
from .common import (adder, band_pass_filter, band_stop_filter, compressor,
                     expander, printer)

NAME = "FilterBank"


def data_source() -> Filter:
    """Sum of three cosines at pi/10, pi/20, pi/30 (stateful counter)."""
    f = FilterBuilder("DataSource", peek=0, pop=0, push=1)
    n = f.state("n", 0)
    with f.work():
        f.push(call("cos", (math.pi / 10) * n)
               + call("cos", (math.pi / 20) * n)
               + call("cos", (math.pi / 30) * n))
        f.assign(n, n + 1)
    return f.build()


def process_filter(order: int) -> Filter:
    """The per-subband processing hook — identity in the benchmark."""
    f = FilterBuilder(f"ProcessFilter{order}", peek=1, pop=1, push=1)
    with f.work():
        f.push(f.pop_expr())
    return f.build()


def processing_pipeline(m: int, i: int, taps: int) -> Pipeline:
    low = i * math.pi / m
    high = (i + 1) * math.pi / m
    return Pipeline([
        Pipeline([
            band_pass_filter(1.0, low, high, taps),
            compressor(m),
        ], name=f"analysis{i}"),
        process_filter(i),
        Pipeline([
            expander(m),
            band_stop_filter(float(m), low, high, taps),
        ], name=f"synthesis{i}"),
    ], name=f"ProcessingPipeline{i}")


def build(m: int = 3, taps: int = 100) -> Pipeline:
    bank = SplitJoin(
        Duplicate(),
        [processing_pipeline(m, i, taps) for i in range(m)],
        RoundRobin(tuple([1] * m)),
        name="FilterBankSplitJoin")
    return Pipeline([
        data_source(),
        Pipeline([bank, adder(m)], name="FilterBankPipeline"),
        printer(),
    ], name="FilterBank")
