"""FilterBank benchmark: M-band signal decomposition and reconstruction
(thesis Figure A-13).

Each branch band-passes its subband, decimates by M, applies a per-band
processing filter, upsamples by M, and band-stop interpolates; branches
are summed by an Adder.  Everything but the source is linear — the
benchmark where combination collapses the most structure.
Elaborated from ``apps/dsl/filterbank.str``.
"""

from __future__ import annotations

from ..graph.streams import Filter, Pipeline
from ._loader import load_app, load_unit

NAME = "FilterBank"

_FILES = ("common", "filterbank")


def data_source() -> Filter:
    """Sum of three cosines at pi/10, pi/20, pi/30 (stateful counter)."""
    return load_unit(_FILES, "DataSource")


def process_filter(order: int) -> Filter:
    """The per-subband processing hook — identity in the benchmark."""
    f = load_unit(_FILES, "ProcessFilter", order)
    f.name = f"ProcessFilter{order}"
    return f


def processing_pipeline(m: int, i: int, taps: int) -> Pipeline:
    return _rename_branch(
        load_unit(_FILES, "ProcessingPipeline", m, i, taps), i)


def _rename_branch(pipe: Pipeline, i: int) -> Pipeline:
    pipe.name = f"ProcessingPipeline{i}"
    pipe.children[0].name = f"analysis{i}"
    pipe.children[1].name = f"ProcessFilter{i}"
    pipe.children[2].name = f"synthesis{i}"
    return pipe


def build(m: int = 3, taps: int = 100) -> Pipeline:
    g = load_app(_FILES, "FilterBank", m, taps)
    bank = g.children[1]
    for i, branch in enumerate(bank.children[0].children):
        _rename_branch(branch, i)
    return g
