"""Compile-once streaming sessions: the :class:`StreamSession` API.

The paper's premise is that linear analysis pays off when a plan is
built once and amortized over many firings.  ``run_graph`` replans,
re-flattens, and re-fills sources on every call; a session compiles the
program once and then advances it incrementally — a stream program is a
state-carrying homomorphism, so the natural API is a persistent object
that consumes input chunks and advances carried state, not a batch
function.

Entry point::

    import repro

    session = repro.compile(program, backend="plan", optimize="auto")
    first = session.run(4096)      # np.ndarray — resumable
    more = session.run(4096)       # continues the stream
    print(session.profile.counts.flops)

Float->float graphs (no source of their own) compile into a *push*
session: an ndarray-native harness (:class:`~repro.runtime.builtins.
ChunkSource` feeding the graph, :class:`~repro.runtime.builtins.
ArrayCollector` at the sink) is injected internally, and input arrives
incrementally::

    fir = repro.compile(low_pass_filter(1.0, math.pi / 3, 256))
    for chunk in chunks:                # any chunk sizes
        out = fir.push(chunk)           # np.ndarray of completed outputs

**State-carry semantics.**  Consecutive ``run``/``push`` calls continue
the stream exactly where it stopped: channel occupancy (peek lookahead
windows), stateful filter fields, state-space carries ``s``, FFT partial
sums, and feedback-island delay rings all persist, and total firing
counts — therefore FLOP counts — after any sequence of advances equal a
single batch run of the same total.  ``reset()`` rewinds to the initial
state without recompiling; the compiled plan itself is immutable.

**Cache pinning.**  A plan-backend session holds its
:class:`~repro.exec.cache.PlanEntry` directly: repeated ``run``/``push``
calls never touch the plan cache (zero replanning, zero
re-fingerprinting), and mutating a filter's coefficient array in place
after ``compile`` does *not* invalidate the session — the plan is
pinned to the coefficients it was compiled with (kernels copied them at
compile time).  A fresh ``repro.compile`` of the mutated graph misses
the cache and recompiles, exactly like ``run_graph``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import (ChunkDtypeError, CompileOptionError, InterpError,
                     SessionClosedError, StreamGraphError)
from .graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                            PrimitiveFilter, SplitJoin, Stream)
from .numeric import NumericPolicy, resolve_policy
from .profiling import Profiler
from .runtime.builtins import ArrayCollector, ChunkSource
from .runtime.executor import FlatGraph

__all__ = ["StreamSession", "SessionSnapshot", "compile",
           "DEFAULT_JOURNAL_LIMIT"]

#: Default cap (in samples fed + outputs produced) on the replay
#: journal backing :meth:`StreamSession.snapshot`.  Past it, journaling
#: is abandoned and the session reports no checkpoint.
DEFAULT_JOURNAL_LIMIT = 1 << 20


@dataclass(frozen=True)
class SessionSnapshot:
    """An O(1) checkpoint of a :class:`StreamSession`.

    The session journals every successful mutating call (``feed`` /
    ``push``-drain / ``run``) in an append-only op list; a snapshot is
    just ``(ops ref, prefix length, produced count)``.  ``restore``
    replays the prefix against a freshly rebuilt executor — a stream
    program is a deterministic state-carrying homomorphism, so the
    replayed state (values *and* FLOP counts) is identical to the
    uninterrupted run, on any backend.
    """

    ops: list
    n_ops: int
    produced: int
    cost: int  #: journal cost (samples + outputs) at snapshot time


# ---------------------------------------------------------------------------
# Boundary-rate detection (mirrors FlatGraph._flatten's channel wiring)
# ---------------------------------------------------------------------------


def _consumes_external_input(s: Stream) -> bool:
    """Whether the flattened graph would read the graph input channel."""
    if isinstance(s, Filter):
        # exact mirror of FlatGraph._flatten's wiring: prework rates are
        # deliberately not consulted, because the flattener wires no
        # input channel for them either (a filter whose steady work has
        # pop=peek=0 but whose prework pops is unexecutable everywhere)
        return bool(s.pop or s.peek)
    if isinstance(s, PrimitiveFilter):
        return bool(s.peek or s.pop or s.init_peek or s.init_pop)
    if isinstance(s, Pipeline):
        return _consumes_external_input(s.children[0])
    if isinstance(s, SplitJoin):
        # a splitter nominally reads the boundary channel, but when every
        # branch starts with its own source (Radar's antenna bank) the
        # split output dangles and the program needs no external input
        if not any(_consumes_external_input(c) for c in s.children):
            return False
        if isinstance(s.splitter, Duplicate):
            return True
        return sum(s.splitter.weights) > 0
    if isinstance(s, FeedbackLoop):
        return s.joiner.weights[0] > 0
    raise TypeError(f"cannot analyze {s!r}")


def _produces_output(s: Stream) -> bool:
    """Whether the flattened graph would wire an output channel."""
    if isinstance(s, Filter):
        return bool(s.push or (s.prework and s.prework.push))
    if isinstance(s, PrimitiveFilter):
        return bool(s.push or s.init_push)
    if isinstance(s, Pipeline):
        return _produces_output(s.children[-1])
    # SplitJoin joiners and FeedbackLoop splitters always wire an output
    return True


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


class StreamSession:
    """A compiled stream program with incremental ndarray push/pull.

    Build with :func:`repro.compile`.  All three backends share the
    interface; only the execution strategy differs:

    * ``run(n)`` — produce the *next* ``n`` outputs (complete programs,
      or push sessions with enough fed input).
    * ``push(chunk)`` — feed a chunk and return every output it
      completes (push sessions only).
    * ``feed(chunk)`` — feed without draining (pair with ``run``).
    * ``reset()`` — rewind the stream without recompiling.
    * ``report()`` — the plan's kernel choices (no re-planning).
    * ``profile`` — the session's cumulative :class:`Profiler`.
    """

    def __init__(self, stream: Stream, *, backend: str = "plan",
                 optimize: str = "none", profiler: Profiler | None = None,
                 chunk_outputs: int | None = None,
                 journal_limit: int = DEFAULT_JOURNAL_LIMIT,
                 dtype=None, workers: int = 1,
                 _program_mode: bool | None = None, _plan_seed=None):
        from .exec.optimize import OPTIMIZE_MODES
        if backend not in ("interp", "compiled", "plan"):
            raise CompileOptionError("backend", backend,
                                     ("interp", "compiled", "plan"))
        if optimize not in OPTIMIZE_MODES:
            raise CompileOptionError("optimize", optimize, OPTIMIZE_MODES)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and backend != "plan":
            raise ValueError(
                f"workers={workers} requires backend='plan': the "
                f"scalar {backend!r} backend has no parallel engine")
        #: worker-process count for the parallel plan executor (1 =
        #: serial in-process execution, the default)
        self.workers = workers
        #: the session's :class:`~repro.numeric.NumericPolicy` — dtype of
        #: inputs/outputs/kernels plus the differential tolerance contract
        self.policy: NumericPolicy = resolve_policy(dtype)
        self.stream = stream
        self._closed = False
        self.backend = backend
        self.optimize = optimize
        self._profiler = profiler
        self._source: ChunkSource | None = None
        self._produced_total = 0
        #: replay journal for snapshot/restore: append-only op list of
        #: ("feed", f64 chunk copy) / ("drain", None) / ("run", n);
        #: None once the cost cap is exceeded (or journaling disabled)
        self._journal_limit = journal_limit
        self._ops: list | None = [] if journal_limit else None
        self._journal_cost = 0

        if _program_mode is None:
            program_mode = not _consumes_external_input(stream)
        else:
            program_mode = _program_mode
        if program_mode:
            self._program = stream
        else:
            parts = [ChunkSource(dtype=self.policy.dtype), stream]
            self._source = parts[0]
            if _produces_output(stream):
                parts.append(ArrayCollector(dtype=self.policy.dtype))
            self._program = Pipeline(
                parts, name=f"{getattr(stream, 'name', 'stream')}.session")

        from .exec.planner import DEFAULT_CHUNK_OUTPUTS
        self._chunk_outputs = (chunk_outputs if chunk_outputs is not None
                               else DEFAULT_CHUNK_OUTPUTS)
        self._entry = None
        self._optimized = None  # scalar backends: the rewritten program
        #: a content-identical sibling's PlanEntry donating its probing
        #: artifacts (SessionPool warm compiles); dropped after build so
        #: the donor graph is not kept alive by this session
        self._plan_seed = _plan_seed
        self._executor = self._build_executor()
        self._plan_seed = None
        if self._entry is not None:
            self._entry.acquire()
        if self._source is not None:
            self._check_push_sources()

    # -- compilation -------------------------------------------------------
    def _build_executor(self):
        if self.backend == "plan":
            from .exec.planner import compiled_plan_for
            executor, entry = compiled_plan_for(
                self._program, self._profiler,
                chunk_outputs=self._chunk_outputs, optimize=self.optimize,
                traces=self._source is None, seed=self._plan_seed,
                dtype=self.policy, workers=self.workers)
            self._entry = entry
            return executor
        if self._optimized is None:
            program = self._program
            if self.optimize != "none":
                from .exec.optimize import optimize_stream
                program = optimize_stream(program, self.optimize,
                                          policy=self.policy)
            self._optimized = program
        return FlatGraph(self._optimized, self._profiler, self.backend)

    def _check_push_sources(self) -> None:
        """Reject push graphs with internal *unbounded* sources.

        ``push`` drains greedily until the fed input runs dry; a source
        the input does not bound (``FunctionSource``, an IR source
        filter, a constant source) never runs dry, so the drain would
        spin and grow channels instead of quiescing.  Such graphs are
        still runnable as complete programs via ``run_graph`` /
        pull-mode ``compile``.
        """
        from .runtime.builtins import ListSource

        flat = getattr(self._executor, "flat", self._executor)
        for node in flat.nodes:
            if node.inputs:
                continue
            if node.stream is self._source or \
                    isinstance(node.stream, ListSource):
                continue  # the harness feed / a finite source
            raise StreamGraphError(
                f"stream {getattr(self.stream, 'name', '?')} contains "
                f"unbounded source {node.name}: greedy push drains can "
                "never quiesce — compile it as a complete program "
                "instead")

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the session is unusable)."""
        return self._closed

    def close(self) -> None:
        """Release the session's compiled resources; idempotent.

        Unpins the held :class:`~repro.exec.cache.PlanEntry` (so the plan
        cache's LRU may evict it once no live session holds it), drops
        the executor and fed-input ring, and marks the session closed —
        every subsequent ``run``/``push``/``feed``/``reset`` raises
        :class:`~repro.errors.SessionClosedError`.  Long-lived processes
        (servers, pools) that compile many graphs must close sessions
        they retire, or every plan ever compiled stays resident.
        """
        if self._closed:
            return
        self._closed = True
        if self._entry is not None:
            self._entry.release()
            self._entry = None
        if self._source is not None:
            self._source.clear()
        if self._executor is not None:
            # the parallel executor retires worker caches and unlinks
            # shared memory here; other executors have no-op/absent close
            getattr(self._executor, "close", lambda: None)()
        self._executor = None
        self._optimized = None
        self._ops = None  # snapshots already taken keep their own ref

    def __enter__(self) -> "StreamSession":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                f"session over {getattr(self.stream, 'name', '?')} is "
                "closed")

    # -- introspection -----------------------------------------------------
    @property
    def profile(self) -> Profiler | None:
        """Cumulative FLOP counts across every run/push of this session."""
        return self._profiler

    @property
    def cache_entry(self):
        """The pinned :class:`~repro.exec.cache.PlanEntry` (plan backend)."""
        return self._entry

    @property
    def bailout(self) -> str | None:
        """Why the plan backend fell back to scalar execution, if it did."""
        if self._entry is not None and self._entry.bailout is not None:
            return self._entry.bailout
        return None

    @property
    def consumed(self) -> int:
        """Items of fed input the graph has consumed (push sessions)."""
        if self._source is None:
            raise StreamGraphError(
                "consumed is only defined for push sessions")
        return self._source.consumed

    @property
    def outputs_produced(self) -> int:
        """Total outputs this session has returned so far."""
        return self._produced_total

    @property
    def pending_input(self) -> int:
        """Items fed but not yet consumed (push sessions) — the
        quantity a server bounds for backpressure."""
        if self._source is None:
            raise StreamGraphError(
                "pending_input is only defined for push sessions")
        return self._source.available

    def report(self):
        """The plan's kernel choices for this program (no re-planning
        for live plan sessions; advisory for scalar sessions)."""
        from .exec.planner import (PlanExecutor, PlanReport, plan_report,
                                   report_for_executor)
        name = getattr(self.stream, "name", "?")
        if isinstance(self._executor, PlanExecutor):
            return report_for_executor(self._executor, name, self.optimize)
        if self.bailout is not None:
            return PlanReport(program=name, optimize=self.optimize,
                              bailout=self.bailout)
        return plan_report(self._program, self.optimize)

    # -- execution ---------------------------------------------------------
    def _journal_op(self, op: str, arg, cost: int) -> None:
        """Append one successful mutating call to the replay journal
        (dropping the journal entirely once the cost cap is passed)."""
        if self._ops is None:
            return
        self._journal_cost += cost
        if self._journal_cost > self._journal_limit:
            self._ops = None  # checkpointing off for this stream's life
            return
        self._ops.append((op, arg))

    def _advance_raw(self, n: int):
        """Advance and return the executor's native container (list or
        ndarray) — the zero-conversion path the legacy list-returning
        wrappers use."""
        self._check_open()
        out = self._executor.advance(n)
        self._produced_total += n
        self._journal_op("run", n, n)
        return out

    def run(self, n: int) -> np.ndarray:
        """Produce and return the next ``n`` outputs.

        Resumable: consecutive calls continue the stream, and the total
        work after ``run(k1); run(k2)`` is identical — values and FLOP
        counts — to one ``run(k1 + k2)``.  On a push session this
        consumes previously fed input and raises the executor's deadlock
        error when not enough has been fed.

        Outputs are returned in the session's policy dtype (float64
        unless ``compile(..., dtype=...)`` said otherwise).  Scalar
        backends evaluate in Python floats and cast at this boundary;
        the plan backend computed natively in the policy dtype.
        """
        return np.asarray(self._advance_raw(n), dtype=self.policy.dtype)

    def feed(self, chunk) -> int:
        """Feed input without draining; returns the item count added.

        Chunks must be numeric data castable to the session dtype
        (float/int/bool, plus complex under a complex policy); string,
        object, and real-policy-rejected complex dtypes raise
        :class:`~repro.errors.ChunkDtypeError`.
        """
        self._check_open()
        if self._source is None:
            raise StreamGraphError(
                f"stream {getattr(self.stream, 'name', '?')} has its own "
                "sources; feed/push apply to float->float sessions only")
        count = self._source.feed(chunk)
        if self._ops is not None:
            # journal an owned copy: the caller may mutate its buffer
            self._journal_op(
                "feed", np.array(chunk, dtype=self.policy.dtype, copy=True)
                .reshape(-1), count)
        return count

    def push(self, chunk) -> np.ndarray:
        """Feed a chunk and return every output it completes.

        Chunking is semantically invisible: pushing an input split into
        arbitrary chunks produces bitwise-identical outputs and FLOP
        counts to pushing it whole.
        """
        self.feed(chunk)
        out = self._executor.drain_available()
        self._produced_total += len(out)
        self._journal_op("drain", None, len(out))
        return np.asarray(out, dtype=self.policy.dtype)

    def _rebuild_executor(self) -> None:
        """Swap in a fresh initial-state executor (reset/restore core)."""
        if self._source is not None:
            self._source.clear()
        if self._executor is not None:
            getattr(self._executor, "close", lambda: None)()
        if self._entry is not None:
            from .exec.planner import executor_from_entry
            self._executor = executor_from_entry(
                self._entry, self._profiler,
                chunk_outputs=self._chunk_outputs,
                traces=self._source is None)
        else:
            self._executor = self._build_executor()
        self._produced_total = 0

    def _clear_profile(self) -> None:
        if self._profiler is not None:
            from .profiling import Counts
            self._profiler.counts = Counts()
            self._profiler.per_filter.clear()

    def reset(self, clear_profile: bool = False) -> None:
        """Rewind the stream to its initial state without recompiling.

        Channel occupancy, filter state, island rings, and source
        positions reset; the compiled plan (and its pinned cache entry)
        is reused as-is.  The cumulative profile is kept unless
        ``clear_profile`` is set.
        """
        self._check_open()
        self._rebuild_executor()
        # a fresh list, never .clear(): outstanding snapshots keep a
        # reference to the old one and stay replayable
        self._ops = [] if self._journal_limit else None
        self._journal_cost = 0
        if clear_profile:
            self._clear_profile()

    # -- checkpoint / recovery ---------------------------------------------
    def snapshot(self) -> SessionSnapshot | None:
        """An O(1) checkpoint of the current stream position, or ``None``
        when the replay journal was dropped (``journal_limit`` exceeded,
        or journaling disabled with ``journal_limit=0``)."""
        self._check_open()
        if self._ops is None:
            return None
        return SessionSnapshot(ops=self._ops, n_ops=len(self._ops),
                               produced=self._produced_total,
                               cost=self._journal_cost)

    def restore(self, snap: SessionSnapshot) -> None:
        """Rewind to ``snap`` by replaying its journaled calls against a
        fresh executor.

        Works across sessions and **across backends**: a snapshot taken
        from a plan-backend session restores onto a compiled-backend
        session of the same program (the serving layer's degradation
        path), because the journal records the public call sequence, not
        executor internals.  The profile is cleared first and replay
        recounts it, so afterwards it equals an uninterrupted run to the
        checkpoint.  Fault-injection sites are suppressed during replay.
        """
        from . import faults
        self._check_open()
        self._clear_profile()
        with faults.suppress():
            self._rebuild_executor()
            ops = snap.ops[:snap.n_ops]
            self._ops = None  # replay must not re-journal
            for op, arg in ops:
                if op == "feed":
                    self._source.feed(arg)
                elif op == "drain":
                    self._produced_total += len(
                        self._executor.drain_available())
                else:  # "run"
                    self._executor.advance(arg)
                    self._produced_total += arg
        if self._produced_total != snap.produced:
            raise InterpError(
                f"snapshot replay diverged: produced "
                f"{self._produced_total} outputs, checkpoint recorded "
                f"{snap.produced}")
        if self._journal_limit:
            self._ops = list(ops)
            self._journal_cost = snap.cost


def compile(stream: Stream | str, *, top: str | None = None, args=(),
            backend: str = "plan",
            optimize: str = "none", profiler: Profiler | None = None,
            chunk_outputs: int | None = None,
            dtype=None, workers: int = 1) -> StreamSession:
    """Compile ``stream`` once into a resumable :class:`StreamSession`.

    ``stream`` is either a stream graph or DSL source text: a string
    parses and elaborates through the cached DSL frontend (``top``
    selects the stream to instantiate, default the last declared;
    ``args`` are its instantiation arguments), and the source
    fingerprint becomes the plan-cache key — recompiling the same
    program text hits the cache without re-hashing the graph.

    ``backend`` is one of ``"interp"`` / ``"compiled"`` / ``"plan"``
    (default — the vectorized engine; graphs it cannot batch fall back
    to scalar execution inside the session, see ``session.bailout``).
    ``optimize`` is the pre-plan rewrite mode (``"none"`` | ``"linear"``
    | ``"freq"`` | ``"auto"``).  A complete program (it has its own
    sources) yields a *pull* session driven by ``session.run(n)``; a
    float->float graph yields a *push* session driven by
    ``session.push(chunk)``.  The session profiles into ``profiler``
    (default: a fresh :class:`Profiler`, exposed as
    ``session.profile``).

    ``dtype`` selects the session's numeric policy: ``"f64"`` (default),
    ``"f32"``, ``"c64"``, or ``"c128"`` (numpy dtypes and common aliases
    like ``"float32"`` also resolve).  Inputs are cast to it, outputs
    are returned in it, the plan backend allocates rings and computes
    kernels natively in it, and ``session.policy`` carries the matching
    comparison tolerances.

    ``workers`` > 1 (plan backend only) executes the compiled plan on
    the parallel engine: kernel regions are scheduled across a pool of
    worker processes over shared-memory rings, and profitable linear
    leaves are replicated data-parallel (:mod:`repro.parallel`).
    Outputs match ``workers=1`` within the policy's tolerances (bitwise
    on round-robin-fissioned and region-parallel paths) and FLOP
    accounting is exact.
    """
    if isinstance(stream, str):
        from .dsl import load_source
        stream = load_source(stream, top, *args, fingerprint=True)
    elif top is not None or args:
        raise TypeError("top/args only apply when compiling DSL source "
                        "text")
    if profiler is None:
        profiler = Profiler()
    return StreamSession(stream, backend=backend, optimize=optimize,
                         profiler=profiler, chunk_outputs=chunk_outputs,
                         dtype=dtype, workers=workers)
