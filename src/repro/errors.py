"""Shared exception types for the repro package.

Besides the exception hierarchy this module defines the structured
diagnostic objects of the DSL frontend: a :class:`SourceSpan` locating a
region of source text and a :class:`Diagnostic` pairing a stable machine
code (mirroring :attr:`ProtocolError.code`) with a human message and an
optional caret-rendered snippet.  :class:`DSLError` carries a list of
them, so one failed parse can report *every* syntax error it recovered
past, each pointing at the offending text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of DSL source text (1-based lines/columns).

    ``end_col`` is exclusive: the span of ``abc`` starting at column 5
    is ``col=5, end_col=8``.  Single-point spans (``end_col == col``)
    mark an insertion position, e.g. where a missing ``;`` belongs.
    """

    line: int
    col: int
    end_line: int = 0
    end_col: int = 0

    def __post_init__(self):
        if self.end_line <= 0:
            object.__setattr__(self, "end_line", self.line)
        if self.end_col <= 0:
            object.__setattr__(self, "end_col", self.col + 1)

    def merge(self, other: "SourceSpan | None") -> "SourceSpan":
        """The smallest span covering both spans."""
        if other is None:
            return self
        start = min((self.line, self.col), (other.line, other.col))
        end = max((self.end_line, self.end_col),
                  (other.end_line, other.end_col))
        return SourceSpan(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:
        return f"line {self.line}, col {self.col}"


@dataclass(frozen=True)
class Diagnostic:
    """One structured DSL error: stable code, message, source span.

    ``code`` is machine-readable and stable across releases (the DSL
    counterpart of :attr:`ProtocolError.code`): tooling may dispatch on
    it.  ``render`` produces the human form — message, location, and
    the offending source line with a caret underline when the source
    text is available.
    """

    code: str
    message: str
    span: SourceSpan | None = None
    hint: str | None = None

    def describe(self) -> str:
        """One-line form: ``message at line L, col C [code]``."""
        loc = f" at {self.span}" if self.span is not None else ""
        return f"{self.message}{loc} [{self.code}]"

    def render(self, source: str | None = None) -> str:
        """Multi-line form with a caret snippet when ``source`` is given::

            error[dsl-expected]: expected ';' at line 3, col 12
              3 | push(sum)
                |          ^
        """
        head = f"error[{self.code}]: {self.message}"
        if self.span is not None:
            head += f" at {self.span}"
        lines = [head]
        if source is not None and self.span is not None:
            text_lines = source.splitlines()
            if 1 <= self.span.line <= len(text_lines):
                text = text_lines[self.span.line - 1]
                gutter = f"  {self.span.line} | "
                lines.append(f"{gutter}{text}")
                width = self.span.end_col - self.span.col \
                    if self.span.end_line == self.span.line else \
                    max(len(text) - self.span.col + 1, 1)
                width = max(width, 1)
                pad = " " * (len(str(self.span.line)) + 2)
                lines.append(f"  {pad}| "
                             + " " * (self.span.col - 1) + "^" * width)
        if self.hint is not None:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StreamGraphError(ReproError):
    """A stream graph is malformed (bad rates, unbalanced splitjoin, ...)."""


class SchedulingError(ReproError):
    """No valid steady-state schedule exists for a stream graph."""


class IRError(ReproError):
    """Malformed IR or an IR construct used out of context."""


class InterpError(ReproError):
    """Runtime failure while interpreting work-function IR."""


class NonLinearError(ReproError):
    """Raised internally by linear extraction when a filter is not linear.

    Carries a human-readable ``reason`` used for diagnostics.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CombinationError(ReproError):
    """A structural linear combination rule could not be applied."""


class CompileOptionError(ReproError, ValueError):
    """A bad ``repro.compile`` / serve-protocol option value.

    Raised for unknown ``backend`` / ``optimize`` / session-mode values
    *before* any graph work happens, so callers (and the serve protocol)
    can map it to a precise client error instead of a ``KeyError`` or
    ``ValueError`` escaping from deeper layers.  Subclasses
    ``ValueError`` for backward compatibility.
    """

    def __init__(self, option: str, value, choices):
        self.option = option
        self.value = value
        self.choices = tuple(choices)
        super().__init__(
            f"unknown {option} {value!r} (expected one of "
            f"{', '.join(map(repr, self.choices))})")


class ChunkDtypeError(ReproError, TypeError):
    """A pushed chunk has a dtype that cannot feed the stream.

    ``push``/``feed`` accept numeric chunks castable to the session's
    numeric policy: float/int/bool arrays or sequences (plus complex
    under a complex policy); string, object, and other non-castable
    dtypes — and complex data into a real-dtype session — raise this
    instead of whatever ``np.asarray`` would.
    """

    def __init__(self, dtype, complex_ok: bool = False):
        self.dtype = dtype
        allowed = ("float/int/bool/complex" if complex_ok
                   else "float/int/bool")
        super().__init__(
            f"chunk dtype {dtype!s} cannot feed this stream; "
            f"push/feed require {allowed}-convertible data")


class SessionClosedError(ReproError, RuntimeError):
    """A :class:`~repro.session.StreamSession` was used after ``close()``."""


class SessionPoisonedError(ReproError, RuntimeError):
    """A request arrived for a session an earlier failure poisoned.

    A poisoned session's stream position is indeterminate (a timed-out
    worker may still be mutating it), so the server refuses further
    work on it instead of returning wrong samples; clients RESUME (the
    server restores the last checkpoint) or open a fresh session.
    """


class DeadlineError(ReproError, TimeoutError):
    """A request ran past its deadline (``ServeConfig.request_timeout``
    or a shutdown drain deadline).  The session it ran on is poisoned —
    the worker thread may still be advancing it."""


class FaultInjected(ReproError):
    """An artificial failure raised at a :mod:`repro.faults` injection
    site.  Carries the ``site`` name (``"kernel.step"``, ``"wire.drop"``,
    ...) so recovery paths and tests can tell injected faults from
    organic ones."""

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"injected fault at site {site!r}")


class ProtocolError(ReproError):
    """A serve-protocol failure (malformed frame, server error reply).

    ``code`` is the machine-readable error code carried by serve error
    frames (``"bad-frame"``, ``"backpressure"``, ``"timeout"``, ...).
    """

    def __init__(self, message: str, code: str = "protocol"):
        super().__init__(message)
        self.code = code


class DSLError(ReproError):
    """Lexing/parsing/elaboration failure in the textual mini-StreamIt DSL.

    Carries one or more :class:`Diagnostic` objects under
    ``.diagnostics`` — a recovering parse reports *all* the errors it
    found, not just the first.  ``.line``/``.col`` point at the first
    diagnostic (backward compatibility), ``.code`` is its stable error
    code, and :meth:`render` prints every diagnostic with a caret
    snippet (``.source`` is attached by the frontend when known).
    """

    def __init__(self, message: str | None = None,
                 line: int | None = None, col: int | None = None, *,
                 diagnostics: "tuple[Diagnostic, ...] | list" = (),
                 source: str | None = None):
        if not diagnostics:
            span = SourceSpan(line, col if col is not None else 1) \
                if line is not None else None
            diagnostics = (Diagnostic("dsl-error", message or "DSL error",
                                      span),)
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)
        self.source = source
        first = self.diagnostics[0]
        if message is None:
            if len(self.diagnostics) == 1:
                message = first.message
            else:
                message = (f"{len(self.diagnostics)} errors: "
                           + "; ".join(d.describe()
                                       for d in self.diagnostics))
        explicit_loc = line is not None
        if line is None and first.span is not None:
            line, col = first.span.line, first.span.col
        loc = ""
        if line is not None and (explicit_loc or len(self.diagnostics) == 1):
            loc = f" at line {line}"
            if col is not None:
                loc += f", col {col}"
        super().__init__(message + loc)
        self.line = line
        self.col = col

    @property
    def code(self) -> str:
        """Stable machine code of the first diagnostic."""
        return self.diagnostics[0].code

    def render(self, source: str | None = None) -> str:
        """Every diagnostic rendered with caret snippets."""
        src = source if source is not None else self.source
        return "\n".join(d.render(src) for d in self.diagnostics)
