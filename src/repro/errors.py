"""Shared exception types for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StreamGraphError(ReproError):
    """A stream graph is malformed (bad rates, unbalanced splitjoin, ...)."""


class SchedulingError(ReproError):
    """No valid steady-state schedule exists for a stream graph."""


class IRError(ReproError):
    """Malformed IR or an IR construct used out of context."""


class InterpError(ReproError):
    """Runtime failure while interpreting work-function IR."""


class NonLinearError(ReproError):
    """Raised internally by linear extraction when a filter is not linear.

    Carries a human-readable ``reason`` used for diagnostics.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CombinationError(ReproError):
    """A structural linear combination rule could not be applied."""


class DSLError(ReproError):
    """Lexing/parsing/elaboration failure in the textual mini-StreamIt DSL."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        loc = f" at line {line}" if line is not None else ""
        loc += f", col {col}" if col is not None else ""
        super().__init__(message + loc)
        self.line = line
        self.col = col
