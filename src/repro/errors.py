"""Shared exception types for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StreamGraphError(ReproError):
    """A stream graph is malformed (bad rates, unbalanced splitjoin, ...)."""


class SchedulingError(ReproError):
    """No valid steady-state schedule exists for a stream graph."""


class IRError(ReproError):
    """Malformed IR or an IR construct used out of context."""


class InterpError(ReproError):
    """Runtime failure while interpreting work-function IR."""


class NonLinearError(ReproError):
    """Raised internally by linear extraction when a filter is not linear.

    Carries a human-readable ``reason`` used for diagnostics.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CombinationError(ReproError):
    """A structural linear combination rule could not be applied."""


class CompileOptionError(ReproError, ValueError):
    """A bad ``repro.compile`` / serve-protocol option value.

    Raised for unknown ``backend`` / ``optimize`` / session-mode values
    *before* any graph work happens, so callers (and the serve protocol)
    can map it to a precise client error instead of a ``KeyError`` or
    ``ValueError`` escaping from deeper layers.  Subclasses
    ``ValueError`` for backward compatibility.
    """

    def __init__(self, option: str, value, choices):
        self.option = option
        self.value = value
        self.choices = tuple(choices)
        super().__init__(
            f"unknown {option} {value!r} (expected one of "
            f"{', '.join(map(repr, self.choices))})")


class ChunkDtypeError(ReproError, TypeError):
    """A pushed chunk has a dtype that cannot feed a float stream.

    ``push``/``feed`` accept real numeric chunks (float/int/bool arrays
    or sequences); complex, string, object, and other non-castable
    dtypes raise this instead of whatever ``np.asarray`` would.
    """

    def __init__(self, dtype):
        self.dtype = dtype
        super().__init__(
            f"chunk dtype {dtype!s} is not a real numeric type; "
            "push/feed require float-convertible data (float/int/bool)")


class SessionClosedError(ReproError, RuntimeError):
    """A :class:`~repro.session.StreamSession` was used after ``close()``."""


class SessionPoisonedError(ReproError, RuntimeError):
    """A request arrived for a session an earlier failure poisoned.

    A poisoned session's stream position is indeterminate (a timed-out
    worker may still be mutating it), so the server refuses further
    work on it instead of returning wrong samples; clients RESUME (the
    server restores the last checkpoint) or open a fresh session.
    """


class DeadlineError(ReproError, TimeoutError):
    """A request ran past its deadline (``ServeConfig.request_timeout``
    or a shutdown drain deadline).  The session it ran on is poisoned —
    the worker thread may still be advancing it."""


class FaultInjected(ReproError):
    """An artificial failure raised at a :mod:`repro.faults` injection
    site.  Carries the ``site`` name (``"kernel.step"``, ``"wire.drop"``,
    ...) so recovery paths and tests can tell injected faults from
    organic ones."""

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"injected fault at site {site!r}")


class ProtocolError(ReproError):
    """A serve-protocol failure (malformed frame, server error reply).

    ``code`` is the machine-readable error code carried by serve error
    frames (``"bad-frame"``, ``"backpressure"``, ``"timeout"``, ...).
    """

    def __init__(self, message: str, code: str = "protocol"):
        super().__init__(message)
        self.code = code


class DSLError(ReproError):
    """Lexing/parsing/elaboration failure in the textual mini-StreamIt DSL."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        loc = f" at line {line}" if line is not None else ""
        loc += f", col {col}" if col is not None else ""
        super().__init__(message + loc)
        self.line = line
        self.col = col
