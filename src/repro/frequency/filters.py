"""Frequency-domain replacement filters (thesis §4.1).

A linear node ``{A, b, e, o, u}`` is a bank of ``u`` convolutions (one per
output column) when viewed at pop rate 1; both transformations implement
those convolutions by FFT -> pointwise multiply -> IFFT, then recover the
declared pop rate with a :class:`Decimator` that keeps the first ``u`` of
every ``u*o`` outputs.

* :class:`NaiveFreqFilter` (Transformation 5): overlap-save with hop ``m``
  — each firing peeks ``m+e-1`` items, pops ``m``, pushes ``u*m``; the
  ``e-1``-item head and tail of each block are discarded.
* :class:`OptimizedFreqFilter` (Transformation 6): disjoint blocks of
  ``r = m+e-1`` inputs; the partial head/tail sums of adjacent blocks are
  *added* to recover the ``e-1`` boundary outputs, so every firing pushes
  ``u*r`` outputs (``u*m`` on the first firing, before partials exist).

The FFT size follows the thesis: ``N = 2^ceil(lg 2e)``, ``m = N-2e+1``;
both can be overridden for the Figure 5-12 sweep.
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamGraphError
from ..graph.streams import Pipeline, PrimitiveFilter, Stream
from ..linear.node import LinearNode
from ..profiling import Counts
from .fftlib import FrequencyKernel, fft_size_for


def _push_kernels(node: LinearNode) -> np.ndarray:
    """(e, u) array whose column j is the impulse response of push j.

    Push j uses matrix column ``u-1-j``; the convolution kernel is that
    column as-is: ``out_j[i] = sum_k A[k, u-1-j] * in[i+e-1-k]``.
    """
    return node.A[:, ::-1]


def _push_offsets(node: LinearNode) -> np.ndarray:
    return node.b[::-1]


class Decimator(PrimitiveFilter):
    """Keeps the first ``u`` of every ``u*o`` items (Transformation 5)."""

    def __init__(self, o: int, u: int, name: str = "Decimator"):
        if o < 1 or u < 1:
            raise StreamGraphError("decimator rates must be positive")
        self.o = o
        self.u = u
        self.peek = u * o
        self.pop = u * o
        self.push = u
        self.name = name

    def make_runner(self, profiler):
        o, u = self.o, self.u

        class _Runner:
            def fire(self, ch_in, ch_out):
                block = ch_in.peek_block(u * o)
                ch_out.push_array(block[:u])
                ch_in.pop_block(u * o)

        return _Runner()


class _FreqBase(PrimitiveFilter):
    def __init__(self, node: LinearNode, name: str, backend: str,
                 fft_size: int | None):
        if node.pop != 1:
            raise StreamGraphError(
                "frequency filters operate at pop 1; wrap with "
                "make_frequency_stream for o > 1")
        e = node.peek
        n = fft_size if fft_size is not None else fft_size_for(e)
        m = n - 2 * e + 1
        if m < 1:
            raise StreamGraphError(
                f"FFT size {n} too small for peek {e} (need >= {2 * e})")
        self.linear_node_time_domain = node
        self.name = name
        self.e = e
        self.u = node.push
        self.n = n
        self.m = m
        self.backend = backend
        self.kernel = FrequencyKernel(_push_kernels(node), n, backend)
        self.b_push = _push_offsets(node)
        self._b_adds = int(np.count_nonzero(self.b_push))


class NaiveFreqFilter(_FreqBase):
    """Transformation 5: overlapping blocks, partial sums discarded."""

    def __init__(self, node: LinearNode, name: str = "FreqNaive",
                 backend: str = "fftw", fft_size: int | None = None):
        super().__init__(node, name, backend, fft_size)
        self.peek = self.m + self.e - 1
        self.pop = self.m
        self.push = self.u * self.m

    def make_runner(self, profiler):
        e, m, u = self.e, self.m, self.u
        kernel, b_push = self.kernel, self.b_push
        counts = kernel.counts_per_block.copy()
        counts.fadd += self._b_adds * m  # adding b to each kept output
        name = self.name

        class _Runner:
            def fire(self, ch_in, ch_out):
                x = ch_in.peek_block(m + e - 1)
                y = kernel.convolve_block(x)  # (n, u)
                kept = y[e - 1:e - 1 + m, :] + b_push
                ch_out.push_array(kept.reshape(-1))
                ch_in.pop_block(m)
                profiler.add_counts(counts, filter_name=name)

        return _Runner()


class OptimizedFreqFilter(_FreqBase):
    """Transformation 6: disjoint blocks, boundary outputs from partials."""

    def __init__(self, node: LinearNode, name: str = "FreqOpt",
                 backend: str = "fftw", fft_size: int | None = None):
        super().__init__(node, name, backend, fft_size)
        r = self.m + self.e - 1
        self.r = r
        self.peek = r
        self.pop = r
        self.push = self.u * r
        self.init_peek = r
        self.init_pop = r
        self.init_push = self.u * self.m

    def make_runner(self, profiler):
        e, m, u, r = self.e, self.m, self.u, self.r
        kernel, b_push = self.kernel, self.b_push
        init_counts = kernel.counts_per_block.copy()
        init_counts.fadd += self._b_adds * m
        steady_counts = kernel.counts_per_block.copy()
        steady_counts.fadd += self._b_adds * r  # b on all r outputs/column
        steady_counts.fadd += u * (e - 1)  # partial-sum completion adds
        name = self.name

        class _Runner:
            def __init__(self):
                self.partials: np.ndarray | None = None

            def fire(self, ch_in, ch_out):
                x = ch_in.peek_block(r)
                y = kernel.convolve_block(x)  # (n, u)
                if self.partials is None:
                    ch_out.push_array(
                        (y[e - 1:e - 1 + m, :] + b_push).reshape(-1))
                    profiler.add_counts(init_counts, filter_name=name)
                else:
                    head = y[:e - 1, :] + self.partials + b_push
                    ch_out.push_array(head.reshape(-1))
                    ch_out.push_array(
                        (y[e - 1:e - 1 + m, :] + b_push).reshape(-1))
                    profiler.add_counts(steady_counts, filter_name=name)
                self.partials = y[m + e - 1:m + 2 * e - 2, :].copy()
                ch_in.pop_block(r)

        return _Runner()


def make_frequency_stream(node: LinearNode, name: str = "Freq",
                          strategy: str = "optimized",
                          backend: str = "fftw",
                          fft_size: int | None = None) -> Stream:
    """Build the full frequency implementation of a linear node.

    Returns the frequency filter alone for ``o = 1``, or a pipeline of the
    pop-1 frequency filter and a decimator for ``o > 1`` (both
    transformations' final step).
    """
    o = node.pop
    if o == 1:
        pop1 = node
    else:
        pop1 = LinearNode(node.A, node.b, node.peek, 1, node.push)
    cls = {"naive": NaiveFreqFilter, "optimized": OptimizedFreqFilter}
    try:
        freq_cls = cls[strategy]
    except KeyError:
        raise ValueError(f"unknown strategy {strategy!r}") from None
    freq = freq_cls(pop1, name=f"{name}.{strategy}", backend=backend,
                    fft_size=fft_size)
    if o == 1:
        return freq
    return Pipeline([freq, Decimator(o, node.push, name=f"{name}.dec")],
                    name=name)
