"""FFT kernels and cost models for frequency replacement.

The paper compares three FFT strategies (Figure 5-12): a *simple* FFT (the
textbook radix-2 algorithm of thesis §2.3), the *optimized* frequency
transformation, and *FFTW*.  We provide:

* :class:`CountedRadix2FFT` — an actual iterative radix-2 implementation
  whose butterflies are executed (vectorized per stage) and whose
  floating-point operations are counted dynamically; this is the "simple
  FFT".
* ``numpy.fft`` (rfft/irfft) as the FFTW stand-in for fast execution, with
  an analytic split-radix-real cost model (:func:`fftw_counts`).

The dynamic counts of the radix-2 implementation match the classic
closed form — ``N/2·lg N`` complex multiplies and ``N·lg N`` complex
additions — which :func:`simple_fft_counts` encodes; a unit test asserts
the counted implementation agrees with the formula.
"""

from __future__ import annotations

import math

import numpy as np

from ..profiling import Counts


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


def fft_size_for(peek: int) -> int:
    """FFT size for a filter of depth ``e`` (thesis §4.1.2, adjusted).

    The thesis picks the first power of two >= 2e, but that degenerates
    when e is itself a power of two (N = 2e gives m = N - 2e + 1 = 1 fresh
    output per block — one FFT per output).  We keep doubling until the
    block yields at least ``e`` fresh outputs (m >= e), the standard
    overlap-save sizing rule; for non-power-of-two e the result usually
    matches the thesis' choice.
    """
    n = next_power_of_two(2 * peek)
    while n - 2 * peek + 1 < peek:
        n *= 2
    return n


class CountedRadix2FFT:
    """Iterative decimation-in-time radix-2 FFT with op accounting.

    Butterfly stages are computed with numpy for speed, but the profiler
    counts are exactly those of the scalar loop nest: per stage, N/2
    complex multiplies (4 real mul + 2 real add each) and N complex
    additions/subtractions (2 real add each).
    """

    def __init__(self, n: int):
        if not is_power_of_two(n):
            raise ValueError(f"radix-2 FFT size must be a power of two: {n}")
        self.n = n
        self.stages = n.bit_length() - 1
        self._rev = self._bit_reverse_permutation(n)
        # twiddles per stage
        self._twiddles = []
        half = 1
        for _ in range(self.stages):
            w = np.exp(-2j * np.pi * np.arange(half) / (2 * half))
            self._twiddles.append(w)
            half *= 2
        self.counts_per_call = self._op_counts()

    @staticmethod
    def _bit_reverse_permutation(n: int) -> np.ndarray:
        bits = n.bit_length() - 1
        rev = np.zeros(n, dtype=int)
        for i in range(n):
            b = 0
            x = i
            for _ in range(bits):
                b = (b << 1) | (x & 1)
                x >>= 1
            rev[i] = b
        return rev

    def _op_counts(self) -> Counts:
        n, stages = self.n, self.stages
        c = Counts()
        # per stage: n/2 complex mults, n complex add/sub
        c.fmul = 4 * (n // 2) * stages
        c.fadd = (2 * (n // 2) + 2 * n) * stages
        return c

    def transform(self, x: np.ndarray, inverse: bool = False) -> np.ndarray:
        """Compute the (I)FFT of ``x`` (length n, zero-pad to call)."""
        if len(x) != self.n:
            raise ValueError(f"input length {len(x)} != {self.n}")
        data = np.asarray(x, dtype=complex)[self._rev]
        for stage, w in enumerate(self._twiddles):
            tw = np.conj(w) if inverse else w
            half = 1 << stage
            size = half * 2
            data = data.reshape(-1, size)
            evens = data[:, :half]
            odds = data[:, half:] * tw
            data = np.concatenate([evens + odds, evens - odds], axis=1)
            data = data.reshape(-1)
        if inverse:
            data = data / self.n
        return data


def simple_fft_counts(n: int) -> Counts:
    """Closed-form op count of one radix-2 complex FFT of size ``n``."""
    stages = n.bit_length() - 1
    c = Counts()
    c.fmul = 4 * (n // 2) * stages
    c.fadd = (2 * (n // 2) + 2 * n) * stages
    return c


def fftw_counts(n: int) -> Counts:
    """Modeled op count of one FFTW real transform of size ``n``.

    FFTW uses split-radix kernels on half-complex (real-input) data.  A
    split-radix real-input FFT needs roughly ``(2/3)·N·lg N`` real
    multiplies and ``(4/3)·N·lg N`` additions — about 3x fewer multiplies
    than the textbook complex radix-2 algorithm.  (Substitution documented
    in DESIGN.md; absolute constants affect Fig 5-12(d) only by a scale
    factor.)
    """
    lg = n.bit_length() - 1
    c = Counts()
    c.fmul = math.ceil(2 * n * lg / 3)
    c.fadd = math.ceil(4 * n * lg / 3)
    return c


def elementwise_complex_mult_counts(n_points: int) -> Counts:
    """Ops of multiplying two complex vectors pointwise (4 mul + 2 add each)."""
    c = Counts()
    c.fmul = 4 * n_points
    c.fadd = 2 * n_points
    return c


class FrequencyKernel:
    """Precomputed frequency-domain machinery for one linear node column set.

    Handles both backends:

    * ``fftw``   — numpy rfft/irfft (fast), half-complex product, modeled
      split-radix-real counts;
    * ``simple`` — full complex transforms, counted with the radix-2
      closed form (execution still uses numpy for speed; the counted
      implementation is validated against numpy in unit tests).
    """

    def __init__(self, kernels: np.ndarray, n: int, backend: str = "fftw"):
        """``kernels``: (e, u) array, column j = impulse response of push j."""
        if backend not in ("fftw", "simple"):
            raise ValueError(f"unknown FFT backend {backend!r}")
        self.n = n
        self.backend = backend
        self.u = kernels.shape[1]
        #: time-domain impulse responses, kept so :meth:`for_policy` can
        #: retransform them into another dtype's FFT path
        self.kernels = np.asarray(kernels)
        self.H = np.fft.rfft(kernels, n=n, axis=0)  # (n//2+1, u)
        if backend == "fftw":
            per_transform = fftw_counts(n)
            product_points = n // 2 + 1
        else:
            per_transform = simple_fft_counts(n)
            product_points = n
        self.counts_per_block = per_transform.scaled(1 + self.u)
        self.counts_per_block.add(
            elementwise_complex_mult_counts(product_points).scaled(self.u))
        self._typed: dict[str, "_TypedFrequencyKernel"] = {}

    def for_policy(self, policy):
        """A convolution kernel computing in ``policy``'s dtype.

        The default float64 policy returns ``self`` (the seed behavior,
        bit for bit).  float32 keeps the real rfft/irfft path but holds
        ``H`` in complex64, so NumPy's precision-preserving FFT stays in
        single precision end-to-end; complex policies switch to the full
        complex fft/ifft pair (a real ``H`` spectrum cannot multiply a
        complex input's two-sided spectrum).  Typed variants are cached
        per policy name — the spectra are recomputed once, not per batch.
        """
        if policy is None or policy.is_default:
            return self
        cached = self._typed.get(policy.name)
        if cached is None:
            cached = _TypedFrequencyKernel(self, policy)
            self._typed[policy.name] = cached
        return cached

    def convolve_block(self, x: np.ndarray) -> np.ndarray:
        """Circular convolution of ``x`` (zero-padded to n) with each kernel.

        Returns an (n, u) array of time-domain results.
        """
        X = np.fft.rfft(x, n=self.n)
        Y = X[:, None] * self.H
        return np.fft.irfft(Y, n=self.n, axis=0)

    def convolve_batch(self, blocks: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`convolve_block` over a ``(k, block_len)`` stack.

        Returns a ``(k, n, u)`` array; row ``i`` equals
        ``convolve_block(blocks[i])``.  Used by the plan backend's batched
        frequency steps: one rfft/irfft call covers every firing in the
        batch.
        """
        X = np.fft.rfft(blocks, n=self.n, axis=1)  # (k, n//2+1)
        Y = X[:, :, None] * self.H[None, :, :]  # (k, n//2+1, u)
        return np.fft.irfft(Y, n=self.n, axis=1)  # (k, n, u)


class _TypedFrequencyKernel:
    """A :class:`FrequencyKernel` view computing in a policy dtype.

    Shares the parent's sizes and analytic counts; only the spectra and
    the transform pair differ.  NumPy's pocketfft preserves single
    precision (``rfft(float32) -> complex64``), so the float32 variant
    is a true single-precision pipeline, not a downcast of f64 results.
    """

    def __init__(self, parent: FrequencyKernel, policy):
        self.n = parent.n
        self.u = parent.u
        self.backend = parent.backend
        self.counts_per_block = parent.counts_per_block
        self._complex = bool(policy.is_complex)
        kernels = np.asarray(parent.kernels, dtype=policy.dtype)
        if self._complex:
            self.H = np.fft.fft(kernels, n=self.n, axis=0)  # (n, u)
        else:
            self.H = np.fft.rfft(kernels, n=self.n, axis=0)

    def convolve_block(self, x: np.ndarray) -> np.ndarray:
        if self._complex:
            X = np.fft.fft(x, n=self.n)
            return np.fft.ifft(X[:, None] * self.H, n=self.n, axis=0)
        X = np.fft.rfft(x, n=self.n)
        return np.fft.irfft(X[:, None] * self.H, n=self.n, axis=0)

    def convolve_batch(self, blocks: np.ndarray) -> np.ndarray:
        if self._complex:
            X = np.fft.fft(blocks, n=self.n, axis=1)
            Y = X[:, :, None] * self.H[None, :, :]
            return np.fft.ifft(Y, n=self.n, axis=1)
        X = np.fft.rfft(blocks, n=self.n, axis=1)
        Y = X[:, :, None] * self.H[None, :, :]
        return np.fft.irfft(Y, n=self.n, axis=1)
