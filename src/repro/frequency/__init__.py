"""Frequency-domain replacement: FFT library and overlap-save filters."""

from .fftlib import (CountedRadix2FFT, FrequencyKernel, fft_size_for,
                     fftw_counts, next_power_of_two, simple_fft_counts)
from .filters import (Decimator, NaiveFreqFilter, OptimizedFreqFilter,
                      make_frequency_stream)
from .replacer import maximal_frequency_replacement

__all__ = [
    "CountedRadix2FFT", "simple_fft_counts", "fftw_counts", "fft_size_for",
    "next_power_of_two", "FrequencyKernel",
    "Decimator", "NaiveFreqFilter", "OptimizedFreqFilter",
    "make_frequency_stream", "maximal_frequency_replacement",
]
