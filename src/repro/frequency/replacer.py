"""Maximal frequency replacement over whole stream graphs (§5.2).

Walks the hierarchy like linear replacement, but implements each maximal
linear region in the frequency domain.  Regions where the transform is
not applicable or obviously degenerate (peek 1 with nothing to convolve)
fall back to time-domain linear replacement, matching the implementation
note that frequency replacement builds on the combination machinery.
"""

from __future__ import annotations

from ..errors import StreamGraphError
from ..graph.streams import Stream
from ..linear.combine import LinearityMap, analyze, replace_with
from ..linear.filters import LinearFilter
from ..linear.node import LinearNode
from .filters import make_frequency_stream


def maximal_frequency_replacement(stream: Stream,
                                  strategy: str = "optimized",
                                  backend: str = "fftw",
                                  lmap: LinearityMap | None = None,
                                  min_peek: int = 2,
                                  fft_size: int | None = None,
                                  combine: bool = True) -> Stream:
    """Replace every maximal linear region with a frequency implementation.

    ``min_peek`` guards the degenerate case: a node that peeks a single
    item performs no convolution and stays in the time domain.
    """
    if lmap is None:
        lmap = analyze(stream)

    def make_leaf(node: LinearNode, s: Stream, in_feedback: bool):
        if node.peek < min_peek or in_feedback:
            # frequency filters change firing granularity, which would
            # deadlock a feedback cycle; fall back to the matrix form
            return LinearFilter(node, name=f"Linear[{s.name}]")
        try:
            return make_frequency_stream(node, name=f"Freq[{s.name}]",
                                         strategy=strategy, backend=backend,
                                         fft_size=fft_size)
        except StreamGraphError:
            return LinearFilter(node, name=f"Linear[{s.name}]")

    return replace_with(stream, make_leaf, lmap, combine=combine)
