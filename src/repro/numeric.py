"""Numeric policy: one dtype decision threaded through every layer.

The stack historically hardcoded ``float64`` everywhere — ring buffers,
kernels, the session push path, the serve wire protocol's ``f64le``
payloads.  A :class:`NumericPolicy` bundles the one decision all of
those sites share:

* the **storage/compute dtype** (rings, kernel matrices, FFT paths),
* the **comparison tolerance** differential tests may rely on
  (``f64`` scalar backends stay bitwise; ``f32``/complex compare at
  scaled tolerances),
* the **wire tag** typed serve frames carry so a client and a session
  can agree on the payload layout instead of both assuming ``f64le``.

Backend contract (documented in the README's "Numeric policy" section):
the scalar backends (``interp``/``compiled``) always *evaluate* in
Python floats (i.e. binary64) and cast to the policy dtype only at the
session boundary, so their ``f64`` outputs stay bit-identical to the
seed behavior; the ``plan`` backend allocates its ring buffers and runs
its batched kernels natively in the policy dtype.  FLOP accounting is
dtype-independent for real policies (parity with the scalar profile
holds for ``f32`` exactly as for ``f64``); complex policies scale the
reported counts through :meth:`NumericPolicy.adjust_counts` — a complex
multiply-add is 4 real multiplies and 2 real adds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import CompileOptionError
from .profiling import Counts

__all__ = ["NumericPolicy", "POLICIES", "DEFAULT_POLICY",
           "DTYPE_CHOICES", "resolve_policy"]


@dataclass(frozen=True)
class NumericPolicy:
    """One end-to-end numeric configuration (dtype + tolerance + wire)."""

    #: canonical short name — also the plan-cache key component and the
    #: ``--dtype`` spelling: ``f32`` | ``f64`` | ``c64`` | ``c128``
    name: str
    #: NumPy storage/compute dtype for the plan backend
    dtype: np.dtype
    #: 1-byte tag carried by typed serve frames (PUSHT/FEEDT/ARRT)
    wire_tag: int
    #: little-endian wire layout of one sample, e.g. ``"<f8"``
    wire_fmt: str
    #: differential-comparison tolerances vs the float64 scalar reference
    rtol: float
    atol: float

    @property
    def is_complex(self) -> bool:
        return self.dtype.kind == "c"

    @property
    def is_default(self) -> bool:
        """The pre-policy behavior: float64 end-to-end, ``f64le`` wire."""
        return self.name == "f64"

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.wire_fmt).itemsize)

    def scalar(self, value):
        """Cast one sample to the policy's Python scalar type."""
        return complex(value) if self.is_complex else float(value)

    def cast(self, values) -> np.ndarray:
        """An ndarray of ``values`` in the policy dtype (copy only when
        a conversion is actually needed)."""
        return np.asarray(values, dtype=self.dtype)

    def adjust_counts(self, counts: Counts) -> Counts:
        """Rescale an analytic (real-arithmetic) FLOP profile to this
        policy.  Real policies are the identity — FLOP parity with the
        scalar backends is exact.  Complex policies apply the standard
        real-op equivalents: a complex multiply is 4 real multiplies and
        2 real adds, a complex add/sub/negate is 2 of the real op."""
        if not self.is_complex:
            return counts
        return Counts(fadd=2 * counts.fadd + 2 * counts.fmul,
                      fsub=2 * counts.fsub,
                      fmul=4 * counts.fmul,
                      fdiv=counts.fdiv,
                      fcmp=counts.fcmp,
                      fneg=2 * counts.fneg,
                      fabs=counts.fabs,
                      fcall=counts.fcall)


def _make(name, np_dtype, wire_tag, wire_fmt, rtol, atol) -> NumericPolicy:
    return NumericPolicy(name=name, dtype=np.dtype(np_dtype),
                         wire_tag=wire_tag, wire_fmt=wire_fmt,
                         rtol=rtol, atol=atol)


#: The supported policies.  ``f64``/``c128`` compare at near-bitwise
#: tolerances (batched kernels may reassociate sums); ``f32``/``c64``
#: accumulate in 24-bit significands and compare at scaled tolerances.
POLICIES: dict[str, NumericPolicy] = {
    p.name: p for p in (
        _make("f64", np.float64, 1, "<f8", 1e-9, 1e-12),
        _make("f32", np.float32, 2, "<f4", 1e-4, 1e-5),
        _make("c64", np.complex64, 3, "<c8", 1e-4, 1e-5),
        _make("c128", np.complex128, 4, "<c16", 1e-9, 1e-12),
    )
}

DEFAULT_POLICY = POLICIES["f64"]

#: the ``--dtype`` / ``compile(dtype=...)`` vocabulary, canonical first
DTYPE_CHOICES = ("f64", "f32", "c64", "c128")

_ALIASES = {
    "float32": "f32", "single": "f32",
    "float64": "f64", "double": "f64", "float": "f64",
    "complex64": "c64",
    "complex128": "c128", "complex": "c128",
}

_BY_TAG = {p.wire_tag: p for p in POLICIES.values()}


def policy_for_wire_tag(tag: int) -> NumericPolicy | None:
    """The policy a typed serve frame's tag byte names, or None."""
    return _BY_TAG.get(tag)


def resolve_policy(spec) -> NumericPolicy:
    """Resolve a user-facing dtype spec to a :class:`NumericPolicy`.

    Accepts ``None`` (the float64 default), a policy, a short name or
    NumPy-style alias string, or anything ``np.dtype`` understands
    (``np.float32``, ``"'<f4'"``...).  Unknown specs raise
    :class:`~repro.errors.CompileOptionError` listing the choices.
    """
    if spec is None:
        return DEFAULT_POLICY
    if isinstance(spec, NumericPolicy):
        return spec
    if isinstance(spec, str):
        name = spec.strip().lower()
        name = _ALIASES.get(name, name)
        if name in POLICIES:
            return POLICIES[name]
        try:
            name = np.dtype(name).name
        except TypeError:
            raise CompileOptionError("dtype", spec, DTYPE_CHOICES) from None
        name = _ALIASES.get(name, name)
        if name in POLICIES:
            return POLICIES[name]
        raise CompileOptionError("dtype", spec, DTYPE_CHOICES)
    try:
        name = np.dtype(spec).name
    except TypeError:
        raise CompileOptionError("dtype", spec, DTYPE_CHOICES) from None
    name = _ALIASES.get(name, name)
    if name in POLICIES:
        return POLICIES[name]
    raise CompileOptionError("dtype", spec, DTYPE_CHOICES)
