"""Stream graph structures and steady-state scheduling."""

from .scheduler import SteadyState, container_io, steady_state
from .streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                      PrimitiveFilter, RoundRobin, SplitJoin, Stream,
                      construct_counts, has_feedback, leaf_filters,
                      pipeline, roundrobin, walk)

__all__ = [
    "Stream", "Filter", "PrimitiveFilter", "Pipeline", "SplitJoin",
    "FeedbackLoop", "Duplicate", "RoundRobin", "roundrobin", "pipeline",
    "walk", "leaf_filters", "construct_counts", "has_feedback",
    "steady_state", "container_io", "SteadyState",
]
