"""Stream graph structures: filters, pipelines, splitjoins, feedbackloops.

These mirror StreamIt's hierarchical stream constructs (thesis §2.1,
Figure 2-1).  A *stream* is a filter, pipeline, splitjoin or feedbackloop;
every stream has exactly one input and one output tape.

Two kinds of leaf nodes exist:

* :class:`Filter` — a work function written in the C-like IR; this is what
  the linear extraction analysis consumes.
* :class:`PrimitiveFilter` — a leaf implemented directly in Python (the
  matrix-multiply filter, frequency filters, decimators, test sources and
  sinks).  These are what the optimizing transformations *produce*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from ..errors import StreamGraphError
from ..ir import nodes as N


# ---------------------------------------------------------------------------
# Splitters / joiners
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Duplicate:
    """A duplicate splitter: every input item is copied to all children."""

    def __str__(self):
        return "duplicate"


@dataclass(frozen=True)
class RoundRobin:
    """A weighted roundrobin splitter or joiner."""

    weights: tuple[int, ...]

    def __post_init__(self):
        if not self.weights or any(w < 0 for w in self.weights):
            raise StreamGraphError(f"bad roundrobin weights {self.weights}")

    @property
    def total(self) -> int:
        return sum(self.weights)

    def __str__(self):
        return f"roundrobin({', '.join(map(str, self.weights))})"


Splitter = Union[Duplicate, RoundRobin]


def roundrobin(*weights: int) -> RoundRobin:
    """Convenience constructor: ``roundrobin(2, 1)``; default weight is 1."""
    return RoundRobin(tuple(weights) if weights else (1,))


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------


class Stream:
    """Base class of all stream constructs."""

    name: str

    # Rates of one steady firing for leaves; containers aggregate via the
    # scheduler.  Leaves override.
    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError


class Filter(Stream):
    """A leaf filter defined by work-function IR.

    ``fields`` holds coefficient/state values (scalars or numpy arrays);
    ``mutable_fields`` are those assigned during ``work`` — reads of these
    are ⊤ for the linear extraction analysis (persistent state), while
    immutable fields are compile-time constants.
    """

    def __init__(self, name: str, work: N.WorkFunction,
                 prework: N.WorkFunction | None = None,
                 fields: dict | None = None,
                 mutable_fields: frozenset[str] = frozenset()):
        self.name = name
        self.work = work
        self.prework = prework
        self.fields = fields or {}
        self.mutable_fields = mutable_fields

    @property
    def peek(self) -> int:
        return self.work.peek

    @property
    def pop(self) -> int:
        return self.work.pop

    @property
    def push(self) -> int:
        return self.work.push

    def pretty(self, indent: int = 0) -> str:
        return ("  " * indent +
                f"filter {self.name} (peek {self.peek} pop {self.pop} "
                f"push {self.push})")

    def __repr__(self):
        return f"Filter({self.name})"


class PrimitiveFilter(Stream):
    """A leaf filter implemented directly in Python.

    Subclasses define ``peek``/``pop``/``push`` (steady rates), optionally
    ``init_peek``/``init_pop``/``init_push`` for a prework firing, and
    :meth:`make_runner`, which returns an object with a
    ``fire(ch_in, ch_out)`` method executing one firing.
    """

    peek: int
    pop: int
    push: int
    init_peek: int | None = None
    init_pop: int | None = None
    init_push: int | None = None

    def make_runner(self, profiler):
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        return ("  " * indent +
                f"primitive {self.name} (peek {self.peek} pop {self.pop} "
                f"push {self.push})")

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


class Pipeline(Stream):
    """Serial composition of streams."""

    def __init__(self, children: Sequence[Stream], name: str = "pipeline"):
        children = tuple(children)
        if not children:
            raise StreamGraphError("pipeline must have at least one child")
        self.children = children
        self.name = name

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + f"pipeline {self.name} {{"]
        lines += [c.pretty(indent + 1) for c in self.children]
        lines.append("  " * indent + "}")
        return "\n".join(lines)

    def __repr__(self):
        return f"Pipeline({self.name}, {len(self.children)} children)"


class SplitJoin(Stream):
    """Explicitly parallel composition: splitter, children, roundrobin joiner."""

    def __init__(self, splitter: Splitter, children: Sequence[Stream],
                 joiner: RoundRobin, name: str = "splitjoin"):
        children = tuple(children)
        if not children:
            raise StreamGraphError("splitjoin must have at least one child")
        if len(joiner.weights) != len(children):
            raise StreamGraphError(
                f"joiner has {len(joiner.weights)} weights for "
                f"{len(children)} children")
        if isinstance(splitter, RoundRobin) and \
                len(splitter.weights) != len(children):
            raise StreamGraphError(
                f"splitter has {len(splitter.weights)} weights for "
                f"{len(children)} children")
        self.splitter = splitter
        self.children = children
        self.joiner = joiner
        self.name = name

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + f"splitjoin {self.name} {{ split {self.splitter};"]
        lines += [c.pretty(indent + 1) for c in self.children]
        lines.append(pad + f"  join {self.joiner}; }}")
        return "\n".join(lines)

    def __repr__(self):
        return f"SplitJoin({self.name}, {len(self.children)} children)"


class FeedbackLoop(Stream):
    """A cycle: joiner -> body -> splitter, with ``loop`` on the back edge.

    ``joiner.weights = (w_input, w_feedback)`` and
    ``splitter.weights = (w_output, w_feedback)``; ``enqueued`` are initial
    items placed on the feedback path entering the joiner.
    """

    def __init__(self, body: Stream, loop: Stream, joiner: RoundRobin,
                 splitter: RoundRobin, enqueued: Sequence[float] = (),
                 name: str = "feedbackloop"):
        if len(joiner.weights) != 2 or len(splitter.weights) != 2:
            raise StreamGraphError(
                "feedbackloop joiner/splitter must have exactly 2 weights")
        self.body = body
        self.loop = loop
        self.joiner = joiner
        self.splitter = splitter
        self.enqueued = tuple(float(v) for v in enqueued)
        self.name = name

    @property
    def children(self) -> tuple[Stream, Stream]:
        return (self.body, self.loop)

    @property
    def delay(self) -> int:
        """Items enqueued on the feedback path before the first firing.

        This is the loop's lookahead budget: the planner can advance the
        cycle up to ``delay`` feedback items per batched pass before the
        next pass depends on values produced by the current one.
        """
        return len(self.enqueued)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + f"feedbackloop {self.name} {{ join {self.joiner};"]
        lines.append(self.body.pretty(indent + 1))
        lines.append(pad + "  loop:")
        lines.append(self.loop.pretty(indent + 1))
        lines.append(pad + f"  split {self.splitter}; "
                           f"enqueue {list(self.enqueued)}; }}")
        return "\n".join(lines)

    def __repr__(self):
        return f"FeedbackLoop({self.name})"


# ---------------------------------------------------------------------------
# Traversals / statistics
# ---------------------------------------------------------------------------


def walk(stream: Stream) -> Iterator[Stream]:
    """Yield ``stream`` and all descendants, pre-order."""
    yield stream
    if isinstance(stream, (Pipeline, SplitJoin)):
        for c in stream.children:
            yield from walk(c)
    elif isinstance(stream, FeedbackLoop):
        yield from walk(stream.body)
        yield from walk(stream.loop)


def has_feedback(stream: Stream) -> bool:
    """True if any descendant is a FeedbackLoop (flattened graph cyclic)."""
    return any(isinstance(s, FeedbackLoop) for s in walk(stream))


def leaf_filters(stream: Stream) -> list[Stream]:
    """All Filter/PrimitiveFilter leaves in the graph."""
    return [s for s in walk(stream)
            if isinstance(s, (Filter, PrimitiveFilter))]


def construct_counts(stream: Stream) -> dict[str, int]:
    """Count stream constructs by kind (for Table 5.2)."""
    counts = {"filters": 0, "pipelines": 0, "splitjoins": 0,
              "feedbackloops": 0}
    for s in walk(stream):
        if isinstance(s, (Filter, PrimitiveFilter)):
            counts["filters"] += 1
        elif isinstance(s, Pipeline):
            counts["pipelines"] += 1
        elif isinstance(s, SplitJoin):
            counts["splitjoins"] += 1
        elif isinstance(s, FeedbackLoop):
            counts["feedbackloops"] += 1
    return counts


def pipeline(*children: Stream, name: str = "pipeline") -> Pipeline:
    """Convenience constructor mirroring StreamIt's ``add`` syntax."""
    return Pipeline(children, name=name)


def clone_stream(stream: Stream) -> Stream:
    """A structurally identical copy sharing no mutable state.

    Work-function IR is immutable and shared; filter field stores (the
    mutable part — state scalars and numpy arrays) are copied.  This is
    what lets the DSL loader cache one elaborated graph and hand every
    caller a fresh instance: running one clone never perturbs another.
    """
    import copy

    if isinstance(stream, Filter):
        fields = {k: (v.copy() if hasattr(v, "copy") else v)
                  for k, v in stream.fields.items()}
        return Filter(stream.name, stream.work, stream.prework, fields,
                      stream.mutable_fields)
    if isinstance(stream, Pipeline):
        return Pipeline([clone_stream(c) for c in stream.children],
                        name=stream.name)
    if isinstance(stream, SplitJoin):
        return SplitJoin(stream.splitter,
                         [clone_stream(c) for c in stream.children],
                         stream.joiner, name=stream.name)
    if isinstance(stream, FeedbackLoop):
        return FeedbackLoop(clone_stream(stream.body),
                            clone_stream(stream.loop),
                            stream.joiner, stream.splitter,
                            stream.enqueued, name=stream.name)
    # PrimitiveFilter subclasses carry arbitrary Python state
    return copy.deepcopy(stream)
