"""Graphviz export of stream graphs.

The thesis' Appendix B shows stream graphs rendered by the StreamIt
compiler, with linear filters and linear containers highlighted.  This
module emits the same kind of figure as Graphviz ``dot`` text: filters
as boxes (blue when linear), containers as clusters (pink when the whole
container is linear), splitters/joiners as small ellipses.
"""

from __future__ import annotations

from itertools import count

from ..linear.combine import LinearityMap, analyze
from .streams import (FeedbackLoop, Filter, Pipeline, PrimitiveFilter,
                      SplitJoin, Stream)


def to_dot(stream: Stream, lmap: LinearityMap | None = None,
           title: str = "stream") -> str:
    """Render ``stream`` as Graphviz dot text (Appendix-B style)."""
    if lmap is None:
        lmap = analyze(stream)
    lines = [f'digraph "{title}" {{', "  node [shape=box];"]
    counter = count()

    def fresh(prefix: str) -> str:
        return f"{prefix}_{next(counter)}"

    def emit(s: Stream, depth: int) -> tuple[str, str]:
        """Emit nodes/edges for ``s``; return (entry, exit) node names."""
        pad = "  " * (depth + 1)
        if isinstance(s, (Filter, PrimitiveFilter)):
            name = fresh("f")
            color = ' style=filled fillcolor="lightblue"' \
                if lmap.is_linear(s) else ""
            rates = ""
            if hasattr(s, "peek"):
                rates = f"\\npeek {s.peek} pop {s.pop} push {s.push}"
            lines.append(f'{pad}{name} [label="{s.name}{rates}"{color}];')
            return name, name
        cluster = fresh("cluster")
        fill = ' style=filled color="pink"' if lmap.is_linear(s) \
            else ' color="gray"'
        lines.append(f"{pad}subgraph {cluster} {{")
        lines.append(f'{pad}  label="{s.name}";{fill.replace(" style=filled", "")}')
        if isinstance(s, Pipeline):
            first = last = None
            for child in s.children:
                entry, exit_ = emit(child, depth + 1)
                if last is not None:
                    lines.append(f"{pad}  {last} -> {entry};")
                if first is None:
                    first = entry
                last = exit_
            lines.append(f"{pad}}}")
            return first, last
        if isinstance(s, SplitJoin):
            split = fresh("split")
            join = fresh("join")
            lines.append(
                f'{pad}  {split} [label="{s.splitter}" shape=ellipse];')
            lines.append(
                f'{pad}  {join} [label="join {s.joiner}" shape=ellipse];')
            for child in s.children:
                entry, exit_ = emit(child, depth + 1)
                lines.append(f"{pad}  {split} -> {entry};")
                lines.append(f"{pad}  {exit_} -> {join};")
            lines.append(f"{pad}}}")
            return split, join
        if isinstance(s, FeedbackLoop):
            join = fresh("join")
            split = fresh("split")
            lines.append(
                f'{pad}  {join} [label="join {s.joiner}" shape=ellipse];')
            lines.append(
                f'{pad}  {split} [label="split {s.splitter}" '
                f"shape=ellipse];")
            b_in, b_out = emit(s.body, depth + 1)
            l_in, l_out = emit(s.loop, depth + 1)
            lines.append(f"{pad}  {join} -> {b_in};")
            lines.append(f"{pad}  {b_out} -> {split};")
            lines.append(f"{pad}  {split} -> {l_in} [style=dashed];")
            lines.append(
                f"{pad}  {l_out} -> {join} [style=dashed "
                f'label="enqueue {len(s.enqueued)}"];')
            lines.append(f"{pad}}}")
            return join, split
        raise TypeError(f"unknown stream {s!r}")

    emit(stream, 0)
    lines.append("}")
    return "\n".join(lines)
