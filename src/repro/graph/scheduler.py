"""Steady-state scheduling of stream graphs.

StreamIt leverages compile-time-constant I/O rates to compute a *steady
state*: an integer multiplicity for every node such that each execution of
the schedule leaves every channel's occupancy unchanged (thesis §3.3.1,
citing Karczmarek).  We solve the balance equations with exact rational
arithmetic and normalize to the smallest integer solution.

The result is used by the executor (to pace sources), by linear splitjoin
combination (``joinRep``/``rep_k``), and by the optimization selector
(``executionsPerSteadyState``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..errors import SchedulingError
from .streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                      PrimitiveFilter, RoundRobin, SplitJoin, Stream)


@dataclass
class SteadyState:
    """Steady-state rates of a stream plus per-descendant multiplicities.

    ``pop``/``push`` are the items the stream consumes/produces per steady
    execution; ``mult`` maps every descendant stream object (by identity)
    to its firings per steady execution — containers included, where a
    container's multiplicity counts executions of *its own* steady state.
    """

    pop: int
    push: int
    mult: dict[int, int]
    streams: dict[int, Stream]

    def multiplicity(self, stream: Stream) -> int:
        return self.mult[id(stream)]


def _leaf_rates(stream) -> tuple[int, int]:
    if isinstance(stream, Filter):
        return stream.pop, stream.push
    if isinstance(stream, PrimitiveFilter):
        return stream.pop, stream.push
    raise TypeError(stream)


def _lcm(values):
    out = 1
    for v in values:
        out = out * v // math.gcd(out, v)
    return out


def _normalize(fracs: list[Fraction]) -> list[int]:
    """Scale positive rationals to the smallest integer vector."""
    denom = _lcm([f.denominator for f in fracs])
    ints = [int(f * denom) for f in fracs]
    g = 0
    for v in ints:
        g = math.gcd(g, v)
    if g > 1:
        ints = [v // g for v in ints]
    return ints


def _solve(stream: Stream) -> tuple[Fraction, Fraction, dict[int, Fraction],
                                    dict[int, Stream]]:
    """Return (pop, push, relative multiplicities, stream registry)."""
    if isinstance(stream, (Filter, PrimitiveFilter)):
        o, u = _leaf_rates(stream)
        return (Fraction(o), Fraction(u), {id(stream): Fraction(1)},
                {id(stream): stream})

    if isinstance(stream, Pipeline):
        mult: dict[int, Fraction] = {}
        registry: dict[int, Stream] = {id(stream): stream}
        child_io = []
        for child in stream.children:
            o, u, m, reg = _solve(child)
            child_io.append((child, o, u, m))
            registry.update(reg)
        # chain multiplicities: m_i * u_i == m_{i+1} * o_{i+1}
        m_cur = Fraction(1)
        scales = []
        for i, (child, o, u, m) in enumerate(child_io):
            if i > 0:
                prev_u = child_io[i - 1][2] * scales[-1]
                if o == 0:
                    raise SchedulingError(
                        f"{child.name} consumes nothing mid-pipeline")
                m_cur = prev_u / o
            scales.append(m_cur)
        for (child, o, u, m), scale in zip(child_io, scales):
            for k, v in m.items():
                mult[k] = v * scale
            mult[id(child)] = mult.get(id(child), scale)
        mult[id(stream)] = Fraction(1)
        pop = child_io[0][1] * scales[0]
        push = child_io[-1][2] * scales[-1]
        return pop, push, mult, registry

    if isinstance(stream, SplitJoin):
        mult: dict[int, Fraction] = {}
        registry: dict[int, Stream] = {id(stream): stream}
        solved = []
        for child in stream.children:
            o, u, m, reg = _solve(child)
            solved.append((child, o, u, m))
            registry.update(reg)
        w = stream.joiner.weights
        # joiner constraint: scale_k * u_k == w_k * joinRep ; set joinRep = 1
        scales = []
        for (child, o, u, m), wk in zip(solved, w):
            if u == 0:
                raise SchedulingError(
                    f"splitjoin child {child.name} pushes nothing")
            scales.append(Fraction(wk) / u)
        # splitter consistency
        if isinstance(stream.splitter, Duplicate):
            pops = {scale * o for (child, o, u, m), scale in
                    zip(solved, scales) if o != 0}
            if len(pops) > 1:
                raise SchedulingError(
                    f"splitjoin {stream.name}: duplicate splitter children "
                    f"consume at different rates {sorted(pops)}")
            pop = pops.pop() if pops else Fraction(0)
        else:
            v = stream.splitter.weights
            split_reps = {scale * o / vk
                          for (child, o, u, m), scale, vk in
                          zip(solved, scales, v) if vk != 0}
            if len(split_reps) > 1:
                raise SchedulingError(
                    f"splitjoin {stream.name}: roundrobin splitter rates "
                    f"are inconsistent")
            split_rep = split_reps.pop() if split_reps else Fraction(0)
            pop = split_rep * sum(v)
        push = Fraction(sum(w))  # joinRep == 1
        for (child, o, u, m), scale in zip(solved, scales):
            for k, val in m.items():
                mult[k] = val * scale
            mult[id(child)] = mult.get(id(child), scale)
        mult[id(stream)] = Fraction(1)
        return pop, push, mult, registry

    if isinstance(stream, FeedbackLoop):
        ob, ub, mb, regb = _solve(stream.body)
        ol, ul, ml, regl = _solve(stream.loop)
        w_in, w_fb = stream.joiner.weights
        w_out, w_fb2 = stream.splitter.weights
        body_scale = Fraction(1)
        join_rep = body_scale * ob / (w_in + w_fb)
        split_rep = body_scale * ub / (w_out + w_fb2)
        if ol == 0 or ul == 0:
            raise SchedulingError("feedback loop stream must pass data")
        loop_scale = split_rep * w_fb2 / ol
        if loop_scale * ul != join_rep * w_fb:
            raise SchedulingError(
                f"feedbackloop {stream.name}: loop path rates inconsistent")
        mult = {}
        registry = {id(stream): stream}
        registry.update(regb)
        registry.update(regl)
        for k, v in mb.items():
            mult[k] = v * body_scale
        for k, v in ml.items():
            mult[k] = v * loop_scale
        mult[id(stream.body)] = mult.get(id(stream.body), body_scale)
        mult[id(stream.loop)] = mult.get(id(stream.loop), loop_scale)
        mult[id(stream)] = Fraction(1)
        return join_rep * w_in, split_rep * w_out, mult, registry

    raise TypeError(f"cannot schedule {stream!r}")


def steady_state(stream: Stream) -> SteadyState:
    """Compute the minimal integer steady-state schedule of ``stream``."""
    pop, push, mult, registry = _solve(stream)
    keys = list(mult)
    values = [mult[k] for k in keys]
    # include I/O rates in the normalization so they stay integral
    extra = [v for v in (pop, push) if v != 0]
    ints = _normalize(values + extra)
    # Rescale against any *nonzero* entry: a zero multiplicity (e.g. a
    # zero-weight roundrobin branch solved first) carries no scale
    # information, and dividing by it used to silently truncate every
    # fractional multiplicity to 0.
    scale = Fraction(1)
    for i, v in enumerate(values):
        if v != 0:
            scale = Fraction(ints[i], 1) / v
            break
    out = {}
    for k, v in mult.items():
        scaled = v * scale
        if scaled.denominator != 1:
            raise SchedulingError(
                f"steady state of {stream.name} is not integral: "
                f"{registry[k].name} would fire {scaled} times")
        out[k] = int(scaled)
    for v, what in ((pop * scale, "pop"), (push * scale, "push")):
        if v.denominator != 1:
            raise SchedulingError(
                f"steady state of {stream.name} has fractional {what} {v}")
    return SteadyState(pop=int(pop * scale), push=int(push * scale),
                       mult=out, streams=registry)


def container_io(stream: Stream) -> tuple[int, int]:
    """(pop, push) of one steady execution of ``stream``."""
    ss = steady_state(stream)
    return ss.pop, ss.push
