"""Floating-point operation accounting.

The thesis measures optimizations by counting IA-32 floating-point
instructions with a DynamoRIO client (Table 5.1) and separately counting the
multiplication family (fmul/fdiv...).  We reproduce that measurement with an
explicit profiler: the IR interpreter and the compiled filter kernels report
every float add/sub/mul/div/compare/negate/abs and every libm call into the
active :class:`Profiler`.

Vectorized kernels (matrix multiply, FFT) report analytic counts equal to
the operations the corresponding scalar loop nest would execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Categories of float operations tracked, mirroring Table 5.1 groupings.
CATEGORIES = ("fadd", "fsub", "fmul", "fdiv", "fcmp", "fneg", "fabs", "fcall")


@dataclass
class Counts:
    """A bag of per-category float-op counters."""

    fadd: int = 0
    fsub: int = 0
    fmul: int = 0
    fdiv: int = 0
    fcmp: int = 0
    fneg: int = 0
    fabs: int = 0
    fcall: int = 0

    @property
    def flops(self) -> int:
        """Total floating-point operations (the paper's FLOPS metric)."""
        return (self.fadd + self.fsub + self.fmul + self.fdiv + self.fcmp
                + self.fneg + self.fabs + self.fcall)

    @property
    def mults(self) -> int:
        """Multiplication instructions (fmul + fdiv families, per §5.1)."""
        return self.fmul + self.fdiv

    def add(self, other: "Counts") -> None:
        for c in CATEGORIES:
            setattr(self, c, getattr(self, c) + getattr(other, c))

    def scaled(self, k: int) -> "Counts":
        return Counts(**{c: getattr(self, c) * k for c in CATEGORIES})

    def copy(self) -> "Counts":
        return Counts(**{c: getattr(self, c) for c in CATEGORIES})

    def __sub__(self, other: "Counts") -> "Counts":
        return Counts(**{c: getattr(self, c) - getattr(other, c)
                         for c in CATEGORIES})


@dataclass
class Profiler:
    """Accumulates float-op counts; optionally also per-filter counts."""

    counts: Counts = field(default_factory=Counts)
    per_filter: dict = field(default_factory=dict)

    # scalar-op entry points (hot path of the tree interpreter) -----------
    def op(self, category: str, n: int = 1) -> None:
        setattr(self.counts, category, getattr(self.counts, category) + n)

    def bulk(self, fadd=0, fsub=0, fmul=0, fdiv=0, fcmp=0, fneg=0,
             fabs=0, fcall=0) -> None:
        c = self.counts
        c.fadd += fadd
        c.fsub += fsub
        c.fmul += fmul
        c.fdiv += fdiv
        c.fcmp += fcmp
        c.fneg += fneg
        c.fabs += fabs
        c.fcall += fcall

    def add_counts(self, counts: Counts, times: int = 1,
                   filter_name: str | None = None) -> None:
        self.counts.add(counts if times == 1 else counts.scaled(times))
        if filter_name is not None:
            bucket = self.per_filter.setdefault(filter_name, Counts())
            bucket.add(counts if times == 1 else counts.scaled(times))

    @property
    def flops(self) -> int:
        return self.counts.flops

    @property
    def mults(self) -> int:
        return self.counts.mults


class NullProfiler(Profiler):
    """Profiler that discards everything (used for pure-speed runs)."""

    def op(self, category: str, n: int = 1) -> None:  # pragma: no cover
        pass

    def bulk(self, **kw) -> None:
        pass

    def add_counts(self, counts, times=1, filter_name=None) -> None:
        pass
