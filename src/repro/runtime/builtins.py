"""Built-in primitive filters: test sources, sinks, and identity.

These are :class:`~repro.graph.streams.PrimitiveFilter` leaves used by the
executor's convenience entry points and by benchmark top-levels.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterable

import numpy as np

from ..graph.streams import PrimitiveFilter


class ListSource(PrimitiveFilter):
    """Pushes values from a finite list, one per firing."""

    pop = 0
    peek = 0
    push = 1

    def __init__(self, values: Iterable[float], name: str = "ListSource"):
        self.values = [float(v) for v in values]
        self.name = name

    def make_runner(self, profiler):
        values = self.values
        pos = count()

        class _Runner:
            exhausted = False

            def fire(self, ch_in, ch_out):
                i = next(pos)
                if i >= len(values):
                    self.exhausted = True
                    raise IndexError("ListSource exhausted")
                ch_out.push(values[i])

            def can_fire_extra(self):
                return next(iter([next(pos)])) < len(values)  # pragma: no cover

        runner = _Runner()
        runner.remaining = lambda: len(values)
        return runner


class ChunkSource(PrimitiveFilter):
    """Pushes values fed incrementally as ndarray chunks.

    The input side of a :class:`~repro.session.StreamSession` push
    harness: ``feed`` appends a chunk to the internal ring, firings
    consume it one item at a time (scalar backends) or in blocks
    (:class:`~repro.exec.kernels.ChunkSourceStep`).  Like
    :class:`ListSource`, running dry raises ``IndexError`` from the
    scalar runner, which the executor treats as "finite source
    exhausted"; the plan backend models the same bound through the rate
    simulator's ``remaining`` counter.

    Because the ring is consumed in place, a graph containing a
    ChunkSource is fingerprinted *single-use* by the plan cache: the
    compiled session amortizes its own plan, but content-identical
    rebuilds never share it.
    """

    pop = 0
    peek = 0
    push = 1

    def __init__(self, name: str = "ChunkSource", dtype=np.float64):
        from ..exec.ring import RingBuffer  # deferred: exec imports us
        self.dtype = np.dtype(dtype)
        self.buffer = RingBuffer(f"{name}.buffer", dtype=self.dtype)
        self.fed = 0  #: total items ever fed
        self.name = name

    def feed(self, values) -> int:
        """Append a chunk; returns the number of items added.

        Accepts numeric data castable to the session dtype: float/int/
        bool arrays or sequences (plus complex for complex policies);
        string, object, and other dtypes — and complex data pushed into
        a real-dtype session — raise
        :class:`~repro.errors.ChunkDtypeError` instead of whatever
        ``np.asarray`` would.
        """
        from ..errors import ChunkDtypeError

        arr = np.asarray(values)
        kinds = "fiubc" if self.dtype.kind == "c" else "fiub"
        if arr.dtype.kind not in kinds:
            raise ChunkDtypeError(arr.dtype, complex_ok=self.dtype.kind == "c")
        arr = arr.astype(self.dtype, copy=False).ravel()
        self.buffer.push_array(arr)
        self.fed += len(arr)
        return len(arr)

    @property
    def available(self) -> int:
        """Items fed but not yet consumed by firings."""
        return len(self.buffer)

    @property
    def consumed(self) -> int:
        """Items the graph has actually consumed so far."""
        return self.fed - len(self.buffer)

    def clear(self) -> None:
        """Drop unconsumed items and reset the fed counter."""
        self.buffer.pop_block(len(self.buffer))
        self.fed = 0

    def make_runner(self, profiler):
        buffer = self.buffer

        class _Runner:
            def fire(self, ch_in, ch_out):
                if not len(buffer):
                    raise IndexError("ChunkSource exhausted")
                ch_out.push(buffer.pop())

        return _Runner()


class FunctionSource(PrimitiveFilter):
    """Pushes ``fn(n)`` for n = 0, 1, 2, ... — an unbounded source."""

    pop = 0
    peek = 0
    push = 1

    def __init__(self, fn: Callable[[int], float], name: str = "Source"):
        self.fn = fn
        self.name = name

    def make_runner(self, profiler):
        fn = self.fn
        counter = count()

        class _Runner:
            def fire(self, ch_in, ch_out):
                ch_out.push(float(fn(next(counter))))

        return _Runner()


class Collector(PrimitiveFilter):
    """Terminal sink: pops one item per firing into ``collected``.

    The executor looks for a Collector to decide when ``n_outputs`` have
    been produced.
    """

    pop = 1
    peek = 1
    push = 0

    def __init__(self, name: str = "Collector"):
        self.name = name

    def make_runner(self, profiler):
        class _Runner:
            def __init__(self):
                self.collected: list[float] = []

            def fire(self, ch_in, ch_out):
                self.collected.append(ch_in.pop())

        return _Runner()


class ArrayCollector(Collector):
    """Terminal sink collecting into a growable float64 ndarray.

    Drop-in :class:`Collector` replacement (the executors detect it via
    the subclass) whose runner accumulates a
    :class:`~repro.runtime.channels.FloatVec` instead of a Python list,
    so batched kernels append whole blocks without boxing and session
    readers slice outputs out as ``np.ndarray``.
    """

    def __init__(self, name: str = "ArrayCollector", dtype=np.float64):
        self.name = name
        self.dtype = np.dtype(dtype)

    def make_runner(self, profiler):
        from .channels import FloatVec
        dtype = self.dtype

        class _Runner:
            def __init__(self):
                self.collected = FloatVec(dtype=dtype)

            def fire(self, ch_in, ch_out):
                self.collected.append(ch_in.pop())

        return _Runner()


class Identity(PrimitiveFilter):
    """Passes items through unchanged (StreamIt's Identity filter)."""

    pop = 1
    peek = 1
    push = 1

    def __init__(self, name: str = "Identity"):
        self.name = name

    def make_runner(self, profiler):
        class _Runner:
            def fire(self, ch_in, ch_out):
                ch_out.push(ch_in.pop())

        return _Runner()
