"""Built-in primitive filters: test sources, sinks, and identity.

These are :class:`~repro.graph.streams.PrimitiveFilter` leaves used by the
executor's convenience entry points and by benchmark top-levels.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterable

from ..graph.streams import PrimitiveFilter


class ListSource(PrimitiveFilter):
    """Pushes values from a finite list, one per firing."""

    pop = 0
    peek = 0
    push = 1

    def __init__(self, values: Iterable[float], name: str = "ListSource"):
        self.values = [float(v) for v in values]
        self.name = name

    def make_runner(self, profiler):
        values = self.values
        pos = count()

        class _Runner:
            exhausted = False

            def fire(self, ch_in, ch_out):
                i = next(pos)
                if i >= len(values):
                    self.exhausted = True
                    raise IndexError("ListSource exhausted")
                ch_out.push(values[i])

            def can_fire_extra(self):
                return next(iter([next(pos)])) < len(values)  # pragma: no cover

        runner = _Runner()
        runner.remaining = lambda: len(values)
        return runner


class FunctionSource(PrimitiveFilter):
    """Pushes ``fn(n)`` for n = 0, 1, 2, ... — an unbounded source."""

    pop = 0
    peek = 0
    push = 1

    def __init__(self, fn: Callable[[int], float], name: str = "Source"):
        self.fn = fn
        self.name = name

    def make_runner(self, profiler):
        fn = self.fn
        counter = count()

        class _Runner:
            def fire(self, ch_in, ch_out):
                ch_out.push(float(fn(next(counter))))

        return _Runner()


class Collector(PrimitiveFilter):
    """Terminal sink: pops one item per firing into ``collected``.

    The executor looks for a Collector to decide when ``n_outputs`` have
    been produced.
    """

    pop = 1
    peek = 1
    push = 0

    def __init__(self, name: str = "Collector"):
        self.name = name

    def make_runner(self, profiler):
        class _Runner:
            def __init__(self):
                self.collected: list[float] = []

            def fire(self, ch_in, ch_out):
                self.collected.append(ch_in.pop())

        return _Runner()


class Identity(PrimitiveFilter):
    """Passes items through unchanged (StreamIt's Identity filter)."""

    pop = 1
    peek = 1
    push = 1

    def __init__(self, name: str = "Identity"):
        self.name = name

    def make_runner(self, profiler):
        class _Runner:
            def fire(self, ch_in, ch_out):
                ch_out.push(ch_in.pop())

        return _Runner()
