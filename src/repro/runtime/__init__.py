"""Execution engine: channels, flattening executor, FLOP profiler."""

from .builtins import (ArrayCollector, ChunkSource, Collector,
                       FunctionSource, Identity, ListSource)
from .channels import Channel, FloatVec
from .executor import (FlatGraph, count_ops, run_graph, run_stream,
                       sanity_check_schedulable)
from ..profiling import Counts, NullProfiler, Profiler

__all__ = [
    "Channel", "FloatVec", "FlatGraph", "run_graph", "run_stream",
    "count_ops", "sanity_check_schedulable", "Profiler", "NullProfiler",
    "Counts", "ListSource", "FunctionSource", "Collector", "Identity",
    "ChunkSource", "ArrayCollector",
]
