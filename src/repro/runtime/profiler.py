"""Compatibility shim: the profiler lives in :mod:`repro.profiling`.

It is a standalone top-level module to keep the import graph acyclic
(IR interpreter -> profiler, runtime package -> graph -> IR).
"""

from ..profiling import CATEGORIES, Counts, NullProfiler, Profiler

__all__ = ["Profiler", "NullProfiler", "Counts", "CATEGORIES"]
