"""FIFO channels (tapes) connecting stream nodes.

A channel supports the three StreamIt tape primitives — ``peek(i)``,
``pop()``, ``push(v)`` — plus block variants used by the vectorized
(matrix/FFT) kernels and the plan backend.  Storage is a Python list with
a head index; the dead prefix left by pops is reclaimed whenever it grows
past half of the backing list, so compaction cost is proportional to the
*live* buffer contents and amortized O(1) per popped item regardless of
how large the channel gets.

The plan backend's :class:`~repro.exec.ring.RingBuffer` implements the
same interface over a preallocated ndarray.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpError

#: Compact only once at least this many items are dead, so tiny channels
#: are not rewritten on every pop.
_MIN_COMPACT = 64


class Channel:
    """A FIFO of floats with peeking."""

    __slots__ = ("_buf", "_head", "name")

    def __init__(self, name: str = ""):
        self._buf: list[float] = []
        self._head = 0
        self.name = name

    def __len__(self) -> int:
        return len(self._buf) - self._head

    def _maybe_compact(self) -> None:
        """Reclaim the popped prefix once it dominates the backing list."""
        head = self._head
        if head >= _MIN_COMPACT and head * 2 >= len(self._buf):
            del self._buf[:head]
            self._head = 0

    # tape primitives ---------------------------------------------------
    def push(self, value: float) -> None:
        self._buf.append(value)

    def pop(self) -> float:
        if self._head >= len(self._buf):
            raise InterpError(f"pop from empty channel {self.name!r}")
        v = self._buf[self._head]
        self._head += 1
        self._maybe_compact()
        return v

    def peek(self, index: int) -> float:
        i = self._head + index
        if index < 0 or i >= len(self._buf):
            raise InterpError(
                f"peek({index}) beyond channel {self.name!r} "
                f"(holds {len(self)})")
        return self._buf[i]

    # block operations for vectorized kernels ---------------------------
    def peek_block(self, n: int) -> np.ndarray:
        """First ``n`` items as an ndarray, without consuming."""
        if len(self) < n:
            raise InterpError(
                f"peek_block({n}) beyond channel {self.name!r} "
                f"(holds {len(self)})")
        return np.asarray(self._buf[self._head:self._head + n])

    def pop_block(self, n: int) -> None:
        """Discard the first ``n`` items."""
        if len(self) < n:
            raise InterpError(f"pop_block({n}) from channel {self.name!r}")
        self._head += n
        self._maybe_compact()

    def pop_block_array(self, n: int) -> np.ndarray:
        """Consume and return the first ``n`` items as an ndarray."""
        if len(self) < n:
            raise InterpError(
                f"pop_block_array({n}) from channel {self.name!r}")
        out = np.asarray(self._buf[self._head:self._head + n])
        self._head += n
        self._maybe_compact()
        return out

    def push_block(self, values) -> None:
        """Append a block; accepts ndarrays (fast path) or any iterable."""
        if isinstance(values, np.ndarray):
            self._buf.extend(values.tolist())
        else:
            self._buf.extend(float(v) for v in values)

    def push_array(self, values: np.ndarray) -> None:
        self._buf.extend(values.tolist())

    def snapshot(self) -> list[float]:
        """Current contents (for debugging/tests)."""
        return list(self._buf[self._head:])


class FloatVec:
    """A growable numeric vector (float64 by default) with list-like
    collection methods.

    The ndarray-native sink used by
    :class:`~repro.runtime.builtins.ArrayCollector` and the session
    wrappers: scalar runners ``append`` one value per firing, batched
    kernels ``extend_array`` whole blocks without boxing through Python
    floats, and readers slice out ``np.ndarray`` views by position.  It
    supports exactly the surface the executors use on a collector's
    ``collected`` list (``len``, ``append``, ``extend``, slicing), so it
    drops into either sink unchanged.
    """

    __slots__ = ("_buf", "_len", "dtype")

    def __init__(self, capacity: int = 64, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        self._buf = np.empty(max(capacity, 1), dtype=self.dtype)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _reserve(self, n: int) -> None:
        need = self._len + n
        cap = len(self._buf)
        if need > cap:
            while cap < need:
                cap *= 2
            new = np.empty(cap, dtype=self.dtype)
            new[:self._len] = self._buf[:self._len]
            self._buf = new

    def append(self, value: float) -> None:
        self._reserve(1)
        self._buf[self._len] = value
        self._len += 1

    def extend(self, values) -> None:
        if isinstance(values, np.ndarray):
            self.extend_array(values)
            return
        cast = complex if self.dtype.kind == "c" else float
        for v in values:
            self.append(cast(v))

    def extend_array(self, values: np.ndarray) -> None:
        """Block append — the fast path batched kernels use."""
        n = len(values)
        self._reserve(n)
        self._buf[self._len:self._len + n] = values
        self._len += n

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._len)
            return self._buf[start:stop:step].copy()
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError(index)
        return self._buf[index].item()

    def array(self) -> np.ndarray:
        """The collected values as one ndarray (copy)."""
        return self._buf[:self._len].copy()
