"""FIFO channels (tapes) connecting stream nodes.

A channel supports the three StreamIt tape primitives — ``peek(i)``,
``pop()``, ``push(v)`` — plus block variants used by the vectorized
(matrix/FFT) kernels.  Storage is a Python list with a head index that is
compacted periodically, giving amortized O(1) operations without deque's
lack of random access.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpError

_COMPACT_THRESHOLD = 4096


class Channel:
    """A FIFO of floats with peeking."""

    __slots__ = ("_buf", "_head", "name")

    def __init__(self, name: str = ""):
        self._buf: list[float] = []
        self._head = 0
        self.name = name

    def __len__(self) -> int:
        return len(self._buf) - self._head

    # tape primitives ---------------------------------------------------
    def push(self, value: float) -> None:
        self._buf.append(value)

    def pop(self) -> float:
        if self._head >= len(self._buf):
            raise InterpError(f"pop from empty channel {self.name!r}")
        v = self._buf[self._head]
        self._head += 1
        if self._head >= _COMPACT_THRESHOLD:
            del self._buf[:self._head]
            self._head = 0
        return v

    def peek(self, index: int) -> float:
        i = self._head + index
        if index < 0 or i >= len(self._buf):
            raise InterpError(
                f"peek({index}) beyond channel {self.name!r} "
                f"(holds {len(self)})")
        return self._buf[i]

    # block operations for vectorized kernels ---------------------------
    def peek_block(self, n: int) -> np.ndarray:
        """First ``n`` items as an ndarray, without consuming."""
        if len(self) < n:
            raise InterpError(
                f"peek_block({n}) beyond channel {self.name!r} "
                f"(holds {len(self)})")
        return np.asarray(self._buf[self._head:self._head + n])

    def pop_block(self, n: int) -> None:
        """Discard the first ``n`` items."""
        if len(self) < n:
            raise InterpError(f"pop_block({n}) from channel {self.name!r}")
        self._head += n
        if self._head >= _COMPACT_THRESHOLD:
            del self._buf[:self._head]
            self._head = 0

    def push_block(self, values) -> None:
        self._buf.extend(float(v) for v in values)

    def push_array(self, values: np.ndarray) -> None:
        self._buf.extend(values.tolist())

    def snapshot(self) -> list[float]:
        """Current contents (for debugging/tests)."""
        return list(self._buf[self._head:])
