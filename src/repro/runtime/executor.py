"""Data-driven execution of stream graphs.

Reproduces the StreamIt uniprocessor backend + runtime library: the
hierarchical graph is flattened into leaf nodes (filters, splitters,
joiners) connected by FIFO channels, then fired data-driven in passes until
the requested number of outputs has been collected at the sink.

Three execution backends exist:

* ``interp``  — the reference tree-walking interpreter (exact per-op
  FLOP accounting),
* ``compiled`` — generated Python (the default; static per-block FLOP
  accounting; ~50x faster),
* ``plan``    — the vectorized steady-state engine (:mod:`repro.exec`):
  batches many firings per node, running linear filters as NumPy matrix
  products over ndarray ring buffers.  Output values (to 1e-9) and FLOP
  counts are identical to the scalar backends; feedback loops run as
  batched *islands* (value-identical; tail-of-run firing counts may
  differ by one loop iteration), and the rare graphs the planner cannot
  batch at all (unknown primitive sources, unprobeable cycles) silently
  fall back to ``compiled``.

All execution state lives in channels and runners, and the drive loop
is reentrant (:meth:`FlatGraph.advance` / :meth:`~FlatGraph.
drain_available`), so a :class:`repro.session.StreamSession` can pause
and resume the same graph indefinitely; ``run_graph``/``run_stream``
are one-shot wrappers over a session.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..errors import InterpError, StreamGraphError
from ..graph.scheduler import steady_state
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             PrimitiveFilter, RoundRobin, SplitJoin, Stream)
from ..ir.interp import Interpreter
from ..ir.pycodegen import compile_work
from .builtins import Collector, ListSource
from .channels import Channel
from ..profiling import NullProfiler, Profiler

_MAX_PASSES_WITHOUT_PROGRESS = 2


class _IRRunner:
    """Executes an IR filter: prework once (if any), then work."""

    def __init__(self, filt: Filter, profiler: Profiler, backend: str):
        self.filt = filt
        self.profiler = profiler
        # fields are copied so a graph can be executed repeatedly
        self.fields = {
            k: (v.copy() if isinstance(v, np.ndarray) else v)
            for k, v in filt.fields.items()
        }
        self.fired_init = filt.prework is None
        if backend == "interp":
            interp = Interpreter(self.fields, profiler)
            self._run_work = lambda wf, ci, co: interp.run(wf, ci, co)
        elif backend == "compiled":
            self._compiled = {}
            self._run_work = self._run_compiled
        else:
            raise ValueError(f"unknown backend {backend!r}")

    def _run_compiled(self, wf, ch_in, ch_out):
        fn = self._compiled.get(id(wf))
        if fn is None:
            fn = compile_work(wf, self.fields, self.filt.name)
            self._compiled[id(wf)] = fn
        fn(ch_in.peek, ch_in.pop, ch_out.push, self.fields,
           self.profiler.bulk)

    def current_work(self):
        return self.filt.prework if not self.fired_init else self.filt.work

    def fire(self, ch_in, ch_out):
        wf = self.current_work()
        self._run_work(wf, ch_in, ch_out)
        self.fired_init = True


@dataclass
class _Node:
    """A flattened execution node."""

    name: str
    kind: str  # 'filter' | 'primitive' | 'splitter' | 'joiner'
    inputs: list[Channel] = field(default_factory=list)
    outputs: list[Channel] = field(default_factory=list)
    runner: object = None
    stream: object = None
    splitter: object = None  # Duplicate | RoundRobin for splitters
    joiner: object = None  # RoundRobin for joiners
    prim_fired_init: bool = False

    # ------------------------------------------------------------------
    def required_inputs(self) -> list[int]:
        """Items needed on each input channel to fire once."""
        if self.kind == "filter":
            wf = self.runner.current_work()
            return [wf.peek]
        if self.kind == "primitive":
            s = self.stream
            if s.init_peek is not None and not self.prim_fired_init:
                return [s.init_peek]
            return [s.peek]
        if self.kind == "splitter":
            if isinstance(self.splitter, Duplicate):
                return [1]
            return [self.splitter.total]
        # joiner
        return list(self.joiner.weights)

    def can_fire(self) -> bool:
        return all(len(ch) >= need
                   for ch, need in zip(self.inputs, self.required_inputs()))

    def fire(self, profiler: Profiler) -> None:
        if self.kind in ("filter", "primitive"):
            ch_in = self.inputs[0] if self.inputs else _NULL_CHANNEL
            ch_out = self.outputs[0] if self.outputs else _NULL_CHANNEL
            self.runner.fire(ch_in, ch_out)
            self.prim_fired_init = True
        elif self.kind == "splitter":
            src = self.inputs[0]
            if isinstance(self.splitter, Duplicate):
                v = src.pop()
                for out in self.outputs:
                    out.push(v)
            else:
                for out, w in zip(self.outputs, self.splitter.weights):
                    for _ in range(w):
                        out.push(src.pop())
        else:  # joiner
            out = self.outputs[0]
            for ch, w in zip(self.inputs, self.joiner.weights):
                for _ in range(w):
                    out.push(ch.pop())


class _NullChannelType(Channel):
    """Channel for unused endpoints (void input of sources, etc.)."""

    def push(self, v):
        raise InterpError("push on void tape")

    def pop(self):
        raise InterpError("pop on void tape")

    def peek(self, i):
        raise InterpError("peek on void tape")


_NULL_CHANNEL = _NullChannelType("void")


@dataclass
class FeedbackRegion:
    """The contiguous ``nodes[start:stop]`` slice one FeedbackLoop
    flattened into: joiner, body nodes, splitter, loop-path nodes.

    The slice is what the plan backend turns into a feedback *island*;
    everything the cycle touches (including nested loops) lives inside
    it, so the rest of the flattened graph stays acyclic.
    """

    stream: FeedbackLoop
    start: int
    stop: int


class FlatGraph:
    """A flattened stream graph ready for execution."""

    def __init__(self, stream: Stream, profiler: Profiler | None = None,
                 backend: str = "compiled"):
        self.stream = stream
        self.profiler = profiler if profiler is not None else NullProfiler()
        self.backend = backend
        self.nodes: list[_Node] = []
        #: outermost FeedbackLoop slices, in flattening order
        self.feedback_regions: list[FeedbackRegion] = []
        self._feedback_depth = 0
        self._channel_counter = 0
        self.input_channel = Channel("graph-in")
        self.output_channel = Channel("graph-out")
        out = self._flatten(stream, self.input_channel)
        # replace dangling output with the graph output channel
        if out is not None:
            for node in self.nodes:
                node.outputs = [self.output_channel if ch is out else ch
                                for ch in node.outputs]
        self.collectors = [n for n in self.nodes
                           if isinstance(n.stream, Collector)]
        self._sources = [n for n in self.nodes if not n.inputs]
        # resumable-drive state (see advance/drain_available)
        self._returned = 0  # outputs handed out past runs
        self._out_popped = 0  # items popped off the graph output channel
        self._passes = 0

    # ------------------------------------------------------------------
    def _new_channel(self) -> Channel:
        self._channel_counter += 1
        return Channel(f"ch{self._channel_counter}")

    def _flatten(self, stream: Stream, ch_in: Channel) -> Channel | None:
        """Wire ``stream`` reading from ``ch_in``; return its output channel."""
        if isinstance(stream, Filter):
            node = _Node(name=stream.name, kind="filter", stream=stream,
                         runner=_IRRunner(stream, self.profiler, self.backend))
            node.inputs = [ch_in] if stream.pop or stream.peek else []
            out = self._new_channel() if stream.push or (
                stream.prework and stream.prework.push) else None
            if out is not None:
                node.outputs = [out]
            self.nodes.append(node)
            return out
        if isinstance(stream, PrimitiveFilter):
            node = _Node(name=stream.name, kind="primitive", stream=stream,
                         runner=stream.make_runner(self.profiler))
            needs_in = stream.peek or stream.pop or (
                stream.init_peek or stream.init_pop)
            node.inputs = [ch_in] if needs_in else []
            out = self._new_channel() if stream.push or (
                stream.init_push) else None
            if out is not None:
                node.outputs = [out]
            self.nodes.append(node)
            return out
        if isinstance(stream, Pipeline):
            cur = ch_in
            for child in stream.children:
                cur = self._flatten(child, cur)
            return cur
        if isinstance(stream, SplitJoin):
            split_node = _Node(name=f"{stream.name}.split", kind="splitter",
                               splitter=stream.splitter, inputs=[ch_in])
            self.nodes.append(split_node)
            branch_outs = []
            for child in stream.children:
                branch_in = self._new_channel()
                split_node.outputs.append(branch_in)
                branch_outs.append(self._flatten(child, branch_in))
            join_node = _Node(name=f"{stream.name}.join", kind="joiner",
                              joiner=stream.joiner)
            join_node.inputs = branch_outs
            out = self._new_channel()
            join_node.outputs = [out]
            self.nodes.append(join_node)
            return out
        if isinstance(stream, FeedbackLoop):
            start = len(self.nodes)
            self._feedback_depth += 1
            loop_to_join = self._new_channel()
            for v in stream.enqueued:
                loop_to_join.push(v)
            join_node = _Node(name=f"{stream.name}.join", kind="joiner",
                              joiner=stream.joiner,
                              inputs=[ch_in, loop_to_join])
            body_in = self._new_channel()
            join_node.outputs = [body_in]
            self.nodes.append(join_node)
            body_out = self._flatten(stream.body, body_in)
            split_node = _Node(name=f"{stream.name}.split", kind="splitter",
                               splitter=stream.splitter, inputs=[body_out])
            out = self._new_channel()
            split_to_loop = self._new_channel()
            split_node.outputs = [out, split_to_loop]
            self.nodes.append(split_node)
            loop_out = self._flatten(stream.loop, split_to_loop)
            # feed the loop stream's output back into the joiner
            for node in self.nodes:
                node.outputs = [loop_to_join if ch is loop_out else ch
                                for ch in node.outputs]
            self._feedback_depth -= 1
            if self._feedback_depth == 0:
                self.feedback_regions.append(
                    FeedbackRegion(stream, start, len(self.nodes)))
            return out
        raise TypeError(f"cannot flatten {stream!r}")

    # -- reentrant drive loop ------------------------------------------
    #
    # The drain loop is split so a StreamSession can advance the same
    # graph repeatedly: all execution state lives in channels and
    # runners, and the loop structure is drain-first (a no-op on a cold
    # graph, so one-shot firing counts are unchanged) — which is what
    # makes ``advance(k1); advance(k2)`` fire exactly the same nodes as
    # a single run to ``k1 + k2``.

    def produced(self) -> int:
        """Total sink outputs since construction (including consumed)."""
        if self.collectors:
            return len(self.collectors[0].runner.collected)
        return self._out_popped + len(self.output_channel)

    def _drain(self, target: float) -> None:
        """Fire consumers until quiescent, transcribed from the original
        inner loop: once the sink reaches ``target``, each remaining
        fireable node fires at most once more before the loop stops."""
        produced = self.produced
        busy = True
        while busy:
            busy = False
            for node in self.nodes:
                if node.inputs:
                    while node.can_fire():
                        node.fire(self.profiler)
                        busy = True
                        if produced() >= target:
                            busy = False
                            break
            if produced() >= target:
                break

    def _fire_sources(self) -> bool:
        progress = False
        for node in self._sources:
            try:
                node.fire(self.profiler)
                progress = True
            except IndexError:
                pass  # finite source exhausted
        return progress

    def _drive(self, target: float, max_passes: int) -> None:
        """Drain leftovers, then alternate source passes and drains
        until the sink holds ``target`` total outputs.

        ``max_passes`` bounds *this* call (a runaway guard), not the
        session lifetime — long-lived sessions accumulate passes in
        ``self._passes`` without ever tripping it.
        """
        if self.produced() >= target:
            # already satisfied (a prior advance overshot): firing
            # anything here would break incremental firing-count parity
            return
        self._drain(target)
        passes = 0
        while self.produced() < target:
            passes += 1
            self._passes += 1
            if passes > max_passes:
                raise InterpError("executor pass limit exceeded")
            if not self._fire_sources():
                raise InterpError(
                    f"deadlock: no source progress, "
                    f"{self.produced()}/{target} outputs")
            self._drain(target)

    def _take(self, n: int):
        """The next ``n`` already-produced outputs past the cursor."""
        if self.collectors:
            collected = self.collectors[0].runner.collected
            out = collected[self._returned:self._returned + n]
        else:
            out = [self.output_channel.pop() for _ in range(n)]
            self._out_popped += n
        self._returned += n
        return out

    def advance(self, n: int, max_passes: int = 10_000_000):
        """Produce and return the *next* ``n`` outputs (resumable).

        Consecutive calls continue the stream: channel occupancy, filter
        fields, and source positions carry over, and the total firing
        counts after ``advance(k1); advance(k2)`` equal a single cold
        run of ``k1 + k2`` outputs.
        """
        self._drive(self._returned + n, max_passes)
        return self._take(n)

    #: Per-pass cap on greedy source firings (keeps an accidentally
    #: unbounded source inside a push graph from spinning forever in a
    #: single pass; finite sources stop at exhaustion anyway).
    _GREEDY_SOURCE_BLOCK = 1 << 16

    def drain_available(self, max_passes: int = 10_000_000):
        """Greedily fire everything the fed input admits; return the new
        outputs.  Used by ``StreamSession.push``: no output target, no
        deadlock — the loop simply stops when the finite sources run
        dry and the graph is quiescent.  Sources fire in blocks (valid
        at quiescence targets: SDF confluence makes the totals
        independent of feed granularity)."""
        progress = True
        passes = 0
        while progress:
            passes += 1
            self._passes += 1
            if passes > max_passes:
                raise InterpError("executor pass limit exceeded")
            self._drain(math.inf)
            progress = False
            for node in self._sources:
                for _ in range(self._GREEDY_SOURCE_BLOCK):
                    try:
                        node.fire(self.profiler)
                    except IndexError:
                        break  # finite source exhausted
                    progress = True
        return self._take(self.produced() - self._returned)

    def run(self, n_outputs: int, max_passes: int = 10_000_000) -> list[float]:
        """Fire nodes until the sink has ``n_outputs`` items; return them.

        Legacy one-shot entry point.  With a Collector sink the target
        is absolute — ``run(10)`` then ``run(30)`` extends the first run
        and returns all 30 — and the session cursor follows, so
        :meth:`advance` afterwards continues past them.  Without a
        Collector the output channel is consumed: each call returns the
        *next* ``n_outputs`` items.
        """
        if self.collectors:
            self._drive(n_outputs, max_passes)
            if n_outputs > self._returned:
                self._returned = n_outputs
            return self.collectors[0].runner.collected[:n_outputs]
        out = self.advance(n_outputs, max_passes)
        return out if isinstance(out, list) else list(out)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def _shift_deprecated_positionals(fname, legacy, backend, optimize):
    """Map deprecated positional ``backend``/``optimize`` arguments."""
    if not legacy:
        return backend, optimize
    warnings.warn(
        f"passing backend/optimize to {fname} positionally is deprecated; "
        "use keyword arguments, or repro.compile(...) for a resumable "
        "StreamSession", DeprecationWarning, stacklevel=3)
    if len(legacy) > 2:
        raise TypeError(f"{fname}: too many positional arguments")
    backend = legacy[0]
    if len(legacy) == 2:
        optimize = legacy[1]
    return backend, optimize


def run_graph(stream: Stream, n_outputs: int,
              profiler: Profiler | None = None, *legacy,
              backend: str = "compiled",
              optimize: str = "none",
              as_array: bool = False):
    """Run a complete (void->void or void->float) program graph.

    ``optimize`` rewrites the graph with the paper's optimization passes
    first (``none`` | ``linear`` | ``freq`` | ``auto`` — see
    :func:`repro.exec.optimize.optimize_stream`); under the ``plan``
    backend the rewrite, the compiled plan, and the rate-simulation
    schedule are all cached across calls by graph content.

    One-shot wrapper over :class:`repro.session.StreamSession` — the
    session API (``repro.compile``) is the way in when the plan should
    be compiled once and amortized across many calls.  ``as_array=True``
    returns ``np.ndarray`` instead of ``list[float]`` (ndarray-native
    where the sink allows, converted otherwise).  Passing ``backend`` or
    ``optimize`` positionally is deprecated.
    """
    backend, optimize = _shift_deprecated_positionals(
        "run_graph", legacy, backend, optimize)
    from ..session import StreamSession  # deferred: session imports us
    session = StreamSession(stream, backend=backend, optimize=optimize,
                            profiler=profiler, _program_mode=True)
    out = session._advance_raw(n_outputs)
    if as_array:
        return np.asarray(out, dtype=np.float64)
    if isinstance(out, np.ndarray):
        return out.tolist()
    return out if isinstance(out, list) else list(out)


def run_stream(stream: Stream, inputs, n_outputs: int,
               profiler: Profiler | None = None, *legacy,
               backend: str = "compiled",
               optimize: str = "none",
               as_array: bool = False):
    """Run a float->float ``stream`` on ``inputs``; collect ``n_outputs``.

    With ``as_array=True`` the harness is ndarray-native end to end
    (:class:`~repro.runtime.builtins.ChunkSource` feeding the graph,
    :class:`~repro.runtime.builtins.ArrayCollector` at the sink) and the
    result is an ``np.ndarray`` — no per-sample boxing.  The default
    (list) harness is unchanged: ``ListSource`` + ``Collector``.
    """
    backend, optimize = _shift_deprecated_positionals(
        "run_stream", legacy, backend, optimize)
    if as_array:
        from ..session import StreamSession
        session = StreamSession(stream, backend=backend, optimize=optimize,
                                profiler=profiler)
        session.feed(inputs)
        return session.run(n_outputs)
    program = Pipeline([ListSource(inputs), stream, Collector()],
                       name="harness")
    return run_graph(program, n_outputs, profiler, backend=backend,
                     optimize=optimize)


def count_ops(stream: Stream, n_outputs: int, inputs=None,
              backend: str = "compiled",
              optimize: str = "none") -> Profiler:
    """Run and return the profiler (FLOP counts) for ``n_outputs`` outputs."""
    profiler = Profiler()
    if inputs is None:
        run_graph(stream, n_outputs, profiler, backend=backend,
                  optimize=optimize)
    else:
        run_stream(stream, inputs, n_outputs, profiler, backend=backend,
                   optimize=optimize)
    return profiler


def sanity_check_schedulable(stream: Stream) -> None:
    """Raise if the stream has no steady-state schedule."""
    try:
        steady_state(stream)
    except Exception as exc:  # re-raise with context
        raise StreamGraphError(
            f"stream {stream.name} is not schedulable: {exc}") from exc
