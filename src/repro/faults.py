"""Deterministic fault injection for the execution and serving stack.

A :class:`FaultPlan` is a seeded schedule of artificial failures.  Code
at a handful of *injection sites* asks the installed plan whether to
fail right here; the plan rolls a per-site :class:`random.Random`
(seeded from ``(seed, site)``, so every site's decision stream is
reproducible and independent of the others) against the site's
configured rate.  Sites:

======================  ====================================================
``kernel.step``         a batched plan kernel raises mid-advance
                        (:mod:`repro.exec.kernels`)
``cache.lookup``        a plan-cache lookup fails (:mod:`repro.exec.cache`)
``pool.compile``        a pool compile fails before the factory runs
``pool.recycle``        recycling a parked session fails
``wire.corrupt``        one frame byte is flipped before the write — the
                        CRC-32 in the frame header turns this into a typed
                        ``corrupt`` protocol error at the receiver
``wire.truncate``       the frame is cut mid-write and the transport closed
``wire.drop``           the connection is aborted instead of writing
``wire.latency``        the write sleeps ``plan.latency`` seconds first
======================  ====================================================

The hot-path contract is **zero overhead when disabled**: call sites
read the module global ``ACTIVE`` inline (``if faults.ACTIVE is not
None: ...``) — one attribute load and an ``is`` test, no call.

Recovery code must not re-fault while replaying a checkpoint (a high
kernel rate would livelock the restore); :func:`suppress` masks every
site for the current thread::

    with faults.suppress():
        session.restore(snap)

Install/uninstall are process-global (the chaos harness owns the
process); tests pair them in ``try/finally``.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager

from .errors import FaultInjected

__all__ = ["FaultPlan", "FaultInjected", "ACTIVE", "install", "uninstall",
           "suppress", "SITES"]

#: Every injection site threaded through the stack, grouped by class.
SITES = ("kernel.step", "cache.lookup", "pool.compile", "pool.recycle",
         "wire.corrupt", "wire.truncate", "wire.drop", "wire.latency")

#: The installed plan, or ``None``.  Call sites read this inline.
ACTIVE: "FaultPlan | None" = None

_tls = threading.local()


def _suppressed() -> bool:
    return getattr(_tls, "depth", 0) > 0


@contextmanager
def suppress():
    """Mask every injection site for the current thread (re-entrant)."""
    _tls.depth = getattr(_tls, "depth", 0) + 1
    try:
        yield
    finally:
        _tls.depth -= 1


class FaultPlan:
    """A seeded, per-site fault schedule.

    ``rates`` maps site names to fire probabilities; unlisted sites
    never fire but still count attempts (the chaos report shows
    coverage).  ``max_per_site`` caps firings per site — tests use
    ``rates={"kernel.step": 1.0}, max_per_site=1`` for a deterministic
    single fault.  ``latency`` is the ``wire.latency`` sleep in seconds.
    """

    def __init__(self, seed: int = 0, rates: dict | None = None,
                 latency: float = 0.005, max_per_site: int | None = None):
        self.seed = seed
        self.rates = dict(rates or {})
        unknown = set(self.rates) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault sites: {sorted(unknown)}")
        self.latency = latency
        self.max_per_site = max_per_site
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self.attempts: dict[str, int] = {s: 0 for s in SITES}
        self.fired: dict[str, int] = {s: 0 for s in SITES}

    def roll(self, site: str) -> bool:
        """Whether the fault at ``site`` fires now (and count it)."""
        if _suppressed():
            return False
        rate = self.rates.get(site, 0.0)
        with self._lock:
            self.attempts[site] += 1
            if rate <= 0.0:
                return False
            if self.max_per_site is not None and \
                    self.fired[site] >= self.max_per_site:
                return False
            rng = self._rngs.get(site)
            if rng is None:
                rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
            if rng.random() >= rate:
                return False
            self.fired[site] += 1
            return True

    def fire(self, site: str) -> None:
        """Raise :class:`FaultInjected` when the site's roll fires."""
        if self.roll(site):
            raise FaultInjected(site)

    def counts(self) -> dict:
        """``{"attempts": {...}, "fired": {...}}`` snapshot."""
        with self._lock:
            return {"attempts": dict(self.attempts),
                    "fired": dict(self.fired)}

    def fired_by_class(self) -> dict:
        """Fired counts grouped by site class (``kernel``/``cache``/...)."""
        with self._lock:
            out: dict[str, int] = {}
            for site, n in self.fired.items():
                cls = site.split(".", 1)[0]
                out[cls] = out.get(cls, 0) + n
            return out


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan; returns it."""
    global ACTIVE
    ACTIVE = plan
    return plan


def uninstall() -> "FaultPlan | None":
    """Deactivate fault injection; returns the removed plan."""
    global ACTIVE
    plan = ACTIVE
    ACTIVE = None
    return plan
