"""Redundancy elimination: cross-firing product caching (thesis §4.2)."""

from .analysis import (LCT, RedundancyInfo, analyze_redundancy,
                       redundancy_ratio)
from .filters import RedundancyEliminationFilter

__all__ = [
    "LCT", "RedundancyInfo", "analyze_redundancy", "redundancy_ratio",
    "RedundancyEliminationFilter",
]
