"""Non-redundant code generation (thesis §4.2.3, Transformation 7).

``RedundantEliminationFilter`` executes a linear node while caching the
products that recur across firings.  Each reused tuple gets a circular
buffer of ``max_use + 1`` slots; ``init`` work pre-populates the buffer
with the values prior firings would have produced, so output is identical
to the plain linear filter from the very first item.

The firing plan is precomputed: a *store plan* (tuples multiplied and
cached this firing) and per-push *term plans* (cache reads or direct
multiplies).  FLOP accounting matches the generated scalar code; the
caching overhead (buffer indexing) is integer work, which — exactly as the
paper found — costs wall-clock time without costing FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.streams import PrimitiveFilter
from ..linear.node import LinearNode
from ..profiling import Counts
from .analysis import RedundancyInfo, analyze_redundancy


@dataclass(frozen=True)
class _CachedTerm:
    buffer: int  # index into the tuple-state buffers
    use: int  # firings ago the value was stored


@dataclass(frozen=True)
class _DirectTerm:
    coeff: float
    pos: int


class RedundancyEliminationFilter(PrimitiveFilter):
    """Linear node implementation with cross-firing product caching."""

    def __init__(self, node: LinearNode, name: str = "NoRedund",
                 info: RedundancyInfo | None = None):
        self.linear_node = node
        self.name = name
        self.peek = node.peek
        self.pop = node.pop
        self.push = node.push
        self.info = info if info is not None else analyze_redundancy(node)
        self._build_plans()

    def _build_plans(self):
        info = self.info
        node = self.linear_node
        e, u = node.peek, node.push
        reused = sorted(info.reused)  # stable buffer numbering
        self._buffer_of = {t: i for i, t in enumerate(reused)}
        self._buffer_sizes = [info.max_use[t] + 1 for t in reused]
        self._store_plan = [(self._buffer_of[t], t[0], t[1]) for t in reused]
        # per-push terms, push order (push j reads column u-1-j)
        self._columns = []
        for j in range(u):
            col = u - 1 - j
            terms = []
            for row in range(e):
                c = node.A[row, col]
                if c == 0.0:
                    continue
                t = (float(c), e - 1 - row)
                hit = info.comp_map.get(t)
                if hit is not None:
                    ot, use = hit
                    terms.append(_CachedTerm(self._buffer_of[ot], use))
                else:
                    terms.append(_DirectTerm(float(c), e - 1 - row))
            self._columns.append((terms, float(node.b[col])))
        # FLOP accounting for one firing
        counts = Counts()
        counts.fmul = len(self._store_plan) + sum(
            1 for terms, _ in self._columns for term in terms
            if isinstance(term, _DirectTerm))
        for terms, b in self._columns:
            n_terms = len(terms) + (1 if b != 0.0 else 0)
            counts.fadd += max(n_terms - 1, 0)
        self.counts_per_firing = counts

    # ------------------------------------------------------------------
    def make_runner(self, profiler):
        node = self.linear_node
        o = node.pop
        store_plan = self._store_plan
        columns = self._columns
        buffer_sizes = self._buffer_sizes
        counts = self.counts_per_firing
        name = self.name
        info = self.info
        buffer_tuples = sorted(info.reused)

        class _Runner:
            def __init__(self):
                self.state = [np.zeros(sz) for sz in buffer_sizes]
                self.index = [0] * len(buffer_sizes)
                self.primed = False

            def _prime(self, ch_in):
                """initWork: fill slots with values of prior firings."""
                for b_idx, t in enumerate(buffer_tuples):
                    coeff, pos = t
                    for use in range(1, info.max_use[t] + 1):
                        self.state[b_idx][use] = \
                            coeff * ch_in.peek(pos - o * use)
                        profiler.bulk(fmul=1)
                self.primed = True

            def fire(self, ch_in, ch_out):
                if not self.primed:
                    self._prime(ch_in)
                state, index = self.state, self.index
                for b_idx, coeff, pos in store_plan:
                    state[b_idx][index[b_idx]] = coeff * ch_in.peek(pos)
                for terms, b in columns:
                    total = b
                    for term in terms:
                        if isinstance(term, _CachedTerm):
                            buf = term.buffer
                            size = buffer_sizes[buf]
                            total += state[buf][(index[buf] + term.use)
                                                % size]
                        else:
                            total += term.coeff * ch_in.peek(term.pos)
                    ch_out.push(total)
                for b_idx, size in enumerate(buffer_sizes):
                    index[b_idx] = (index[b_idx] - 1) % size
                ch_in.pop_block(o)
                profiler.add_counts(counts, filter_name=name)

        return _Runner()
