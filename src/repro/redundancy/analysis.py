"""Redundancy analysis (thesis §4.2.2, Algorithm 3).

A *linear computation tuple* (LCT) ``t = (coeff, pos)`` denotes the product
``coeff * peek(pos)``.  Because a linear filter slides its window by ``o``
between firings, the value of ``(c, p)`` computed now equals the value of
``(c, p - i*o)`` computed ``i`` firings in the future.  The analysis maps
each LCT of the current firing to all future firings that recompute it,
yielding:

* ``uses[t]``   — the set of firing offsets at which ``t``'s value recurs,
* ``min_use``/``max_use`` per tuple,
* ``reused``    — tuples computed now (min_use = 0) and needed later
  (max_use > 0): the caching candidates,
* ``comp_map``  — maps each current-firing tuple to the cached tuple and
  firing age that already holds its value.

Zero coefficients are skipped: the direct code generator never multiplies
by literal zero, so caching them would not remove a multiplication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import linear
from ..linear.node import LinearNode

LCT = tuple[float, int]  # (coeff, pos)


@dataclass
class RedundancyInfo:
    """Output of Algorithm 3 for one linear node."""

    node: LinearNode
    uses: dict[LCT, set[int]] = field(default_factory=dict)
    min_use: dict[LCT, int] = field(default_factory=dict)
    max_use: dict[LCT, int] = field(default_factory=dict)
    reused: set[LCT] = field(default_factory=set)
    comp_map: dict[LCT, tuple[LCT, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_terms(self) -> int:
        """Multiplications per firing of the direct implementation."""
        return self.node.nnz

    def mults_per_firing(self) -> int:
        """Multiplications per steady firing after caching.

        One multiply per reused tuple (computed and stored), plus one per
        current-firing term not covered by the cache.
        """
        e, u = self.node.peek, self.node.push
        fresh = 0
        for row in range(e):
            for col in range(u):
                c = self.node.A[row, col]
                if c == 0.0:
                    continue
                t = (float(c), e - 1 - row)
                if t not in self.comp_map:
                    fresh += 1
        return fresh + len(self.reused)


def analyze_redundancy(node: LinearNode) -> RedundancyInfo:
    """Run Algorithm 3 on ``node``."""
    info = RedundancyInfo(node)
    e, o, u = node.peek, node.pop, node.push
    A = node.A

    horizon = math.ceil(e / o)
    for n in range(horizon):
        for row in range(n * o, e):
            for col in range(u):
                c = A[row, col]
                if c == 0.0:
                    continue
                t = (float(c), n * o + e - 1 - row)
                info.uses.setdefault(t, set()).add(n)
    for t, ns in info.uses.items():
        info.min_use[t] = min(ns)
        info.max_use[t] = max(ns)
    info.reused = {t for t in info.uses
                   if info.min_use[t] == 0 and info.max_use[t] > 0}

    for t in info.reused:
        info.comp_map[t] = (t, 0)
        for i in sorted(info.uses[t]):
            nt = (t[0], t[1] - i * o)
            if nt == t:
                continue
            if info.min_use.get(nt) == 0:
                prev = info.comp_map.get(nt)
                if prev is None or i > prev[1]:
                    info.comp_map[nt] = (t, i)
    return info


def redundancy_ratio(node: LinearNode) -> float:
    """Fraction of per-firing multiplications removed by caching."""
    info = analyze_redundancy(node)
    total = info.total_terms
    if total == 0:
        return 0.0
    return 1.0 - info.mults_per_firing() / total
