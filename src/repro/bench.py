"""Shared measurement machinery for the benchmark harness (thesis §5.1).

The paper measures each benchmark under several *configurations*:

* ``original``  — the program as written,
* ``linear``    — maximal linear replacement (matrix multiply),
* ``linear_nc`` — linear replacement with combination disabled (each
  linear filter replaced individually; Figure 5-4's "(nc)"),
* ``freq``      — maximal frequency replacement,
* ``freq_nc``   — frequency replacement without combination,
* ``autosel``   — automatic optimization selection,
* ``linear_blas`` — linear replacement with the BLAS (ATLAS stand-in)
  matrix multiply backend (Figure 5-6),
* ``redund``    — redundancy-elimination replacement (Figure 5-10).

Each measurement runs the configured program for a fixed number of
outputs, recording floating-point operations (the DynamoRIO-substitute
profiler) and wall-clock execution time, both normalized per output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .frequency import maximal_frequency_replacement
from .graph.streams import Filter, PrimitiveFilter, Stream, walk
from .linear import LinearNode, analyze, maximal_linear_replacement
from .linear.combine import LinearityMap, replace_with
from .profiling import NullProfiler, Profiler
from .redundancy import RedundancyEliminationFilter
from .runtime import run_graph
from .selection import select_optimizations

#: Program outputs measured per configuration — sized so that the
#: coarsest-grained replaced filter (the frequency block, which pushes
#: u*(m+e-1) items per firing) completes several steady firings; a run
#: that only covers the first firing overstates per-output cost.  Radar
#: is the exception: its frequency blocks would need ~80k outputs, so it
#: runs fewer (the sign of its frequency result is unambiguous either
#: way; noted in EXPERIMENTS.md).
DEFAULT_OUTPUTS = {
    "FIR": 3200,
    "RateConvert": 2500,
    "TargetDetect": 9000,
    "FMRadio": 768,
    "Radar": 512,
    "FilterBank": 5200,
    "Vocoder": 600,
    "Oversampler": 15000,
    "DToA": 2600,
    "Echo": 20000,
    "VocoderEcho": 600,
    "IIR": 20000,
}

CONFIGS = ("original", "linear", "linear_nc", "freq", "freq_nc", "autosel",
           "linear_blas", "redund")


def leaf_only_lmap(stream: Stream) -> LinearityMap:
    """A linearity map with container entries dropped: disables combination."""
    full = analyze(stream)
    leaves = {id(s) for s in walk(stream)
              if isinstance(s, (Filter, PrimitiveFilter))}
    pruned = LinearityMap()
    pruned.nodes = {k: v for k, v in full.nodes.items() if k in leaves}
    pruned.reasons = dict(full.reasons)
    return pruned


def build_config(program: Stream, config: str) -> Stream:
    """Apply one named optimization configuration to a fresh program."""
    if config == "original":
        return program
    if config == "linear":
        return maximal_linear_replacement(program)
    if config == "linear_blas":
        return maximal_linear_replacement(program, backend="blas")
    if config == "linear_nc":
        return maximal_linear_replacement(program, combine=False)
    if config == "freq":
        return maximal_frequency_replacement(program)
    if config == "freq_nc":
        return maximal_frequency_replacement(program, combine=False)
    if config == "autosel":
        return select_optimizations(program).stream
    if config == "redund":
        def make_leaf(node: LinearNode, s: Stream, in_feedback: bool):
            return RedundancyEliminationFilter(node,
                                               name=f"NoRedund[{s.name}]")
        return replace_with(program, make_leaf)
    raise ValueError(f"unknown configuration {config!r}")


@dataclass
class Measurement:
    """Per-output metrics of one configuration run."""

    config: str
    outputs: int
    flops: int
    mults: int
    seconds: float

    @property
    def flops_per_output(self) -> float:
        return self.flops / self.outputs

    @property
    def mults_per_output(self) -> float:
        return self.mults / self.outputs

    @property
    def seconds_per_output(self) -> float:
        return self.seconds / self.outputs


def measure(program: Stream, config: str, n_outputs: int,
            backend: str = "compiled",
            optimize: str = "none") -> Measurement:
    """Build one configuration and measure FLOPs and wall time.

    ``optimize`` is the ``run_graph`` rewrite axis (independent of
    ``config``, which applies the paper's replacement passes directly).
    For scalar backends the rewrite happens outside the timed region, so
    timings compare execution strategies; the plan backend performs it
    inside ``run_graph``, where the plan cache makes the counting run pay
    the one-time rewrite/planning cost and the timed run reuse it.
    """
    stream = build_config(program, config)
    if optimize != "none" and backend != "plan":
        from .exec import optimize_stream
        stream = optimize_stream(stream, optimize)
        optimize = "none"
    profiler = Profiler()
    run_graph(stream, n_outputs, profiler, backend, optimize)
    # separate timing run (profiling overhead excluded); generated code is
    # already warm from the counting run in the same FlatGraph? No — a new
    # FlatGraph compiles again, so do a short warmup first.
    t0 = time.perf_counter()
    run_graph(stream, n_outputs, NullProfiler(), backend, optimize)
    seconds = time.perf_counter() - t0
    return Measurement(config, n_outputs, profiler.counts.flops,
                       profiler.counts.mults, seconds)


def removal_percent(before: float, after: float) -> float:
    """Percent of operations removed (negative => operations added)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


def speedup_percent(t_before: float, t_after: float) -> float:
    """The paper's speedup metric: % decrease in execution time,
    e.g. 450% means the original takes 5.5x as long."""
    if t_after == 0:
        return float("inf")
    return 100.0 * (t_before / t_after - 1.0)


def _measurement_record(app: str, config: str, backend: str,
                        m: Measurement, optimize: str = "none") -> dict:
    return {
        "app": app,
        "config": config,
        "backend": backend,
        "optimize": optimize,
        "outputs": m.outputs,
        "flops": m.flops,
        "mults": m.mults,
        "seconds": round(m.seconds, 6),
        "flops_per_output": round(m.flops_per_output, 3),
        "seconds_per_output": m.seconds_per_output,
    }


def main(argv=None) -> int:
    """``python -m repro.bench``: run one app, emit a one-line JSON result.

    Examples::

        python -m repro.bench --app fir --backend plan --outputs 10000
        python -m repro.bench --app filterbank --compare
        python -m repro.bench --app radar --config linear --backend plan
        python -m repro.bench --app fir --backend plan --optimize auto
        python -m repro.bench --app radar --plan-report --optimize auto

    With ``--compare`` the app runs over the full backend x optimize
    matrix (``compiled``/``plan`` x ``none``/``linear``/``freq``/``auto``)
    emitting one record per cell under ``"cells"``, plus wall-clock
    speedup summaries — the trajectory-tracking mode used by CI and the
    benchmark suite.  ``--plan-report`` prints which nodes the planner
    vectorized and why the rest fall back to scalar firing.
    """
    import argparse
    import json

    from .apps import BENCHMARKS, resolve_app
    from .exec import OPTIMIZE_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run one benchmark app and print a one-line JSON "
                    "result (FLOPs, mults, wall-clock).")
    parser.add_argument("--app", required=True,
                        help="app name, case-insensitive (fir, radar, ...)")
    parser.add_argument("--backend", default=None,
                        choices=["interp", "compiled", "plan"],
                        help="execution backend (default: plan)")
    parser.add_argument("--outputs", type=int, default=None,
                        help="outputs to produce (default: the app's "
                             "paper-sized run)")
    parser.add_argument("--config", default="original", choices=CONFIGS,
                        help="optimization configuration to apply")
    parser.add_argument("--optimize", default=None, choices=OPTIMIZE_MODES,
                        help="pre-plan rewrite mode passed to run_graph "
                             "(default: none)")
    parser.add_argument("--compare", action="store_true",
                        help="measure the full backend x optimize matrix "
                             "and report speedups")
    parser.add_argument("--plan-report", action="store_true",
                        help="print the plan's kernel choices and "
                             "fallback reasons, then exit")
    args = parser.parse_args(argv)

    if args.outputs is not None and args.outputs < 1:
        parser.error("--outputs must be a positive integer")
    if args.compare and (args.backend is not None
                         or args.optimize is not None):
        # --compare sweeps its own backend x optimize matrix; silently
        # dropping an explicit flag would misreport what was measured
        parser.error("--compare measures the full backend x optimize "
                     "matrix; it conflicts with --backend/--optimize")
    backend = args.backend if args.backend is not None else "plan"
    optimize = args.optimize if args.optimize is not None else "none"
    try:
        app_name = resolve_app(args.app)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    n_outputs = args.outputs if args.outputs is not None else \
        DEFAULT_OUTPUTS[app_name]

    if args.plan_report:
        from .exec import plan_report
        program = build_config(BENCHMARKS[app_name](), args.config)
        print(plan_report(program, optimize=optimize))
        return 0

    if args.compare:
        cells = []
        by = {}
        for backend in ("compiled", "plan"):
            for mode in OPTIMIZE_MODES:
                m = measure(BENCHMARKS[app_name](), args.config, n_outputs,
                            backend=backend, optimize=mode)
                rec = _measurement_record(app_name, args.config, backend, m,
                                          optimize=mode)
                cells.append(rec)
                by[(backend, mode)] = rec

        def ratio(a, b):
            return round(a["seconds"] / max(b["seconds"], 1e-12), 2)

        base = by[("compiled", "none")]
        plan = by[("plan", "none")]
        auto = by[("plan", "auto")]
        result = {
            "app": app_name,
            "config": args.config,
            "outputs": n_outputs,
            "cells": cells,
            "flops_equal": base["flops"] == plan["flops"],
            "speedup": ratio(base, plan),
            "speedup_auto": ratio(base, auto),
            "auto_vs_plan": ratio(plan, auto),
        }
    else:
        m = measure(BENCHMARKS[app_name](), args.config, n_outputs,
                    backend=backend, optimize=optimize)
        result = _measurement_record(app_name, args.config, backend, m,
                                     optimize=optimize)
    print(json.dumps(result))
    return 0


def format_table(title: str, headers: list[str], rows: list[list],
                 width: int = 14) -> str:
    """Fixed-width text table used by every figure/table generator."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:,.1f}"
        return str(cell)

    lines = [title, "=" * len(title)]
    head = "".join(h.ljust(width) for h in headers)
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        lines.append("".join(fmt(c).ljust(width) for c in row))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
