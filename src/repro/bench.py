"""Shared measurement machinery for the benchmark harness (thesis §5.1).

The paper measures each benchmark under several *configurations*:

* ``original``  — the program as written,
* ``linear``    — maximal linear replacement (matrix multiply),
* ``linear_nc`` — linear replacement with combination disabled (each
  linear filter replaced individually; Figure 5-4's "(nc)"),
* ``freq``      — maximal frequency replacement,
* ``freq_nc``   — frequency replacement without combination,
* ``autosel``   — automatic optimization selection,
* ``linear_blas`` — linear replacement with the BLAS (ATLAS stand-in)
  matrix multiply backend (Figure 5-6),
* ``redund``    — redundancy-elimination replacement (Figure 5-10).

Each measurement runs the configured program for a fixed number of
outputs, recording floating-point operations (the DynamoRIO-substitute
profiler) and wall-clock execution time, both normalized per output.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from .errors import InterpError
from .frequency import maximal_frequency_replacement
from .graph.streams import Filter, PrimitiveFilter, Stream, walk
from .linear import LinearNode, analyze, maximal_linear_replacement
from .linear.combine import LinearityMap, replace_with
from .numeric import DTYPE_CHOICES, resolve_policy
from .profiling import NullProfiler, Profiler
from .redundancy import RedundancyEliminationFilter
from .runtime import run_graph
from .selection import select_optimizations

#: Program outputs measured per configuration — sized so that the
#: coarsest-grained replaced filter (the frequency block, which pushes
#: u*(m+e-1) items per firing) completes several steady firings; a run
#: that only covers the first firing overstates per-output cost.  Radar
#: is the exception: its frequency blocks would need ~80k outputs, so it
#: runs fewer (the sign of its frequency result is unambiguous either
#: way; noted in EXPERIMENTS.md).
DEFAULT_OUTPUTS = {
    "FIR": 3200,
    "RateConvert": 2500,
    "TargetDetect": 9000,
    "FMRadio": 768,
    "Radar": 512,
    "FilterBank": 5200,
    "Vocoder": 600,
    "Oversampler": 15000,
    "DToA": 2600,
    "Echo": 20000,
    "VocoderEcho": 600,
    "IIR": 20000,
}

CONFIGS = ("original", "linear", "linear_nc", "freq", "freq_nc", "autosel",
           "linear_blas", "redund")


def leaf_only_lmap(stream: Stream) -> LinearityMap:
    """A linearity map with container entries dropped: disables combination."""
    full = analyze(stream)
    leaves = {id(s) for s in walk(stream)
              if isinstance(s, (Filter, PrimitiveFilter))}
    pruned = LinearityMap()
    pruned.nodes = {k: v for k, v in full.nodes.items() if k in leaves}
    pruned.reasons = dict(full.reasons)
    return pruned


def build_config(program: Stream, config: str) -> Stream:
    """Apply one named optimization configuration to a fresh program."""
    if config == "original":
        return program
    if config == "linear":
        return maximal_linear_replacement(program)
    if config == "linear_blas":
        return maximal_linear_replacement(program, backend="blas")
    if config == "linear_nc":
        return maximal_linear_replacement(program, combine=False)
    if config == "freq":
        return maximal_frequency_replacement(program)
    if config == "freq_nc":
        return maximal_frequency_replacement(program, combine=False)
    if config == "autosel":
        return select_optimizations(program).stream
    if config == "redund":
        def make_leaf(node: LinearNode, s: Stream, in_feedback: bool):
            return RedundancyEliminationFilter(node,
                                               name=f"NoRedund[{s.name}]")
        return replace_with(program, make_leaf)
    raise ValueError(f"unknown configuration {config!r}")


@dataclass
class Measurement:
    """Per-output metrics of one configuration run."""

    config: str
    outputs: int
    flops: int
    mults: int
    seconds: float

    @property
    def flops_per_output(self) -> float:
        return self.flops / self.outputs

    @property
    def mults_per_output(self) -> float:
        return self.mults / self.outputs

    @property
    def seconds_per_output(self) -> float:
        return self.seconds / self.outputs


def measure(program: Stream, config: str, n_outputs: int,
            backend: str = "compiled",
            optimize: str = "none", dtype=None,
            workers: int = 1) -> Measurement:
    """Build one configuration and measure FLOPs and wall time.

    ``optimize`` is the rewrite axis (independent of ``config``, which
    applies the paper's replacement passes directly).  Both the counting
    and the timing run go through a compiled
    :class:`~repro.session.StreamSession`, so the timed region measures
    steady-state execution only: the rewrite, planning probes, and
    schedule simulation are paid at ``compile`` time, outside the timer
    (for repeated plan measurements the plan cache makes even that
    one-time cost a hit).

    ``dtype`` selects the session's numeric policy (``"f32"``, ...):
    the plan backend computes natively in that dtype, scalar backends
    cast at the session boundary.

    ``workers`` > 1 (plan backend only) measures the parallel engine:
    the counting session still reports exact serial-equivalent FLOPs,
    the timed session exercises the worker pool.
    """
    from .session import compile as compile_session

    stream = build_config(program, config)
    if optimize != "none" and backend != "plan":
        from .exec import optimize_stream
        stream = optimize_stream(stream, optimize,
                                 policy=resolve_policy(dtype))
        optimize = "none"
    profiler = Profiler()
    counting = compile_session(stream, backend=backend, optimize=optimize,
                               profiler=profiler, dtype=dtype,
                               workers=workers)
    counting.run(n_outputs)
    counting.close()
    # separate timing session (profiling overhead excluded; plan setup
    # and scalar flattening excluded — compile happens before the timer).
    # Warm up, then take the best of three steady-state advances: small
    # configs time in microseconds, where a single cold sample is
    # noise-dominated (lazily compiled work functions, allocator state).
    timed = compile_session(stream, backend=backend, optimize=optimize,
                            profiler=NullProfiler(), dtype=dtype,
                            workers=workers)
    timed.run(min(n_outputs, 256))  # warmup advance
    t0 = time.perf_counter()
    timed.run(n_outputs)
    seconds = time.perf_counter() - t0
    # microsecond-scale configs (tiny FIRs) are timer-jitter-dominated:
    # size two more best-of samples so each timed region is >= ~10 ms,
    # amortizing the jitter over consecutive steady-state advances
    reps = max(1, min(200, int(1e-2 / max(seconds, 1e-9))))
    for _ in range(2):
        try:
            t0 = time.perf_counter()
            for _ in range(reps):
                timed.run(n_outputs)
            seconds = min(seconds, (time.perf_counter() - t0) / reps)
        except InterpError:
            break  # finite source exhausted: keep the samples we have
    timed.close()
    return Measurement(config, n_outputs, profiler.counts.flops,
                       profiler.counts.mults, seconds)


#: Default ``--chunked`` push size: large enough to amortize per-push
#: overhead, small enough to exercise many session advances per run.
DEFAULT_CHUNK_SIZE = 4096

#: ``--serve`` defaults: concurrent clients and per-client output budget
#: — request-sized workloads where per-call planning overhead dominates
#: a one-shot caller, which is exactly what the pool amortizes away.
DEFAULT_SERVE_CLIENTS = 64
DEFAULT_SERVE_OUTPUTS = 4096


def measure_chunked(program: Stream, config: str, n_outputs: int,
                    backend: str = "plan", optimize: str = "none",
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    dtype=None) -> Measurement:
    """Measure a push session fed fixed-size input chunks.

    The program's source/Collector harness is stripped
    (:func:`repro.apps.split_app`), the source's output is pregenerated,
    and the timed region is the push loop over one compiled session —
    the steady-state cost of incremental (streaming) execution, with no
    per-call planning and no per-sample boxing.
    """
    from .apps import split_app, source_values
    from .session import compile as compile_session

    stream = build_config(program, config)
    source, body = split_app(stream)
    if optimize != "none" and backend != "plan":
        from .exec import optimize_stream
        body = optimize_stream(body, optimize,
                               policy=resolve_policy(dtype))
        optimize = "none"

    # pregenerate input: enough source values to cover n_outputs at the
    # session's input/output rate, measured on a short probe push
    probe = compile_session(body, backend=backend, optimize=optimize,
                            profiler=NullProfiler(), dtype=dtype)
    fed = 0
    got = 0
    while got < max(64, n_outputs // 100):
        got += len(probe.push(source_values(source, chunk_size)))
        fed += chunk_size
    rate = max(fed / max(got, 1), 1.0)
    inputs = source_values(source, int(n_outputs * rate * 1.2) + fed)

    def push_all(session):
        produced = 0
        for start in range(0, len(inputs), chunk_size):
            produced += len(session.push(inputs[start:start + chunk_size]))
            if produced >= n_outputs:
                break
        if produced < n_outputs:
            raise RuntimeError(
                f"chunked run underfed: {produced}/{n_outputs} outputs")
        return produced

    profiler = Profiler()
    counting = compile_session(body, backend=backend, optimize=optimize,
                               profiler=profiler, dtype=dtype)
    produced = push_all(counting)
    timed = compile_session(body, backend=backend, optimize=optimize,
                            profiler=NullProfiler(), dtype=dtype)
    t0 = time.perf_counter()
    push_all(timed)
    seconds = time.perf_counter() - t0
    return Measurement(config, produced, profiler.counts.flops,
                       profiler.counts.mults, seconds)


def removal_percent(before: float, after: float) -> float:
    """Percent of operations removed (negative => operations added)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


def speedup_percent(t_before: float, t_after: float) -> float:
    """The paper's speedup metric: % decrease in execution time,
    e.g. 450% means the original takes 5.5x as long."""
    if t_after == 0:
        return float("inf")
    return 100.0 * (t_before / t_after - 1.0)


def _measurement_record(app: str, config: str, backend: str,
                        m: Measurement, optimize: str = "none",
                        dtype=None, workers: int | None = None) -> dict:
    rec = {
        "app": app,
        "config": config,
        "backend": backend,
        "optimize": optimize,
        "dtype": resolve_policy(dtype).name,
        "outputs": m.outputs,
        "flops": m.flops,
        "mults": m.mults,
        "seconds": round(m.seconds, 6),
        "flops_per_output": round(m.flops_per_output, 3),
        "seconds_per_output": m.seconds_per_output,
    }
    if workers is not None:
        # the workers column only appears when --workers was given, so
        # existing consumers of the record shape are unaffected
        rec["workers"] = workers
    return rec


def _worker_levels(workers: int) -> list[int]:
    """The scaling-table sweep: 1, powers of two up to, and, workers."""
    levels = {1, workers}
    w = 2
    while w < workers:
        levels.add(w)
        w *= 2
    return sorted(levels)


def parallel_scaling_report(app_name: str, make_program, config: str,
                            n_outputs: int, workers: int,
                            optimize: str = "none", dtype=None) -> tuple:
    """Measure the workers scaling sweep; return (report text, rows).

    Rows are ``(workers, flops, seconds, sec/out, speedup-vs-1)``; the
    speedup column is wall-clock workers=1 over workers=w, so >= 2.0 at
    w=4 is the paper-style scaling target (meaningful only on a box
    with that many cores — the report records ``os.cpu_count()``).
    """
    import os

    rows = []
    display = []
    base_seconds = None
    for w in _worker_levels(workers):
        m = measure(make_program(), config, n_outputs,
                    backend="plan", optimize=optimize, dtype=dtype,
                    workers=w)
        if base_seconds is None:
            base_seconds = m.seconds
        speedup = base_seconds / max(m.seconds, 1e-12)
        rows.append((w, m.flops, m.seconds, m.seconds_per_output,
                     speedup))
        display.append([w, m.flops, f"{m.seconds * 1e3:.3f} ms",
                        f"{m.seconds_per_output * 1e6:.3f} us",
                        f"{speedup:.2f}x"])
    title = (f"{app_name}: parallel scaling ({n_outputs} outputs, "
             f"optimize={optimize}, cpu_count={os.cpu_count()})")
    report = format_table(title, ["workers", "flops", "seconds",
                                  "sec/out", "speedup"], display)
    return report, rows


def _parse_dsl_args(text: str | None) -> tuple:
    """``"16,0.5"`` -> ``(16, 0.5)`` — ints where they parse as ints."""
    if not text:
        return ()
    values = []
    for part in text.replace(",", " ").split():
        try:
            values.append(int(part))
        except ValueError:
            values.append(float(part))
    return tuple(values)


def load_dsl_program(paths, top: str | None = None,
                     args: tuple = ()) -> Stream:
    """Elaborate ``.str`` file(s) into a runnable benchmark program.

    Multiple files are concatenated in order (the app-library
    convention: pass ``common.str`` before the files that use it).  The
    named ``top`` (default: the last declaration) must elaborate to a
    ``void->float`` stream; a Collector sink is appended so the result
    is a complete program for :func:`measure`.
    """
    from .dsl import compile_source
    from .graph.streams import Pipeline
    from .runtime import Collector

    if isinstance(paths, str):
        paths = [paths]
    parts = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            parts.append(fh.read())
    graph = compile_source("\n".join(parts), top, *args)
    children = list(graph.children) if isinstance(graph, Pipeline) \
        else [graph]
    children.append(Collector("BenchSink"))
    return Pipeline(children, name=graph.name or "DSLProgram")


def main(argv=None) -> int:
    """``python -m repro.bench``: run one app, emit a one-line JSON result.

    Examples::

        python -m repro.bench --app fir --backend plan --outputs 10000
        python -m repro.bench --app filterbank --compare
        python -m repro.bench --app radar --config linear --backend plan
        python -m repro.bench --app fir --backend plan --optimize auto
        python -m repro.bench --app fir --compare --dtype f32
        python -m repro.bench --app radar --plan-report --optimize auto
        python -m repro.bench --dsl examples/fir_bench.str --outputs 4096
        python -m repro.bench --dsl src/repro/apps/dsl/common.str \\
            --dsl src/repro/apps/dsl/fir.str --top FIRProgram \\
            --dsl-args 64 --compare

    ``--dsl`` benchmarks any DSL source file — the canonical frontend —
    through the same measurement machinery as the named apps (including
    ``--compare`` and ``--plan-report``); DSL diagnostics are rendered
    with caret snippets on parse failure.

    With ``--compare`` the app runs over the full backend x optimize
    matrix (``compiled``/``plan`` x ``none``/``linear``/``freq``/``auto``)
    emitting one record per cell under ``"cells"``, plus wall-clock
    speedup summaries — the trajectory-tracking mode used by CI and the
    benchmark suite.  ``--plan-report`` prints which nodes the planner
    vectorized and why the rest fall back to scalar firing.
    """
    import argparse
    import json

    from .apps import BENCHMARKS, resolve_app
    from .exec import OPTIMIZE_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run one benchmark app and print a one-line JSON "
                    "result (FLOPs, mults, wall-clock).")
    parser.add_argument("--app",
                        help="app name, case-insensitive (fir, radar, ...)")
    parser.add_argument("--dsl", action="append", metavar="FILE",
                        help="benchmark a DSL source file instead of a "
                             "named app (repeatable: files are "
                             "concatenated in order)")
    parser.add_argument("--top", default=None,
                        help="top-level stream in the --dsl source "
                             "(default: the last declaration)")
    parser.add_argument("--dsl-args", default=None, metavar="A,B,...",
                        help="comma-separated numeric arguments for the "
                             "--dsl top stream")
    parser.add_argument("--backend", default=None,
                        choices=["interp", "compiled", "plan"],
                        help="execution backend (default: plan)")
    parser.add_argument("--outputs", type=int, default=None,
                        help="outputs to produce (default: the app's "
                             "paper-sized run)")
    parser.add_argument("--config", default="original", choices=CONFIGS,
                        help="optimization configuration to apply")
    parser.add_argument("--optimize", default=None, choices=OPTIMIZE_MODES,
                        help="pre-plan rewrite mode passed to run_graph "
                             "(default: none)")
    parser.add_argument("--dtype", default=None, choices=DTYPE_CHOICES,
                        help="numeric policy for every measured session "
                             "(default: f64)")
    parser.add_argument("--workers", type=int, default=None,
                        help="run the plan backend on the parallel "
                             "engine with this many worker processes; "
                             "alone it also emits a 1..N scaling table "
                             "(see --parallel-out), with --compare it "
                             "adds parallel plan cells")
    parser.add_argument("--parallel-out", default="results/parallel.txt",
                        help="scaling-table path for --workers (default: "
                             "results/parallel.txt; 'none' to skip)")
    parser.add_argument("--compare", action="store_true",
                        help="measure the full backend x optimize matrix "
                             "and report speedups")
    parser.add_argument("--chunked", action="store_true",
                        help="measure a StreamSession fed fixed-size "
                             "pushes next to the batch session row")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="push size for --chunked "
                             f"(default: {DEFAULT_CHUNK_SIZE})")
    parser.add_argument("--plan-report", action="store_true",
                        help="print the plan's kernel choices and "
                             "fallback reasons, then exit")
    parser.add_argument("--serve", action="store_true",
                        help="load-test the repro.serve session server: "
                             "--clients concurrent push streams vs "
                             "sequential one-shot run_graph calls")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent clients for --serve "
                             f"(default: {DEFAULT_SERVE_CLIENTS})")
    parser.add_argument("--serve-out", default="results/serve.txt",
                        help="report path for --serve (default: "
                             "results/serve.txt; 'none' to skip)")
    parser.add_argument("--chaos", action="store_true",
                        help="with --serve: run the fault-injection "
                             "chaos harness instead of the load test — "
                             "seeded faults at every site class, "
                             "bitwise parity against the fault-free "
                             "run, session-leak accounting; exits "
                             "nonzero on any violation")
    parser.add_argument("--chaos-seed", type=int, default=20260807,
                        help="FaultPlan seed for --chaos "
                             "(default: 20260807)")
    parser.add_argument("--chaos-out", default="results/chaos.txt",
                        help="report path for --chaos (default: "
                             "results/chaos.txt; 'none' to skip)")
    args = parser.parse_args(argv)

    if (args.app is None) == (not args.dsl):
        parser.error("exactly one of --app or --dsl is required")
    if not args.dsl and (args.top is not None or args.dsl_args is not None):
        parser.error("--top/--dsl-args require --dsl")
    if args.dsl and args.serve:
        parser.error("--serve runs named apps from the registry; it "
                     "conflicts with --dsl")
    if args.outputs is not None and args.outputs < 1:
        parser.error("--outputs must be a positive integer")
    if args.compare and (args.backend is not None
                         or args.optimize is not None):
        # --compare sweeps its own backend x optimize matrix; silently
        # dropping an explicit flag would misreport what was measured
        parser.error("--compare measures the full backend x optimize "
                     "matrix; it conflicts with --backend/--optimize")
    if args.compare and args.chunked:
        parser.error("--chunked measures one backend; it conflicts "
                     "with --compare")
    if args.serve and (args.compare or args.chunked or args.plan_report):
        parser.error("--serve is its own measurement mode; it conflicts "
                     "with --compare/--chunked/--plan-report")
    if args.clients is not None and not args.serve:
        parser.error("--clients requires --serve")
    if args.dtype is not None and args.serve:
        parser.error("--serve load-tests the float64 wire default; it "
                     "conflicts with --dtype")
    if args.chaos and not args.serve:
        parser.error("--chaos requires --serve")
    if args.clients is not None and args.clients < 1:
        parser.error("--clients must be a positive integer")
    if args.chunk_size is not None and not (args.chunked or args.serve):
        parser.error("--chunk-size requires --chunked or --serve")
    if args.chunk_size is not None and args.chunk_size < 1:
        parser.error("--chunk-size must be a positive integer")
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be a positive integer")
        if args.backend in ("interp", "compiled"):
            parser.error(
                f"--workers runs the parallel plan engine; the scalar "
                f"{args.backend!r} backend executes in-process and "
                "cannot use worker processes (drop --backend or pass "
                "--backend plan)")
        if args.serve or args.chunked or args.plan_report:
            parser.error("--workers measures batch plan sessions; it "
                         "conflicts with --serve/--chunked/--plan-report")
    backend = args.backend if args.backend is not None else "plan"
    optimize = args.optimize if args.optimize is not None else "none"
    workers = args.workers if args.workers is not None else 1
    if args.dsl:
        import sys

        from .errors import DSLError
        from .graph.streams import clone_stream
        try:
            prototype = load_dsl_program(args.dsl, args.top,
                                         _parse_dsl_args(args.dsl_args))
        except DSLError as exc:
            print(exc.render(), file=sys.stderr)
            return 2
        except OSError as exc:
            parser.error(str(exc))
        app_name = prototype.name

        def make_program():
            return clone_stream(prototype)

        n_outputs = args.outputs if args.outputs is not None else 4096
    else:
        try:
            app_name = resolve_app(args.app)
        except KeyError as exc:
            parser.error(str(exc.args[0]))

        def make_program():
            return BENCHMARKS[app_name]()

        n_outputs = args.outputs if args.outputs is not None else \
            DEFAULT_OUTPUTS[app_name]

    if args.plan_report:
        from .exec import plan_report
        program = build_config(make_program(), args.config)
        print(plan_report(program, optimize=optimize))
        return 0

    if args.serve:
        if args.config != "original":
            parser.error("--serve measures the app as written; it "
                         "conflicts with --config")
        if args.chaos:
            import os as _os

            from .serve.chaos import format_chaos_report, run_chaos
            result = run_chaos(
                clients=(args.clients if args.clients is not None
                         else 8),
                seed=args.chaos_seed)
            report = format_chaos_report(result)
            if args.chaos_out != "none":
                _os.makedirs(_os.path.dirname(args.chaos_out) or ".",
                             exist_ok=True)
                with open(args.chaos_out, "w") as fh:
                    fh.write(report + "\n")
            print(report)
            # the CI gate: bitwise parity, balanced session books,
            # every fault class exercised, and recovery actually ran
            failed = (result["violations"] or result["leaked"]
                      or result["missing_classes"]
                      or result["degraded"] == 0
                      or result["retries"] == 0)
            return 1 if failed else 0
        from .serve.loadgen import run_load
        out_path = (None if args.serve_out == "none" else args.serve_out)
        result = run_load(
            app=app_name,
            clients=(args.clients if args.clients is not None
                     else DEFAULT_SERVE_CLIENTS),
            outputs=(args.outputs if args.outputs is not None
                     else DEFAULT_SERVE_OUTPUTS),
            chunk_size=(args.chunk_size if args.chunk_size is not None
                        else DEFAULT_CHUNK_SIZE // 2),
            backend=backend, optimize=optimize, out_path=out_path)
        print(json.dumps(result))
        return 0

    if args.chunked:
        chunk_size = (args.chunk_size if args.chunk_size is not None
                      else DEFAULT_CHUNK_SIZE)
        batch = measure(make_program(), args.config, n_outputs,
                        backend=backend, optimize=optimize,
                        dtype=args.dtype)
        chunked = measure_chunked(make_program(), args.config,
                                  n_outputs, backend=backend,
                                  optimize=optimize, chunk_size=chunk_size,
                                  dtype=args.dtype)
        # throughput ratio: >= 1.0 means chunked streaming is at least
        # as fast per output as the batch session
        ratio = (batch.seconds_per_output
                 / max(chunked.seconds_per_output, 1e-12))
        result = {
            "app": app_name,
            "config": args.config,
            "backend": backend,
            "optimize": optimize,
            "dtype": resolve_policy(args.dtype).name,
            "chunk_size": chunk_size,
            "batch": _measurement_record(app_name, args.config, backend,
                                         batch, optimize=optimize,
                                         dtype=args.dtype),
            "chunked": _measurement_record(app_name, args.config, backend,
                                           chunked, optimize=optimize,
                                           dtype=args.dtype),
            "chunked_vs_batch": round(ratio, 3),
        }
        print(json.dumps(result))
        return 0

    if args.compare:
        cells = []
        by = {}
        col_workers = 1 if args.workers is not None else None
        for backend in ("compiled", "plan"):
            for mode in OPTIMIZE_MODES:
                m = measure(make_program(), args.config, n_outputs,
                            backend=backend, optimize=mode,
                            dtype=args.dtype)
                rec = _measurement_record(app_name, args.config, backend, m,
                                          optimize=mode, dtype=args.dtype,
                                          workers=col_workers)
                cells.append(rec)
                by[(backend, mode)] = rec
        if workers > 1:
            for mode in OPTIMIZE_MODES:
                m = measure(make_program(), args.config, n_outputs,
                            backend="plan", optimize=mode,
                            dtype=args.dtype, workers=workers)
                rec = _measurement_record(app_name, args.config, "plan", m,
                                          optimize=mode, dtype=args.dtype,
                                          workers=workers)
                cells.append(rec)
                by[("plan", mode, workers)] = rec

        def ratio(a, b):
            return round(a["seconds"] / max(b["seconds"], 1e-12), 2)

        base = by[("compiled", "none")]
        plan = by[("plan", "none")]
        auto = by[("plan", "auto")]
        result = {
            "app": app_name,
            "config": args.config,
            "outputs": n_outputs,
            "dtype": resolve_policy(args.dtype).name,
            "cells": cells,
            "flops_equal": base["flops"] == plan["flops"],
            "speedup": ratio(base, plan),
            "speedup_auto": ratio(base, auto),
            "auto_vs_plan": ratio(plan, auto),
        }
        if workers > 1:
            plan_w = by[("plan", "none", workers)]
            auto_w = by[("plan", "auto", workers)]
            result["workers"] = workers
            # the parallel engine must preserve exact FLOP accounting
            result["flops_equal_workers"] = base["flops"] == plan_w["flops"]
            result["speedup_workers"] = ratio(base, auto_w)
            result["workers_vs_serial"] = ratio(auto, auto_w)
            result["workers_vs_serial_none"] = ratio(plan, plan_w)
    else:
        m = measure(make_program(), args.config, n_outputs,
                    backend=backend, optimize=optimize, dtype=args.dtype,
                    workers=workers)
        result = _measurement_record(
            app_name, args.config, backend, m, optimize=optimize,
            dtype=args.dtype,
            workers=(workers if args.workers is not None else None))
        if workers > 1 and args.parallel_out != "none":
            import os as _os
            report, rows = parallel_scaling_report(
                app_name, make_program, args.config, n_outputs, workers,
                optimize=optimize, dtype=args.dtype)
            _os.makedirs(_os.path.dirname(args.parallel_out) or ".",
                         exist_ok=True)
            with open(args.parallel_out, "a") as fh:
                fh.write(report + "\n\n")
            result["scaling"] = [
                {"workers": w, "flops": f, "seconds": round(s, 6),
                 "speedup": round(sp, 2)}
                for (w, f, s, _spo, sp) in rows]
            result["parallel_out"] = args.parallel_out
    print(json.dumps(result))
    return 0


def format_table(title: str, headers: list[str], rows: list[list],
                 width: int = 14) -> str:
    """Fixed-width text table used by every figure/table generator."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:,.1f}"
        return str(cell)

    lines = [title, "=" * len(title)]
    head = "".join(h.ljust(width) for h in headers)
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        lines.append("".join(fmt(c).ljust(width) for c in row))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
