"""repro — reproduction of "Linear Analysis and Optimization of Stream Programs".

The package implements the complete system from the PLDI 2003 paper /
MEng thesis by Andrew A. Lamb (with William Thies and Saman Amarasinghe):
a StreamIt-like stream language and runtime, linear dataflow extraction,
structural combination of linear filters, frequency-domain replacement,
cross-firing redundancy elimination, and dynamic-programming optimization
selection.

Quickstart — compile once, stream forever::

    import repro
    from repro.apps import fir

    session = repro.compile(fir.build(), optimize="auto")
    block = session.run(4096)        # np.ndarray; resumable
    more = session.run(4096)         # continues the stream
    print(session.profile.counts.flops)

Float->float graphs become *push* sessions fed incrementally::

    fir256 = repro.compile(low_pass_filter(1.0, math.pi / 3, 256))
    for chunk in chunks:
        out = fir256.push(chunk)     # ndarray-native end to end

Three execution backends share one FLOP-accounting contract (identical
counts, outputs equal to 1e-9):

* ``backend="interp"``   — reference tree-walking interpreter;
* ``backend="compiled"`` — generated Python per filter;
* ``backend="plan"``     — vectorized steady-state engine (the session
  default; :mod:`repro.exec`): batches firings, runs linear filters as
  NumPy matrix products.  Graphs the planner cannot batch (unknown
  primitive sources, unprobeable cycles) transparently fall back to
  ``compiled``; within a plan, non-linear/branching filters run through
  the compiled scalar fallback.

``runtime.run_graph`` / ``run_stream`` / ``count_ops`` remain as thin
one-shot wrappers over a session (``backend="compiled"`` default,
``list[float]`` results — pass ``as_array=True`` for ndarrays).

Benchmark CLI::

    python -m repro.bench --app fir --backend plan --outputs 10000
    python -m repro.bench --app filterbank --compare   # compiled vs plan
    python -m repro.bench --app fir --chunked          # push-session mode
"""

from . import (errors, exec, faults, graph, ir, linear, numeric, runtime,
               serve, session)
from .numeric import DEFAULT_POLICY, POLICIES, NumericPolicy, resolve_policy
from .session import StreamSession, compile

__version__ = "1.4.0"

__all__ = ["errors", "exec", "graph", "ir", "linear", "numeric", "runtime",
           "serve", "session", "StreamSession", "compile", "NumericPolicy",
           "POLICIES", "DEFAULT_POLICY", "resolve_policy", "__version__"]
