"""repro — reproduction of "Linear Analysis and Optimization of Stream Programs".

The package implements the complete system from the PLDI 2003 paper /
MEng thesis by Andrew A. Lamb (with William Thies and Saman Amarasinghe):
a StreamIt-like stream language and runtime, linear dataflow extraction,
structural combination of linear filters, frequency-domain replacement,
cross-firing redundancy elimination, and dynamic-programming optimization
selection.

Quickstart::

    from repro import graph, linear, runtime
    from repro.apps import fir

    program = fir.build()                       # FIR pipeline
    optimized = linear.maximal_linear_replacement(program)
    outputs = runtime.run_graph(optimized, 100)
"""

from . import errors, graph, ir, linear, runtime

__version__ = "1.0.0"

__all__ = ["errors", "graph", "ir", "linear", "runtime", "__version__"]
