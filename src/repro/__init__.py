"""repro — reproduction of "Linear Analysis and Optimization of Stream Programs".

The package implements the complete system from the PLDI 2003 paper /
MEng thesis by Andrew A. Lamb (with William Thies and Saman Amarasinghe):
a StreamIt-like stream language and runtime, linear dataflow extraction,
structural combination of linear filters, frequency-domain replacement,
cross-firing redundancy elimination, and dynamic-programming optimization
selection.

Quickstart::

    from repro import graph, linear, runtime
    from repro.apps import fir

    program = fir.build()                       # FIR pipeline
    optimized = linear.maximal_linear_replacement(program)
    outputs = runtime.run_graph(optimized, 100)

Three execution backends share one FLOP-accounting contract (identical
counts, outputs equal to 1e-9):

* ``backend="interp"``   — reference tree-walking interpreter;
* ``backend="compiled"`` — generated Python per filter (default);
* ``backend="plan"``     — vectorized steady-state engine
  (:mod:`repro.exec`): batches firings, runs linear filters as NumPy
  matrix products.  Programs with feedback loops (cyclic flattened
  graphs) or unknown primitive sources transparently fall back to
  ``compiled``; within a plan, non-linear/stateful/branching filters run
  through the compiled scalar fallback.

Benchmark CLI::

    python -m repro.bench --app fir --backend plan --outputs 10000
    python -m repro.bench --app filterbank --compare   # compiled vs plan
"""

from . import errors, exec, graph, ir, linear, runtime

__version__ = "1.1.0"

__all__ = ["errors", "exec", "graph", "ir", "linear", "runtime",
           "__version__"]
