"""Vectorized steady-state execution engine (the ``plan`` backend).

Compiles a flattened stream graph plus its static I/O rates into a batched
execution plan: linear filters run as one NumPy matrix product per chunk,
splitters/joiners as reshapes, everything else through the compiled scalar
fallback — with FLOP accounting identical to the ``interp`` and
``compiled`` backends.  Entry point: ``run_graph(..., backend="plan")`` or
:func:`plan_executor_for`.
"""

from .planner import (DEFAULT_CHUNK_OUTPUTS, PlanExecutor,
                      plan_bailout_reason, plan_executor_for)
from .ring import RingBuffer

__all__ = [
    "PlanExecutor", "RingBuffer", "plan_executor_for",
    "plan_bailout_reason", "DEFAULT_CHUNK_OUTPUTS",
]
