"""Vectorized steady-state execution engine (the ``plan`` backend).

Compiles a flattened stream graph plus its static I/O rates into a batched
execution plan: linear filters run as one NumPy matrix product per chunk,
frequency filters as stacked overlap-save FFT convolutions, splitters and
joiners as reshapes, everything else through the compiled scalar fallback
— with FLOP accounting identical to the ``interp`` and ``compiled``
backends.  The full pipeline ``optimize -> plan -> execute`` first
rewrites the graph with the paper's optimization passes
(:mod:`repro.exec.optimize`), and caches plans + schedule traces across
runs (:mod:`repro.exec.cache`).  Entry point:
``run_graph(..., backend="plan", optimize=...)`` or
:func:`plan_executor_for`; :func:`plan_report` explains kernel choices
and scalar fallbacks.
"""

from .cache import (PLAN_CACHE, PlanCache, clear_plan_cache,
                    plan_cache_stats, stream_fingerprint)
from .optimize import OPTIMIZE_MODES, optimize_stream
from .planner import (DEFAULT_CHUNK_OUTPUTS, IslandRates, IslandReport,
                      PlanExecutor, PlanReport, StepReport,
                      compiled_plan_for, executor_from_entry,
                      plan_bailout_reason, plan_executor_for, plan_report,
                      probe_island, report_for_executor)
from .ring import RingBuffer

__all__ = [
    "PlanExecutor", "RingBuffer", "plan_executor_for",
    "compiled_plan_for", "executor_from_entry",
    "plan_bailout_reason", "DEFAULT_CHUNK_OUTPUTS",
    "OPTIMIZE_MODES", "optimize_stream",
    "PLAN_CACHE", "PlanCache", "plan_cache_stats", "clear_plan_cache",
    "stream_fingerprint",
    "PlanReport", "StepReport", "plan_report", "report_for_executor",
    "IslandRates", "IslandReport", "probe_island",
]
