"""Batched step kernels executed by the plan backend.

Each step executes ``n`` consecutive firings of one flattened graph node
against :class:`~repro.exec.ring.RingBuffer` channels:

* :class:`MatmulStep` — a linear filter's ``n`` firings collapse into one
  ``(n, peek) @ (peek, push)`` NumPy matrix product over a strided window
  view of the input ring (the paper's "linear filters are matrix
  multiplications", applied across firings instead of within one);
* splitter/joiner steps become reshape + strided scatter/gather;
* trivial primitives (identity, decimator, sources, collector) become
  block transfers;
* :class:`FallbackStep` fires the node's existing scalar runner (compiled
  work function or primitive runner) ``n`` times — the escape hatch for
  non-linear or stateful filters, with exact FLOP-count parity;
* :class:`FeedbackStep` executes a whole feedback island — the flattened
  cycle of one FeedbackLoop — data-driven behind a fixed-rate facade,
  its members firing through their own batched kernels with lookahead
  bounded by the loop's delay ring.

FLOP accounting: every step reports exactly the operations the scalar
backends would have counted for the same firings, so profiles are
bit-identical across ``interp``/``compiled``/``plan``.
"""

from __future__ import annotations

import numpy as np

from .. import faults as _faults
from ..errors import InterpError
from ..numeric import DEFAULT_POLICY, NumericPolicy
from ..profiling import Counts, Profiler


class Step:
    """One plan step: executes batched firings of a single node."""

    #: debugging/introspection label set by the planner
    kind = "step"

    #: True when the step carries numeric state across firings that the
    #: parallel executor must synchronize between the parent's step
    #: object (the authority) and a worker's cached copy.  Stateful
    #: steps override :meth:`carry_state`/:meth:`set_carry_state`.
    carries_state = False

    def execute(self, n: int) -> None:
        raise NotImplementedError

    def carry_state(self):
        """The step's cross-firing state (picklable), or None."""
        return None

    def set_carry_state(self, state) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not carry state")


class MatmulStep(Step):
    """Batched affine map ``Y = X[:, ::-1] @ A + b`` for a linear node.

    ``filter_name`` is set for :class:`~repro.linear.filters.LinearFilter`
    leaves (whose scalar runners attribute counts per filter); it is left
    ``None`` for IR filters, matching the compiled backend's aggregate-only
    accounting.
    """

    kind = "matmul"

    def __init__(self, ring_in, ring_out, A: np.ndarray, b: np.ndarray,
                 peek: int, pop: int, push: int, counts: Counts,
                 profiler: Profiler, filter_name: str | None = None,
                 policy: NumericPolicy = DEFAULT_POLICY):
        self.ring_in = ring_in
        self.ring_out = ring_out
        # row i <=> peek(i); stored in the policy dtype so the product
        # computes natively in it (f32 GEMM, complex GEMM, ...)
        self.A = np.ascontiguousarray(A[::-1], dtype=policy.dtype)
        self.b = np.asarray(b, dtype=policy.dtype)
        self.has_b = bool(np.any(self.b != 0.0))
        self.peek = peek
        self.pop = pop
        self.push = push
        self.counts = policy.adjust_counts(counts)
        self.profiler = profiler
        self.filter_name = filter_name
        # pop == push == 1 (an n-tap sliding filter, the FIR shape):
        # consecutive windows overlap in all but one element, and BLAS
        # forces a dense (n, peek) copy of the strided view first — a
        # 1-D correlation computes the same column without materializing
        # the window matrix (~5x on a 256-tap FIR).  np.correlate
        # conjugates its second argument, so complex taps are
        # pre-conjugated to keep the plain product semantics.
        taps = None
        if pop == 1 and push == 1 and peek >= 1:
            taps = np.ascontiguousarray(self.A[:, 0])
            if policy.is_complex:
                taps = np.conj(taps)
        self._taps = taps

    def execute(self, n: int) -> None:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("kernel.step")
        if self._taps is not None:
            x = self.ring_in.peek_block(n + self.peek - 1)
            y = np.correlate(x, self._taps, "valid")
            if self.has_b:
                y += self.b[0]
            self.ring_out.push_array(y)
            self.ring_in.pop_block(n)
            self.profiler.add_counts(self.counts, times=n,
                                     filter_name=self.filter_name)
            return
        X = self.ring_in.window_view(n, self.pop, self.peek)
        # window rows are [peek(0)..peek(e-1)]; A was pre-reversed so that
        # X @ A == (X[:, ::-1]) @ A_thesis, avoiding a strided copy.
        Y = X @ self.A
        if self.has_b:
            Y += self.b
        if self.push:
            # push order within a firing is y[u-1] first
            self.ring_out.push_array(Y[:, ::-1].reshape(-1))
        self.ring_in.pop_block(n * self.pop)
        self.profiler.add_counts(self.counts, times=n,
                                 filter_name=self.filter_name)


#: Target element count of a lifted stateful block operator
#: (``E x B*u`` ~ ``B^2*o*u``): balances the dense recomputation the
#: lift pays per firing (~``B*o*u`` extra mul-adds, amortized by BLAS)
#: against the Python-level per-block loop overhead (~``1/B``).
_STATEFUL_LIFT_ELEMS = 1 << 14

#: Hard cap on the lifted block length.
_STATEFUL_MAX_BLOCK = 128


def stateful_block_length(pop: int, push: int,
                          policy: NumericPolicy | None = None) -> int:
    """Lifted block length of :class:`StatefulLinearStep` for a node
    with the given rates — the single source of truth, also used by the
    selection cost model to price the per-block state carry.

    With a calibration cache present (:mod:`repro.exec.calibrate`), the
    analytic ~128 cap is replaced by the block length the scan
    microbenchmark actually measured fastest for the policy dtype; the
    ``1/sqrt(pop*push)`` scaling is kept either way.  FLOP accounting is
    block-size independent, so calibration never perturbs profiles.
    """
    cap = _STATEFUL_MAX_BLOCK
    from .calibrate import active_calibration
    cal = active_calibration()
    if cal is not None:
        name = (policy or DEFAULT_POLICY).name
        cap = cal.stateful_block.get(name, cap)
    ou = max(1, pop * push)
    return max(1, min(cap, int((cap * cap / ou) ** 0.5)))


class StatefulLinearStep(Step):
    """Batched stateful-linear kernel: ``n`` firings of ``y = x·Ax +
    s·As + bx``, ``s' = x·Cx + s·Cs + bs`` as a few block matmuls.

    The state update is a monoid action, so ``B`` firings compose into
    one *lifted* affine operator (:func:`~repro.linear.state.
    expand_stateful` — stacked powers of ``Cs`` threaded against the
    input window).  Execution splits into:

    1. one ``(n/B, E) @ (E, B·u)`` product applying the lifted input map
       to every block at once (no cross-block dependency),
    2. one ``(n/B, E) @ (E, k)`` product yielding each block's state
       *drive*, then a Python-level scan over the ``n/B`` block
       boundaries (the only true sequential dependency: ``s_{b+1} =
       drive_b + s_b·Cs_lift``),
    3. one ``(n/B, k) @ (k, B·u)`` product adding each block's entry
       state into its outputs.

    So an IIR cascade advances ``B`` iterations per BLAS row instead of
    one Python-level fire — the same class of win MatmulStep delivers
    for stateless filters.  FLOP accounting reports the scalar runner's
    exact per-firing counts times ``n`` (the parity contract), not the
    lift's recomputation.
    """

    kind = "stateful"

    def __init__(self, ring_in, ring_out, node, counts: Counts,
                 profiler: Profiler, filter_name: str | None = None,
                 policy: NumericPolicy = DEFAULT_POLICY):
        self.ring_in = ring_in
        self.ring_out = ring_out
        self.node = node
        self.policy = policy
        self.s = np.asarray(node.s0, dtype=policy.dtype).copy()
        self.counts = policy.adjust_counts(counts)
        self.profiler = profiler
        self.filter_name = filter_name
        self.block = stateful_block_length(node.pop, node.push, policy)
        self._lifted: dict[int, tuple] = {}

    carries_state = True

    def carry_state(self):
        return self.s.copy()

    def set_carry_state(self, state) -> None:
        self.s = np.asarray(state, dtype=self.policy.dtype).copy()

    def _lift(self, b: int) -> tuple:
        pack = self._lifted.get(b)
        if pack is None:
            from ..linear.state import expand_stateful

            ex = expand_stateful(self.node, b)
            dt = self.policy.dtype
            # pre-reverse rows like MatmulStep: window rows are
            # [peek(0)..peek(E-1)], the lifted matrices use x-convention
            pack = (ex.peek, ex.pop, ex.push,
                    np.ascontiguousarray(ex.Ax[::-1], dtype=dt),
                    np.ascontiguousarray(ex.As, dtype=dt),
                    np.asarray(ex.bx, dtype=dt),
                    np.ascontiguousarray(ex.Cx[::-1], dtype=dt),
                    np.ascontiguousarray(ex.Cs, dtype=dt),
                    np.asarray(ex.bs, dtype=dt))
            self._lifted[b] = pack
        return pack

    def _run_blocks(self, blocks: int, b: int) -> None:
        """Execute ``blocks`` consecutive lifted firings of block size
        ``b`` (one window view, three matmuls, one short scan)."""
        E, pop, U, Axr, As, bx, Cxr, Cs, bs = self._lift(b)
        X = self.ring_in.window_view(blocks, pop, E)
        Y = X @ Axr
        Y += bx
        k = len(self.s)
        if k:
            drive = X @ Cxr
            drive += bs
            S = np.empty((blocks, k), dtype=self.policy.dtype)
            s = self.s
            for i in range(blocks):
                S[i] = s
                s = drive[i] + s @ Cs
            self.s = s
            Y += S @ As
        # push order within a lifted firing is y[U-1] first
        self.ring_out.push_array(Y[:, ::-1].reshape(-1))
        self.ring_in.pop_block(blocks * pop)

    def execute(self, n: int) -> None:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("kernel.step")
        b = min(self.block, n)
        full = n // b
        if full:
            self._run_blocks(full, b)
        rest = n - full * b
        if rest:
            self._run_blocks(1, rest)
        self.profiler.add_counts(self.counts, times=n,
                                 filter_name=self.filter_name)


#: Cap on the ``k * n * (u + 1)`` complex workspace of one batched FFT
#: call; larger batches are processed in slices to bound memory.
_MAX_FFT_BLOCK_ELEMS = 1 << 21


class NaiveFreqStep(Step):
    """Batched Transformation 5: overlap-save FFT convolution per chunk.

    ``k`` firings of a :class:`~repro.frequency.filters.NaiveFreqFilter`
    collapse into one stacked rfft -> pointwise product -> irfft over the
    ``(k, m+e-1)`` window view of the input ring (windows overlap by
    ``e-1``, stride ``m``).  FLOP accounting is the scalar runner's
    per-block counts scaled by ``k``.
    """

    kind = "freq-naive"

    def __init__(self, ring_in, ring_out, filt, profiler: Profiler,
                 policy: NumericPolicy = DEFAULT_POLICY):
        self.ring_in = ring_in
        self.ring_out = ring_out
        self.kernel = filt.kernel.for_policy(policy)
        self.e, self.m, self.u = filt.e, filt.m, filt.u
        self.b_push = np.asarray(filt.b_push, dtype=policy.dtype)
        counts = filt.kernel.counts_per_block.copy()
        counts.fadd += int(np.count_nonzero(filt.b_push)) * filt.m
        self.counts = policy.adjust_counts(counts)
        self.profiler = profiler
        self.name = filt.name
        self.rows = max(1, _MAX_FFT_BLOCK_ELEMS
                        // (filt.kernel.n * (filt.u + 1)))

    def execute(self, n: int) -> None:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("kernel.step")
        e, m = self.e, self.m
        while n:
            k = min(n, self.rows)
            X = self.ring_in.window_view(k, m, m + e - 1)
            y = self.kernel.convolve_batch(X)  # (k, n_fft, u)
            kept = y[:, e - 1:e - 1 + m, :] + self.b_push
            self.ring_out.push_array(kept.reshape(-1))
            self.ring_in.pop_block(k * m)
            self.profiler.add_counts(self.counts, times=k,
                                     filter_name=self.name)
            n -= k


class OptimizedFreqStep(Step):
    """Batched Transformation 6: disjoint FFT blocks with partial sums.

    Within a batch, firing ``i``'s boundary outputs are completed with the
    tail partials of firing ``i-1`` (block-shifted in one vectorized add);
    the last block's tail is carried across batches — and across the
    chunk-flush boundary — exactly like the scalar runner's ``partials``
    state.  The first-ever firing pushes only the ``u*m`` interior outputs
    (the filter's declared init rate).
    """

    kind = "freq-opt"

    def __init__(self, ring_in, ring_out, filt, profiler: Profiler,
                 policy: NumericPolicy = DEFAULT_POLICY):
        self.ring_in = ring_in
        self.ring_out = ring_out
        self.kernel = filt.kernel.for_policy(policy)
        self.policy = policy
        self.e, self.m, self.u, self.r = filt.e, filt.m, filt.u, filt.r
        self.b_push = np.asarray(filt.b_push, dtype=policy.dtype)
        b_adds = int(np.count_nonzero(filt.b_push))
        init_counts = filt.kernel.counts_per_block.copy()
        init_counts.fadd += b_adds * filt.m
        steady_counts = filt.kernel.counts_per_block.copy()
        steady_counts.fadd += b_adds * filt.r
        steady_counts.fadd += filt.u * (filt.e - 1)
        self.init_counts = policy.adjust_counts(init_counts)
        self.steady_counts = policy.adjust_counts(steady_counts)
        self.profiler = profiler
        self.name = filt.name
        self.partials: np.ndarray | None = None
        self.rows = max(1, _MAX_FFT_BLOCK_ELEMS
                        // (filt.kernel.n * (filt.u + 1)))

    # None is meaningful state here (first firing not yet taken), so the
    # parallel executor wraps the carry in a 1-tuple on the wire
    carries_state = True

    def carry_state(self):
        return None if self.partials is None else self.partials.copy()

    def set_carry_state(self, state) -> None:
        self.partials = (None if state is None
                         else np.asarray(state,
                                         dtype=self.policy.dtype).copy())

    def execute(self, n: int) -> None:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("kernel.step")
        e, m, u, r = self.e, self.m, self.u, self.r
        while n:
            k = min(n, self.rows)
            X = self.ring_in.window_view(k, r, r)
            y = self.kernel.convolve_batch(X)  # (k, n_fft, u)
            mids = y[:, e - 1:e - 1 + m, :] + self.b_push  # (k, m, u)
            tails = y[:, m + e - 1:m + 2 * e - 2, :]  # (k, e-1, u)
            if self.partials is None:
                # very first firing: interior outputs only (init push u*m)
                self.ring_out.push_array(mids[0].reshape(-1))
                self.profiler.add_counts(self.init_counts,
                                         filter_name=self.name)
                if k > 1:
                    out = np.empty((k - 1, r, u), dtype=self.policy.dtype)
                    out[:, :e - 1] = y[1:, :e - 1] + tails[:-1] + self.b_push
                    out[:, e - 1:] = mids[1:]
                    self.ring_out.push_array(out.reshape(-1))
                    self.profiler.add_counts(self.steady_counts, times=k - 1,
                                             filter_name=self.name)
            else:
                prev = np.concatenate([self.partials[None], tails[:-1]])
                out = np.empty((k, r, u), dtype=self.policy.dtype)
                out[:, :e - 1] = y[:, :e - 1] + prev + self.b_push
                out[:, e - 1:] = mids
                self.ring_out.push_array(out.reshape(-1))
                self.profiler.add_counts(self.steady_counts, times=k,
                                         filter_name=self.name)
            self.partials = tails[-1].copy()
            self.ring_in.pop_block(k * r)
            n -= k


class FallbackStep(Step):
    """Scalar escape hatch: fire the node's existing runner ``n`` times."""

    kind = "fallback"

    def __init__(self, node, ring_in, ring_out):
        self.node = node
        self.ring_in = ring_in
        self.ring_out = ring_out

    def execute(self, n: int) -> None:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("kernel.step")
        fire = self.node.runner.fire
        ch_in, ch_out = self.ring_in, self.ring_out
        for _ in range(n):
            fire(ch_in, ch_out)


def feasible_firings(haves, needs, pops) -> int:
    """Max consecutive steady firings the per-input occupancies admit.

    The single source of truth for the batch-size formula: the planner's
    rate simulator, the island probe, and the island drain all call this,
    so a certified island executes exactly the schedule that was probed.
    """
    n = None
    for have, need, o in zip(haves, needs, pops):
        if have < need:
            return 0
        if o > 0:
            k = (have - need) // o + 1
            if n is None or k < n:
                n = k
    return n if n is not None else 0


class IslandMember:
    """One node of a feedback island: its kernel plus firing-rate data.

    ``feasible`` mirrors the scalar executor's ``can_fire`` but returns
    the *largest* batch the current ring occupancies admit, so a loop
    with ``delay`` enqueued items advances up to ``delay`` iterations per
    drain round through one batched kernel call each.
    """

    __slots__ = ("step", "in_rings", "needs", "pops", "has_init",
                 "init_needs", "fired")

    def __init__(self, step: Step, in_rings, needs, pops,
                 has_init: bool = False, init_needs=()):
        self.step = step
        self.in_rings = in_rings
        self.needs = needs
        self.pops = pops
        self.has_init = has_init
        self.init_needs = list(init_needs)
        self.fired = False

    def feasible(self) -> int:
        return feasible_firings((len(r) for r in self.in_rings),
                                self.needs, self.pops)


class FeedbackStep(Step):
    """Executes a feedback island: the flattened cycle of one
    FeedbackLoop (joiner, body, splitter, loop path — nested loops
    included) behind a fixed-rate facade the acyclic planner can batch
    around.

    ``execute(n)`` admits exactly the externals the ``n`` island firings
    are entitled to (``init_pop`` once, then ``pop`` each) through a
    private *gate* ring, then fires members data-driven until quiescent.
    Members run their ordinary batched kernels — a linear loop body is
    one matmul over every iteration the delay ring's lookahead allows —
    so only the cycle's true sequential dependency is paid per round.
    The gate is what makes batching upstream safe: producers may flush
    arbitrarily large blocks into ``ring_in`` without the island racing
    ahead of its simulated schedule.
    """

    kind = "feedback"

    #: Drain-round ceiling; a healthy island consumes ≥1 external per
    #: cycle iteration, so this only trips on planner bugs.
    MAX_ROUNDS = 100_000_000

    def __init__(self, name: str, ring_in, gate, members: list[IslandMember],
                 pop: int, push: int, init_pop: int | None = None,
                 init_push: int | None = None):
        self.name = name
        self.ring_in = ring_in
        self.gate = gate
        self.members = members
        self.pop = pop
        self.push = push
        self.init_pop = init_pop
        self.init_push = init_push
        self._fired_init = False

    def execute(self, n: int) -> None:
        take = 0
        if self.init_pop is not None and not self._fired_init:
            take += self.init_pop
            n -= 1
        self._fired_init = True
        take += n * self.pop
        if take:
            self.gate.push_array(self.ring_in.pop_block_array(take))
        # ring-backed mirror of probe_island's drain loop: init gating
        # and batch sizing must stay identical or the certified rates
        # diverge from what actually executes
        rounds = 0
        progress = True
        while progress:
            rounds += 1
            if rounds > self.MAX_ROUNDS:
                raise InterpError(
                    f"feedback island {self.name!r}: drain did not "
                    "quiesce (planner bug)")
            progress = False
            for m in self.members:
                if m.has_init and not m.fired:
                    ok = all(len(r) >= need for r, need
                             in zip(m.in_rings, m.init_needs))
                    if not ok:
                        continue
                    m.step.execute(1)
                    m.fired = True
                    progress = True
                k = m.feasible()
                if k:
                    m.step.execute(k)
                    m.fired = True
                    progress = True


class DuplicateSplitStep(Step):
    kind = "dup-split"

    def __init__(self, ring_in, rings_out):
        self.ring_in = ring_in
        self.rings_out = rings_out

    def execute(self, n: int) -> None:
        block = self.ring_in.pop_block_array(n)
        for ring in self.rings_out:
            ring.push_array(block)


class RoundRobinSplitStep(Step):
    kind = "rr-split"

    def __init__(self, ring_in, rings_out, weights):
        self.ring_in = ring_in
        self.rings_out = rings_out
        self.weights = weights
        self.total = sum(weights)

    def execute(self, n: int) -> None:
        block = self.ring_in.pop_block_array(n * self.total)
        block = block.reshape(n, self.total)
        off = 0
        for ring, w in zip(self.rings_out, self.weights):
            if w:
                ring.push_array(block[:, off:off + w].reshape(-1))
                off += w


class RoundRobinJoinStep(Step):
    kind = "rr-join"

    def __init__(self, rings_in, ring_out, weights):
        self.rings_in = rings_in
        self.ring_out = ring_out
        self.weights = weights
        self.total = sum(weights)

    def execute(self, n: int) -> None:
        out = self.ring_out.alloc_push(n * self.total).reshape(n, self.total)
        off = 0
        for ring, w in zip(self.rings_in, self.weights):
            if w:
                out[:, off:off + w] = ring.pop_block_array(n * w).reshape(n, w)
                off += w


class CollectorStep(Step):
    kind = "collector"

    def __init__(self, ring_in, collected):
        self.ring_in = ring_in
        self.collected = collected
        # ArrayCollector sinks collect into a FloatVec: append the block
        # as an ndarray instead of boxing every sample through tolist()
        self._extend = getattr(collected, "extend_array", None)

    def execute(self, n: int) -> None:
        block = self.ring_in.pop_block_array(n)
        if self._extend is not None:
            self._extend(block)
        else:
            self.collected.extend(block.tolist())


class ListSourceStep(Step):
    kind = "list-source"

    def __init__(self, ring_out, values):
        self.ring_out = ring_out
        self.values = np.asarray(values, dtype=float)
        self.pos = 0

    def execute(self, n: int) -> None:
        if self.pos + n > len(self.values):
            raise InterpError("plan fired exhausted ListSource")
        self.ring_out.push_array(self.values[self.pos:self.pos + n])
        self.pos += n


class ChunkSourceStep(Step):
    """Block transfer out of a :class:`~repro.runtime.builtins.
    ChunkSource`'s ring — the ndarray-native feed of a push session."""

    kind = "chunk-source"

    def __init__(self, ring_out, source):
        self.ring_out = ring_out
        self.source = source

    def execute(self, n: int) -> None:
        buffer = self.source.buffer
        if n > len(buffer):
            raise InterpError("plan fired exhausted ChunkSource")
        self.ring_out.push_array(buffer.pop_block_array(n))


class FunctionSourceStep(Step):
    kind = "function-source"

    def __init__(self, ring_out, fn):
        self.ring_out = ring_out
        self.fn = fn
        self.pos = 0

    def execute(self, n: int) -> None:
        fn = self.fn
        start = self.pos
        self.ring_out.push_array(
            np.fromiter((float(fn(i)) for i in range(start, start + n)),
                        dtype=float, count=n))
        self.pos += n


class ConstantSourceStep(Step):
    kind = "const-source"

    def __init__(self, ring_out, values):
        self.ring_out = ring_out
        self.values = np.asarray(values, dtype=float)

    def execute(self, n: int) -> None:
        self.ring_out.push_array(np.tile(self.values, n))


class IdentityStep(Step):
    kind = "identity"

    def __init__(self, ring_in, ring_out):
        self.ring_in = ring_in
        self.ring_out = ring_out

    def execute(self, n: int) -> None:
        self.ring_out.push_array(self.ring_in.pop_block_array(n))


class DecimatorStep(Step):
    """Keep the first ``u`` of every ``u*o`` items, batched."""

    kind = "decimator"

    def __init__(self, ring_in, ring_out, o: int, u: int):
        self.ring_in = ring_in
        self.ring_out = ring_out
        self.o = o
        self.u = u

    def execute(self, n: int) -> None:
        uo = self.u * self.o
        block = self.ring_in.pop_block_array(n * uo).reshape(n, uo)
        self.ring_out.push_array(block[:, :self.u].reshape(-1))
