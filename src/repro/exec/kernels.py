"""Batched step kernels executed by the plan backend.

Each step executes ``n`` consecutive firings of one flattened graph node
against :class:`~repro.exec.ring.RingBuffer` channels:

* :class:`MatmulStep` — a linear filter's ``n`` firings collapse into one
  ``(n, peek) @ (peek, push)`` NumPy matrix product over a strided window
  view of the input ring (the paper's "linear filters are matrix
  multiplications", applied across firings instead of within one);
* splitter/joiner steps become reshape + strided scatter/gather;
* trivial primitives (identity, decimator, sources, collector) become
  block transfers;
* :class:`FallbackStep` fires the node's existing scalar runner (compiled
  work function or primitive runner) ``n`` times — the escape hatch for
  non-linear or stateful filters, with exact FLOP-count parity.

FLOP accounting: every step reports exactly the operations the scalar
backends would have counted for the same firings, so profiles are
bit-identical across ``interp``/``compiled``/``plan``.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpError
from ..profiling import Counts, Profiler


class Step:
    """One plan step: executes batched firings of a single node."""

    #: debugging/introspection label set by the planner
    kind = "step"

    def execute(self, n: int) -> None:
        raise NotImplementedError


class MatmulStep(Step):
    """Batched affine map ``Y = X[:, ::-1] @ A + b`` for a linear node.

    ``filter_name`` is set for :class:`~repro.linear.filters.LinearFilter`
    leaves (whose scalar runners attribute counts per filter); it is left
    ``None`` for IR filters, matching the compiled backend's aggregate-only
    accounting.
    """

    kind = "matmul"

    def __init__(self, ring_in, ring_out, A: np.ndarray, b: np.ndarray,
                 peek: int, pop: int, push: int, counts: Counts,
                 profiler: Profiler, filter_name: str | None = None):
        self.ring_in = ring_in
        self.ring_out = ring_out
        self.A = np.ascontiguousarray(A[::-1])  # row i <=> peek(i)
        self.b = np.asarray(b, dtype=float)
        self.has_b = bool(np.any(self.b != 0.0))
        self.peek = peek
        self.pop = pop
        self.push = push
        self.counts = counts
        self.profiler = profiler
        self.filter_name = filter_name

    def execute(self, n: int) -> None:
        X = self.ring_in.window_view(n, self.pop, self.peek)
        # window rows are [peek(0)..peek(e-1)]; A was pre-reversed so that
        # X @ A == (X[:, ::-1]) @ A_thesis, avoiding a strided copy.
        Y = X @ self.A
        if self.has_b:
            Y += self.b
        if self.push:
            # push order within a firing is y[u-1] first
            self.ring_out.push_array(Y[:, ::-1].reshape(-1))
        self.ring_in.pop_block(n * self.pop)
        self.profiler.add_counts(self.counts, times=n,
                                 filter_name=self.filter_name)


class FallbackStep(Step):
    """Scalar escape hatch: fire the node's existing runner ``n`` times."""

    kind = "fallback"

    def __init__(self, node, ring_in, ring_out):
        self.node = node
        self.ring_in = ring_in
        self.ring_out = ring_out

    def execute(self, n: int) -> None:
        fire = self.node.runner.fire
        ch_in, ch_out = self.ring_in, self.ring_out
        for _ in range(n):
            fire(ch_in, ch_out)


class DuplicateSplitStep(Step):
    kind = "dup-split"

    def __init__(self, ring_in, rings_out):
        self.ring_in = ring_in
        self.rings_out = rings_out

    def execute(self, n: int) -> None:
        block = self.ring_in.pop_block_array(n)
        for ring in self.rings_out:
            ring.push_array(block)


class RoundRobinSplitStep(Step):
    kind = "rr-split"

    def __init__(self, ring_in, rings_out, weights):
        self.ring_in = ring_in
        self.rings_out = rings_out
        self.weights = weights
        self.total = sum(weights)

    def execute(self, n: int) -> None:
        block = self.ring_in.pop_block_array(n * self.total)
        block = block.reshape(n, self.total)
        off = 0
        for ring, w in zip(self.rings_out, self.weights):
            if w:
                ring.push_array(block[:, off:off + w].reshape(-1))
                off += w


class RoundRobinJoinStep(Step):
    kind = "rr-join"

    def __init__(self, rings_in, ring_out, weights):
        self.rings_in = rings_in
        self.ring_out = ring_out
        self.weights = weights
        self.total = sum(weights)

    def execute(self, n: int) -> None:
        out = np.empty((n, self.total))
        off = 0
        for ring, w in zip(self.rings_in, self.weights):
            if w:
                out[:, off:off + w] = ring.pop_block_array(n * w).reshape(n, w)
                off += w
        self.ring_out.push_array(out.reshape(-1))


class CollectorStep(Step):
    kind = "collector"

    def __init__(self, ring_in, collected: list):
        self.ring_in = ring_in
        self.collected = collected

    def execute(self, n: int) -> None:
        self.collected.extend(self.ring_in.pop_block_array(n).tolist())


class ListSourceStep(Step):
    kind = "list-source"

    def __init__(self, ring_out, values):
        self.ring_out = ring_out
        self.values = np.asarray(values, dtype=float)
        self.pos = 0

    def execute(self, n: int) -> None:
        if self.pos + n > len(self.values):
            raise InterpError("plan fired exhausted ListSource")
        self.ring_out.push_array(self.values[self.pos:self.pos + n])
        self.pos += n


class FunctionSourceStep(Step):
    kind = "function-source"

    def __init__(self, ring_out, fn):
        self.ring_out = ring_out
        self.fn = fn
        self.pos = 0

    def execute(self, n: int) -> None:
        fn = self.fn
        start = self.pos
        self.ring_out.push_array(
            np.fromiter((float(fn(i)) for i in range(start, start + n)),
                        dtype=float, count=n))
        self.pos += n


class ConstantSourceStep(Step):
    kind = "const-source"

    def __init__(self, ring_out, values):
        self.ring_out = ring_out
        self.values = np.asarray(values, dtype=float)

    def execute(self, n: int) -> None:
        self.ring_out.push_array(np.tile(self.values, n))


class IdentityStep(Step):
    kind = "identity"

    def __init__(self, ring_in, ring_out):
        self.ring_in = ring_in
        self.ring_out = ring_out

    def execute(self, n: int) -> None:
        self.ring_out.push_array(self.ring_in.pop_block_array(n))


class DecimatorStep(Step):
    """Keep the first ``u`` of every ``u*o`` items, batched."""

    kind = "decimator"

    def __init__(self, ring_in, ring_out, o: int, u: int):
        self.ring_in = ring_in
        self.ring_out = ring_out
        self.o = o
        self.u = u

    def execute(self, n: int) -> None:
        uo = self.u * self.o
        block = self.ring_in.pop_block_array(n * uo).reshape(n, uo)
        self.ring_out.push_array(block[:, :self.u].reshape(-1))
