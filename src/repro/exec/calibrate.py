"""Empirical cost-model calibration (the paper's §5 ATLAS argument).

The selection DP prices implementations with analytic FLOP formulas, but
the paper's own measurements (and ATLAS before it) show that constant
factors are machine facts, not model facts: the relative throughput of a
dense matmul vs. an FFT convolution — and the block length at which the
lifted state-space scan runs fastest — vary with cache sizes, SIMD
width, and the BLAS/pocketfft builds actually installed.  This module
measures exactly those constants once per machine and dtype:

* **matmul** ns-per-flop of a dense ``(B, e) @ (e, u)`` product, per
  filter-depth bucket ``e`` in :data:`MATMUL_BUCKETS`;
* **fft** ns-per-flop of a batched rfft → pointwise product → irfft
  round trip (the plan backend's frequency kernel), per FFT-size bucket
  in :data:`FFT_BUCKETS` — both priced in the *analytic* flop units the
  DP uses, so their ratio slots directly into
  :func:`~repro.selection.costs.batched_frequency_cost` in place of the
  modeled :data:`~repro.selection.costs.FFT_THROUGHPUT_PENALTY`;
* the fastest **stateful scan block length** among
  :data:`STATEFUL_BLOCKS`, replacing the fixed 128-element cap in
  :func:`~repro.exec.kernels.stateful_block_length`.

Results persist as JSON under ``$REPRO_CALIBRATION_DIR`` (default
``~/.cache/repro``) together with a machine fingerprint
(platform/python/numpy); a fingerprint or version mismatch makes the
file invisible — consumers see "no calibration" and fall back to the
analytic constants, never a stale machine's numbers.  FLOP *counts* are
never calibrated, only time constants: profiles stay bit-identical
whether or not a calibration file exists.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import sys
import time

import numpy as np

from ..frequency.fftlib import elementwise_complex_mult_counts, fftw_counts

#: Bump when the measurement protocol changes; old files are ignored.
CALIBRATION_VERSION = 1

#: Filter-depth buckets (columns of the dense matmul) measured.
MATMUL_BUCKETS = (16, 64, 256)

#: FFT sizes measured (the overlap-save sizes small/medium/large
#: frequency filters actually pick).
FFT_BUCKETS = (256, 1024, 4096)

#: Candidate block lengths for the lifted stateful scan.
STATEFUL_BLOCKS = (16, 32, 64, 128, 256, 512)


def machine_fingerprint() -> dict:
    """Identity of the machine + numeric stack a calibration is valid on."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


def calibration_path() -> str:
    """Where the calibration file lives (``$REPRO_CALIBRATION_DIR``
    overrides the default ``~/.cache/repro``)."""
    base = os.environ.get("REPRO_CALIBRATION_DIR")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return os.path.join(base, "calibration.json")


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _best_time(fn, repeats: int = 3) -> float:
    """Minimum wall time of ``fn()`` over ``repeats`` runs (one warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _randn(rng, shape, dtype):
    x = rng.standard_normal(shape)
    if np.dtype(dtype).kind == "c":
        x = x + 1j * rng.standard_normal(shape)
    return np.ascontiguousarray(x.astype(dtype))


def _measure_matmul(dtype, e: int, rng) -> float:
    """ns per analytic flop of a dense (B, e) @ (e, u) product.

    "Analytic flop" is the DP's real-arithmetic unit (2·B·e·u regardless
    of dtype): a complex dtype's extra real work shows up as larger
    measured ns-per-flop, which is exactly the constant the DP needs.
    """
    B, u = 512, 8
    X = _randn(rng, (B, e), dtype)
    A = _randn(rng, (e, u), dtype)
    flops = 2.0 * B * e * u
    t = _best_time(lambda: X @ A)
    return t * 1e9 / flops


def _measure_fft(dtype, n: int, rng) -> float:
    """ns per analytic flop of the batched overlap-save convolution.

    Mirrors the plan backend's frequency kernel: one batched forward
    transform, a pointwise spectrum product against ``u`` kernels, one
    batched inverse.  Priced with the same :func:`fftw_counts`-based
    formula the DP uses, so the fft/matmul ratio is dimensionless.
    """
    k, u = 32, 4
    is_complex = np.dtype(dtype).kind == "c"
    blocks = _randn(rng, (k, n), dtype)
    kernels = _randn(rng, (n // 4, u), dtype)
    if is_complex:
        H = np.fft.fft(kernels, n=n, axis=0)

        def run():
            X = np.fft.fft(blocks, n=n, axis=1)
            Y = X[:, :, None] * H[None, :, :]
            np.fft.ifft(Y, n=n, axis=1)
    else:
        H = np.fft.rfft(kernels, n=n, axis=0)

        def run():
            X = np.fft.rfft(blocks, n=n, axis=1)
            Y = X[:, :, None] * H[None, :, :]
            np.fft.irfft(Y, n=n, axis=1)

    per_block = fftw_counts(n).scaled(1 + u)
    per_block.add(elementwise_complex_mult_counts(n // 2 + 1).scaled(u))
    flops = float(per_block.flops) * k
    t = _best_time(run)
    return t * 1e9 / flops


def _measure_stateful_block(dtype, rng) -> int:
    """The fastest lifted-scan block length for this dtype.

    Emulates :class:`~repro.exec.kernels.StatefulLinearStep`'s block
    structure: per block, a lifted output-map product against a dense
    ``(B·p, B·u)`` matrix (work grows with B — the dense lower-triangle
    waste) plus a sequential state carry (Python-loop overhead shrinks
    with B).  The best B balances the two; that balance point is a
    machine fact, which is why it is measured rather than fixed at 128.
    """
    p = u = 1
    state_dim = 4
    rows = 4096
    best_b, best_t = STATEFUL_BLOCKS[0], float("inf")
    for b in STATEFUL_BLOCKS:
        nblocks = rows // b
        X = _randn(rng, (nblocks, b * p), dtype)
        Cxr = _randn(rng, (b * p, b * u), dtype)
        As = _randn(rng, (state_dim, state_dim), dtype)
        # contract the state map (spectral radius < 1) so the recurrence
        # stays bounded — a divergent iterate would overflow to inf/nan
        # and time denormal/NaN arithmetic instead of the real kernel
        As = As / (np.linalg.norm(As) * 1.25)
        Axr = _randn(rng, (b * p, state_dim), dtype)
        zero = np.zeros(state_dim, dtype=dtype)

        def run():
            S = X @ Axr
            s = zero
            for i in range(nblocks):
                s = s @ As + S[i]
                X[i] @ Cxr

        t = _best_time(run) / rows
        if t < best_t:
            best_b, best_t = b, t
    return best_b


def _measure_dtype(dtype) -> dict:
    rng = np.random.default_rng(1234)
    return {
        "matmul_ns_per_flop": {str(e): _measure_matmul(dtype, e, rng)
                               for e in MATMUL_BUCKETS},
        "fft_ns_per_flop": {str(n): _measure_fft(dtype, n, rng)
                            for n in FFT_BUCKETS},
        "stateful_block": _measure_stateful_block(dtype, rng),
    }


# ---------------------------------------------------------------------------
# The calibration record
# ---------------------------------------------------------------------------


class Calibration:
    """Measured machine constants, per dtype name (``"f64"``, ...)."""

    def __init__(self, fingerprint: dict, dtypes: dict | None = None):
        self.fingerprint = fingerprint
        #: dtype name -> {"matmul_ns_per_flop": {bucket: ns},
        #:                "fft_ns_per_flop": {bucket: ns},
        #:                "stateful_block": int}
        self.dtypes: dict = dtypes if dtypes is not None else {}

    @staticmethod
    def _nearest(table: dict, target: int) -> float | None:
        if not table:
            return None
        key = min(table, key=lambda k: abs(int(k) - target))
        return float(table[key])

    def matmul_ns_per_flop(self, policy_name: str = "f64",
                           e: int = 64) -> float | None:
        d = self.dtypes.get(policy_name)
        if d is None:
            return None
        return self._nearest(d.get("matmul_ns_per_flop", {}), e)

    def fft_ns_per_flop(self, policy_name: str = "f64",
                        n: int = 1024) -> float | None:
        d = self.dtypes.get(policy_name)
        if d is None:
            return None
        return self._nearest(d.get("fft_ns_per_flop", {}), n)

    def fft_matmul_ratio(self, policy_name: str = "f64", peek: int = 64,
                         fft_size: int = 1024) -> float | None:
        """Measured per-flop cost of the FFT path relative to the dense
        matmul — the empirical replacement for the modeled
        :data:`~repro.selection.costs.FFT_THROUGHPUT_PENALTY`."""
        f = self.fft_ns_per_flop(policy_name, fft_size)
        m = self.matmul_ns_per_flop(policy_name, peek)
        if not f or not m:
            return None
        return f / m

    @property
    def stateful_block(self) -> dict:
        """dtype name -> measured best scan block length."""
        return {name: int(d["stateful_block"])
                for name, d in self.dtypes.items()
                if d.get("stateful_block")}

    def to_json(self) -> dict:
        return {"version": CALIBRATION_VERSION,
                "fingerprint": self.fingerprint,
                "dtypes": self.dtypes}


# ---------------------------------------------------------------------------
# Persistence and the process-wide active record
# ---------------------------------------------------------------------------

_UNLOADED = object()
_ACTIVE: object = _UNLOADED


def load_calibration() -> Calibration | None:
    """The on-disk calibration, or None (absent, corrupt, wrong version,
    or measured on a different machine/stack)."""
    try:
        with open(calibration_path(), encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("version") != CALIBRATION_VERSION:
        return None
    if data.get("fingerprint") != machine_fingerprint():
        return None
    dtypes = data.get("dtypes")
    if not isinstance(dtypes, dict):
        return None
    return Calibration(data["fingerprint"], dtypes)


def save_calibration(cal: Calibration) -> str:
    """Atomically persist ``cal``; returns the path written.

    The temp file gets a unique per-writer name (``mkstemp`` in the
    destination directory): concurrent cold calibrators — e.g. parallel
    workers racing to warm the same cache — each stage a private file
    and the ``os.replace`` publishes whole records only.  A fixed temp
    name would let two writers interleave into one file before either
    rename, leaving corrupt JSON on disk.
    """
    import tempfile

    path = calibration_path()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(cal.to_json(), f, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def active_calibration() -> Calibration | None:
    """The calibration consulted by cost models and kernels.

    Loaded from disk lazily, once per process; absent/invalid files give
    None and every consumer falls back to analytic constants.  Tests
    redirect ``$REPRO_CALIBRATION_DIR`` and call
    :func:`reset_calibration_cache` around the change.
    """
    global _ACTIVE
    if _ACTIVE is _UNLOADED:
        _ACTIVE = load_calibration()
    return _ACTIVE  # type: ignore[return-value]


def reset_calibration_cache() -> None:
    """Forget the loaded calibration; the next consumer re-reads disk."""
    global _ACTIVE
    _ACTIVE = _UNLOADED


@contextlib.contextmanager
def analytic_only():
    """Temporarily hide any calibration: cost models and kernels fall
    back to their analytic constants inside the block.  Used to put the
    measured and modeled decisions side by side."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = prev


def ensure_calibration(dtypes=("f64",), force: bool = False):
    """Measure any missing dtypes and persist; returns
    ``(calibration, measured_names)``.

    ``measured_names`` is empty when every requested dtype was already
    on disk for this machine (the warm path re-measures nothing) —
    CI's calibration smoke asserts exactly that.
    """
    from ..numeric import resolve_policy

    cal = load_calibration()
    if cal is None:
        cal = Calibration(machine_fingerprint())
    measured: list[str] = []
    for spec in dtypes:
        pol = resolve_policy(spec)
        if force or pol.name not in cal.dtypes:
            cal.dtypes[pol.name] = _measure_dtype(pol.dtype)
            measured.append(pol.name)
    if measured:
        save_calibration(cal)
    global _ACTIVE
    _ACTIVE = cal
    return cal, measured


def main(argv=None) -> int:
    """``python -m repro.exec.calibrate [--dtype ...] [--force]``"""
    import argparse

    from ..numeric import DTYPE_CHOICES

    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.calibrate",
        description="Measure and persist per-machine cost-model "
                    "constants (matmul/FFT throughput, scan block size).")
    parser.add_argument("--dtype", action="append", choices=DTYPE_CHOICES,
                        help="dtype to calibrate (repeatable; default f64)")
    parser.add_argument("--force", action="store_true",
                        help="re-measure even if already calibrated")
    args = parser.parse_args(argv)
    dtypes = args.dtype or ["f64"]
    _, measured = ensure_calibration(dtypes, force=args.force)
    print(json.dumps({"measured": measured, "reused": not measured,
                      "path": calibration_path()}))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
