"""Plan caching: structural fingerprints and the compiled-plan cache.

Planning a graph is not free: the ``optimize=`` rewrite runs whole-graph
linear analysis (and possibly the selection DP), the planner probes every
IR filter for vectorizability (extraction + one interpreted firing), and
every ``run`` re-simulates the integer rate schedule.  For Radar this
planning work dominates the actual batched execution several times over.

The cache keys all of it on a **content fingerprint** of the stream
graph: a hash over the hierarchy (construct types, splitter/joiner
weights, enqueued values), each IR filter's printed work/prework functions
and field values, and each known primitive's defining data (source values,
linear-node matrices, FFT sizes).  Content hashing means a *rebuilt*
graph with identical coefficients hits the cache, while mutating a field
array in place changes the fingerprint and cleanly invalidates the entry.
Primitives the fingerprinter does not know hash by object identity — the
entry pins the source stream so such ids cannot be recycled while the
entry lives.

A :class:`PlanEntry` carries everything reusable across runs:

* the rewritten (post-``optimize``) stream,
* the whole-graph bailout verdict,
* per-node vectorization *decisions* (linear node + probed FLOP counts,
  or the fallback reason) so a cache hit skips extraction entirely,
* recorded **schedule traces** — the exact ``(step, firings)`` sequence a
  prior run flushed, keyed by ``(chunk_outputs, n_outputs)`` — so a
  repeated run replays batched steps without re-simulating rates.

Mutable execution state (ring buffers, fallback runners, profilers) is
*never* cached; every run builds a fresh executor around the shared
immutable plan.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             PrimitiveFilter, RoundRobin, SplitJoin, Stream)
from ..ir.printer import work_to_str

_UNSET = object()  # bailout not yet computed


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _u(h, *parts) -> None:
    for p in parts:
        h.update(str(p).encode())
        h.update(b"\x1f")


def _fp_array(h, arr) -> None:
    arr = np.asarray(arr)
    _u(h, arr.dtype.str, arr.shape)
    h.update(arr.tobytes())


def _fp_fields(h, fields: dict) -> None:
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, np.ndarray):
            _u(h, "arr", key)
            _fp_array(h, value)
        else:
            _u(h, "val", key, repr(value))


def _fp_linear_node(h, node) -> None:
    _u(h, "node", node.peek, node.pop, node.push)
    _fp_array(h, node.A)
    _fp_array(h, node.b)


def _fp_primitive(h, s: PrimitiveFilter) -> None:
    # imports deferred: these modules import graph machinery themselves
    from ..frequency.filters import Decimator, _FreqBase
    from ..linear.filters import ConstantSourceFilter, LinearFilter
    from ..runtime.builtins import (Collector, FunctionSource, Identity,
                                    ListSource)

    _u(h, s.peek, s.pop, s.push, s.init_peek, s.init_pop, s.init_push)
    if isinstance(s, ListSource):
        _fp_array(h, np.asarray(s.values, dtype=float))
    elif isinstance(s, ConstantSourceFilter):
        _fp_array(h, s.values)
    elif isinstance(s, FunctionSource):
        _u(h, "fn", id(s.fn))  # opaque callable: identity (entry pins it)
    elif isinstance(s, LinearFilter):
        _u(h, s.backend)
        _fp_linear_node(h, s.linear_node)
    elif isinstance(s, _FreqBase):
        _u(h, s.backend, s.n)
        _fp_linear_node(h, s.linear_node_time_domain)
    elif isinstance(s, (Decimator, Identity, Collector)):
        pass  # fully described by type + rates
    else:
        node = getattr(s, "linear_node", None)
        if node is not None:  # e.g. redundancy-elimination filters
            _fp_linear_node(h, node)
        else:
            _u(h, "id", id(s))  # unknown primitive: identity (pinned)


def _fp_stream(h, s: Stream) -> None:
    _u(h, type(s).__name__, getattr(s, "name", ""))
    if isinstance(s, Filter):
        _u(h, work_to_str(s.work),
           work_to_str(s.prework) if s.prework is not None else "-",
           sorted(s.mutable_fields))
        _fp_fields(h, s.fields)
    elif isinstance(s, PrimitiveFilter):
        _fp_primitive(h, s)
    elif isinstance(s, Pipeline):
        _u(h, len(s.children))
        for c in s.children:
            _fp_stream(h, c)
    elif isinstance(s, SplitJoin):
        _u(h, str(s.splitter), str(s.joiner), len(s.children))
        for c in s.children:
            _fp_stream(h, c)
    elif isinstance(s, FeedbackLoop):
        _u(h, str(s.joiner), str(s.splitter), s.enqueued)
        _fp_stream(h, s.body)
        _fp_stream(h, s.loop)
    else:
        raise TypeError(f"cannot fingerprint {s!r}")


def stream_fingerprint(stream: Stream) -> bytes:
    """Content digest of a stream graph (structure + coefficients)."""
    h = hashlib.blake2b(digest_size=16)
    _fp_stream(h, stream)
    return h.digest()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


#: Schedule traces kept per entry; a sweep over many distinct n_outputs
#: values keeps only the most recent few instead of growing forever.
MAX_TRACES_PER_ENTRY = 8


class _TraceStore(dict):
    """Insertion-ordered trace map with a size cap (oldest evicted)."""

    def setdefault(self, key, value):
        if key not in self and len(self) >= MAX_TRACES_PER_ENTRY:
            del self[next(iter(self))]
        return super().setdefault(key, value)


@dataclass
class PlanEntry:
    """Immutable plan artifacts shared by every run of one (graph, mode).

    The fingerprint covers source *values* (a ``ListSource``'s data feeds
    the outputs and the exhaustion schedule, and ``entry.optimized``
    embeds the first caller's source objects), so sharing is only safe
    between content-identical graphs; ``run_stream`` with per-call-unique
    inputs therefore misses by design, bounded by the LRU.
    """

    pin: Stream  # keeps id()-fingerprinted objects alive
    optimized: Stream | None = None
    bailout: object = _UNSET  # str | None once computed
    #: node index -> (LinearNode, Counts) or (None, reason)
    decisions: dict | None = None
    #: (chunk_outputs, n_outputs) -> [(step_index, firings), ...]
    traces: _TraceStore = field(default_factory=_TraceStore)


class PlanCache:
    """LRU cache of :class:`PlanEntry` keyed by (fingerprint, optimize)."""

    def __init__(self, max_entries: int = 32):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, PlanEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def entry_for(self, stream: Stream, optimize: str) -> PlanEntry:
        key = (stream_fingerprint(stream), optimize)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = PlanEntry(pin=stream)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache used by ``run_graph(..., backend="plan")``.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict:
    """Hit/miss/entry counters of the global plan cache."""
    return PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop every cached plan (test isolation, coefficient sweeps)."""
    PLAN_CACHE.clear()
