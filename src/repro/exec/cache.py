"""Plan caching: structural fingerprints and the compiled-plan cache.

Planning a graph is not free: the ``optimize=`` rewrite runs whole-graph
linear analysis (and possibly the selection DP), the planner probes every
IR filter for vectorizability (extraction + one interpreted firing), and
every ``run`` re-simulates the integer rate schedule.  For Radar this
planning work dominates the actual batched execution several times over.

The cache keys all of it on a **content fingerprint** of the stream
graph: a hash over the hierarchy (construct types, splitter/joiner
weights, feedback delays and enqueued values), each IR filter's printed
work/prework functions and field values, and each known primitive's
defining data (source values, linear-node matrices, FFT sizes).  Content
hashing means a *rebuilt* graph with identical coefficients hits the
cache, while mutating a field array in place changes the fingerprint and
cleanly invalidates the entry.

Values the fingerprinter cannot encode by content degrade in two
explicit ways:

* **identity-pin** — field values of unknown type hash by ``id()``; the
  entry pins the stream so the id cannot be recycled while it lives.
* **single-use** — opaque *callables* (``FunctionSource.fn``) and
  unknown primitives are snapshotted by content where possible (code
  bytes, closure cells, ``__dict__`` state); when no stable snapshot
  exists the whole fingerprint is flagged unstable and the entry is
  **not stored**: mutating such an object in place must never replay a
  stale plan or schedule trace, so every run re-plans.

A :class:`PlanEntry` carries everything reusable across runs:

* the rewritten (post-``optimize``) stream,
* the whole-graph bailout verdict,
* per-node vectorization *decisions* (linear node + probed FLOP counts,
  or the fallback reason) so a cache hit skips extraction entirely,
* recorded **schedule traces** — the exact ``(step, firings)`` sequence a
  prior run flushed, keyed by ``(chunk_outputs, n_outputs)`` — so a
  repeated run replays batched steps without re-simulating rates.

Mutable execution state (ring buffers, fallback runners, profilers) is
*never* cached; every run builds a fresh executor around the shared
immutable plan.
"""

from __future__ import annotations

import functools
import hashlib
import threading
import types
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .. import faults as _faults
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             PrimitiveFilter, RoundRobin, SplitJoin, Stream)
from ..ir.printer import work_to_str
from ..numeric import DEFAULT_POLICY, NumericPolicy

_UNSET = object()  # bailout not yet computed


# ---------------------------------------------------------------------------
# Stable value tokens
# ---------------------------------------------------------------------------


def _stable_token(value, depth: int = 0) -> str | None:
    """A process-independent content encoding of ``value``, or None.

    ``repr`` is not safe as a fingerprint ingredient: default reprs
    embed memory addresses (rebuilt graphs miss; recycled addresses can
    alias) and ndarray/dict reprs truncate (distinct values collide).
    This encodes the types we can do exactly — tagged so ``1`` , ``1.0``
    and ``"1"`` stay distinct — and refuses the rest.
    """
    if depth > 8:
        return None
    if value is None or isinstance(value, (bool, int, float, complex,
                                           str, bytes)):
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, np.generic):
        return f"np:{value.dtype.str}:{value.item()!r}"
    if isinstance(value, np.ndarray):
        return (f"arr:{value.dtype.str}:{value.shape}:"
                + value.tobytes().hex())
    if isinstance(value, (tuple, list)):
        items = [_stable_token(v, depth + 1) for v in value]
        if any(t is None for t in items):
            return None
        return f"{type(value).__name__}:[" + ",".join(items) + "]"
    if isinstance(value, dict):
        pairs = []
        for k, v in value.items():
            kt = _stable_token(k, depth + 1)
            vt = _stable_token(v, depth + 1)
            if kt is None or vt is None:
                return None
            pairs.append(f"{kt}={vt}")
        return "dict:{" + ",".join(sorted(pairs)) + "}"
    if isinstance(value, (set, frozenset)):
        items = [_stable_token(v, depth + 1) for v in value]
        if any(t is None for t in items):
            return None
        return f"{type(value).__name__}:{{" + ",".join(sorted(items)) + "}"
    return None


def _code_token(code, depth: int = 0) -> str | None:
    consts = []
    for c in code.co_consts:
        if isinstance(c, types.CodeType):  # nested lambda/function
            t = _code_token(c, depth + 1)
        else:
            t = _stable_token(c, depth + 1)
        if t is None:
            return None
        consts.append(t)
    return (f"code:{code.co_code.hex()}:[" + ",".join(consts) + "]:"
            + ",".join(code.co_names))


def _ref_token(value, depth: int) -> str | None:
    """Token for a value a function *references* (global or closure):
    plain data, a module (stable by name), or another callable."""
    t = _stable_token(value, depth)
    if t is not None:
        return t
    if isinstance(value, types.ModuleType):
        return f"module:{value.__name__}"
    return _callable_token(value, depth)


def _globals_token(fn: types.FunctionType, depth: int) -> str | None:
    """Snapshot of the module globals ``fn``'s code actually reads.

    Identical code bytes reading different globals (``GAIN = 1.0`` in
    one module, ``100.0`` in another) must not collide, so every
    ``co_names`` entry bound in ``fn.__globals__`` — including names
    referenced from nested code objects — joins the fingerprint.
    Builtins and pure attribute names are absent from ``__globals__``
    and are skipped.
    """
    names: set[str] = set()

    def collect(code):
        names.update(code.co_names)
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                collect(const)

    collect(fn.__code__)
    parts = []
    for name in sorted(names):
        if name not in fn.__globals__:
            continue
        t = _ref_token(fn.__globals__[name], depth + 1)
        if t is None:
            return None
        parts.append(f"{name}={t}")
    return "{" + ",".join(parts) + "}"


def _callable_token(fn, depth: int = 0) -> str | None:
    """Content snapshot of a callable including its mutable state
    (closure cells, defaults, referenced globals, bound instance
    state), or None when no stable snapshot exists."""
    if depth > 4:
        return None
    if isinstance(fn, types.BuiltinFunctionType):
        base = f"builtin:{getattr(fn, '__module__', '')}.{fn.__qualname__}"
        self_obj = getattr(fn, "__self__", None)
        if self_obj is None or isinstance(self_obj, types.ModuleType):
            return base  # math.sin and friends: stable by name
        # bound builtin (d.__getitem__): the receiver IS the state
        t = _stable_token(self_obj, depth + 1)
        if t is None:
            return None
        return f"{base}:{t}"
    if isinstance(fn, functools.partial):
        inner = _callable_token(fn.func, depth + 1)
        args = _stable_token(fn.args, depth + 1)
        kw = _stable_token(fn.keywords, depth + 1)
        if inner is None or args is None or kw is None:
            return None
        return f"partial:{inner}:{args}:{kw}"
    if isinstance(fn, types.MethodType):
        inner = _callable_token(fn.__func__, depth + 1)
        self_state = _stable_token(getattr(fn.__self__, "__dict__", None),
                                   depth + 1)
        if inner is None or self_state is None:
            return None
        return (f"method:{type(fn.__self__).__qualname__}:"
                f"{inner}:{self_state}")
    if isinstance(fn, types.FunctionType):
        code = _code_token(fn.__code__)
        if code is None:
            return None
        defaults = _stable_token(fn.__defaults__, depth + 1)
        kwdefaults = _stable_token(fn.__kwdefaults__, depth + 1)
        globals_tok = _globals_token(fn, depth)
        if defaults is None or kwdefaults is None or globals_tok is None:
            return None
        cells = []
        for cell in fn.__closure__ or ():
            try:
                t = _ref_token(cell.cell_contents, depth + 1)
            except ValueError:  # empty cell
                t = "cell:empty"
            if t is None:
                return None
            cells.append(t)
        return (f"fn:{code}:{defaults}:{kwdefaults}:{globals_tok}:["
                + ",".join(cells) + "]")
    return None


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


class _Fingerprinter:
    """Accumulates the digest plus the *stability* verdict.

    ``single_use`` flips when some reachable state had to be hashed by
    object identity *and* could be mutated invisibly (opaque callables,
    unknown primitives without a snapshotable ``__dict__``): such a
    fingerprint is only valid for the very run that computed it.
    """

    def __init__(self):
        self.h = hashlib.blake2b(digest_size=16)
        self.single_use = False

    def _u(self, *parts) -> None:
        for p in parts:
            self.h.update(str(p).encode())
            self.h.update(b"\x1f")

    def _array(self, arr) -> None:
        arr = np.asarray(arr)
        self._u(arr.dtype.str, arr.shape)
        self.h.update(arr.tobytes())

    def _fields(self, fields: dict) -> None:
        for key in sorted(fields):
            value = fields[key]
            if isinstance(value, np.ndarray):
                self._u("arr", key)
                self._array(value)
                continue
            token = _stable_token(value)
            if token is not None:
                self._u("val", key, token)
            else:
                # identity-pin: the entry pins the stream, so the id
                # cannot be recycled while the entry lives
                self._u("pin", key, id(value))

    def _linear_node(self, node) -> None:
        self._u("node", node.peek, node.pop, node.push)
        self._array(node.A)
        self._array(node.b)

    def _stateful_node(self, node) -> None:
        self._u("snode", node.peek, node.pop, node.push)
        for arr in (node.Ax, node.As, node.bx, node.Cx, node.Cs, node.bs,
                    node.s0):
            self._array(arr)

    def _primitive(self, s: PrimitiveFilter) -> None:
        # imports deferred: these modules import graph machinery themselves
        from ..frequency.filters import Decimator, _FreqBase
        from ..linear.filters import ConstantSourceFilter, LinearFilter
        from ..linear.state import StatefulLinearFilter
        from ..runtime.builtins import (ChunkSource, Collector,
                                        FunctionSource, Identity, ListSource)

        self._u(s.peek, s.pop, s.push, s.init_peek, s.init_pop, s.init_push)
        if isinstance(s, ChunkSource):
            # a push session's feed ring is consumed in place: two
            # content-identical graphs diverge as soon as either runs,
            # so the plan must never be shared (the session that built
            # it still amortizes it across its own pushes)
            self._u("chunk-src", id(s))
            self.single_use = True
        elif isinstance(s, ListSource):
            self._array(np.asarray(s.values, dtype=float))
        elif isinstance(s, ConstantSourceFilter):
            self._array(s.values)
        elif isinstance(s, FunctionSource):
            token = _callable_token(s.fn)
            if token is not None:
                self._u("fn", token)
            else:
                self._u("fn-id", id(s.fn))
                self.single_use = True
        elif isinstance(s, LinearFilter):
            self._u(s.backend)
            self._linear_node(s.linear_node)
        elif isinstance(s, StatefulLinearFilter):
            self._stateful_node(s.stateful_node)
        elif isinstance(s, _FreqBase):
            self._u(s.backend, s.n)
            self._linear_node(s.linear_node_time_domain)
        elif isinstance(s, (Decimator, Identity, Collector)):
            pass  # fully described by type + rates
        else:
            node = getattr(s, "linear_node", None)
            if node is not None:  # e.g. redundancy-elimination filters
                self._linear_node(node)
                return
            # unknown primitive: snapshot its instance state by content
            state = _stable_token(getattr(s, "__dict__", None))
            if state is not None:
                self._u("prim", type(s).__qualname__, state)
            else:
                self._u("id", id(s))
                self.single_use = True

    def stream(self, s: Stream) -> None:
        self._u(type(s).__name__, getattr(s, "name", ""))
        if isinstance(s, Filter):
            self._u(work_to_str(s.work),
                    work_to_str(s.prework) if s.prework is not None else "-",
                    sorted(s.mutable_fields))
            self._fields(s.fields)
        elif isinstance(s, PrimitiveFilter):
            self._primitive(s)
        elif isinstance(s, Pipeline):
            self._u(len(s.children))
            for c in s.children:
                self.stream(c)
        elif isinstance(s, SplitJoin):
            self._u(str(s.splitter), str(s.joiner), len(s.children))
            for c in s.children:
                self.stream(c)
        elif isinstance(s, FeedbackLoop):
            self._u(str(s.joiner), str(s.splitter), s.delay, s.enqueued)
            self.stream(s.body)
            self.stream(s.loop)
        else:
            raise TypeError(f"cannot fingerprint {s!r}")


def fingerprint_stream(stream: Stream) -> tuple[bytes, bool]:
    """(content digest, single_use) of a stream graph.

    Graphs elaborated from DSL source via the fingerprinting loader
    carry a precomputed ``_source_fingerprint`` — the digest of the
    (source text, top, args) triple — which short-circuits the walk:
    the source fingerprint *is* the cache key, so recompiling the same
    program hits the plan cache without re-hashing the graph.
    """
    cached = getattr(stream, "_source_fingerprint", None)
    if cached is not None:
        return cached
    fp = _Fingerprinter()
    fp.stream(stream)
    return fp.h.digest(), fp.single_use


def stream_fingerprint(stream: Stream) -> bytes:
    """Content digest of a stream graph (structure + coefficients)."""
    return fingerprint_stream(stream)[0]


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


#: Schedule traces kept per entry; a sweep over many distinct n_outputs
#: values keeps only the most recent few instead of growing forever.
MAX_TRACES_PER_ENTRY = 8


class _TraceStore(dict):
    """Insertion-ordered trace map with a size cap (oldest evicted)."""

    def setdefault(self, key, value):
        if key not in self and len(self) >= MAX_TRACES_PER_ENTRY:
            del self[next(iter(self))]
        return super().setdefault(key, value)


@dataclass
class PlanEntry:
    """Immutable plan artifacts shared by every run of one (graph, mode).

    The fingerprint covers source *values* (a ``ListSource``'s data feeds
    the outputs and the exhaustion schedule, and ``entry.optimized``
    embeds the first caller's source objects), so sharing is only safe
    between content-identical graphs; ``run_stream`` with per-call-unique
    inputs therefore misses by design, bounded by the LRU.
    """

    pin: Stream  # keeps id()-fingerprinted objects alive
    optimized: Stream | None = None
    bailout: object = _UNSET  # str | None once computed
    #: node index -> (LinearNode, Counts) or (None, reason)
    decisions: dict | None = None
    #: feedback-region start index -> IslandRates (probe results)
    islands: dict | None = None
    #: (chunk_outputs, n_outputs) ->
    #:   ([(step_index, firings), ...], simulator end-state snapshot);
    #: the snapshot lets a replayed executor resume live simulation
    traces: _TraceStore = field(default_factory=_TraceStore)
    #: live holders (sessions) of this entry; pinned entries survive the
    #: cache's LRU trim so a long-lived session's plan is never dropped
    #: out from under it while recompiles churn the cache
    pins: int = 0
    #: numeric policy the plan was built for; part of the cache key (a
    #: float32 plan's rings and spectra must never serve a float64 run)
    policy: NumericPolicy = DEFAULT_POLICY
    #: worker count the plan was built for; part of the cache key — a
    #: ``workers=4`` entry's ``optimized`` graph embeds fission replicas
    #: a serial run must never execute
    workers: int = 1

    def acquire(self) -> "PlanEntry":
        """Register a live holder (a session); pairs with :meth:`release`."""
        self.pins += 1
        return self

    def release(self) -> None:
        """Drop one holder registration (``StreamSession.close``)."""
        if self.pins > 0:
            self.pins -= 1


class PlanCache:
    """LRU cache of :class:`PlanEntry` keyed by
    (fingerprint, optimize, dtype).

    Structure mutations hold a lock — the serving layer compiles on
    worker threads against this one shared cache.  Entry *contents*
    (optimized graph, decisions, ...) are filled in lock-free by
    ``compiled_plan_for``; concurrent fillers of one entry compute
    equivalent values, so last-writer-wins is benign.
    """

    def __init__(self, max_entries: int = 32):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, PlanEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def entry_for(self, stream: Stream, optimize: str,
                  policy: NumericPolicy = DEFAULT_POLICY,
                  workers: int = 1) -> PlanEntry:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("cache.lookup")
        digest, single_use = fingerprint_stream(stream)
        with self._lock:
            key = (digest, optimize, policy.name, workers)
            if single_use:
                # unsnapshotable mutable state reachable: never store (a
                # later in-place mutation would replay a stale plan), and
                # drop any entry a pre-fix fingerprint may have left behind
                self.misses += 1
                self._entries.pop(key, None)
                return PlanEntry(pin=stream, policy=policy,
                                 workers=workers)
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
            entry = PlanEntry(pin=stream, policy=policy, workers=workers)
            self._entries[key] = entry
            self._trim()
            return entry

    def _trim(self) -> None:
        """Evict least-recently-used *unpinned* entries past the cap
        (caller holds the lock).

        Entries held by live sessions (``pins > 0``) are skipped: the
        session owns a direct reference anyway, so dropping the cache
        slot would only force the next content-identical compile to
        rebuild a plan that is still resident.  When every entry is
        pinned the cache temporarily exceeds ``max_entries``.
        """
        excess = len(self._entries) - self.max_entries
        if excess <= 0:
            return
        for key in [k for k, e in self._entries.items() if e.pins <= 0]:
            del self._entries[key]
            excess -= 1
            if excess <= 0:
                return

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide cache used by ``run_graph(..., backend="plan")``.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict:
    """Hit/miss/entry counters of the global plan cache."""
    return PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop every cached plan (test isolation, coefficient sweeps)."""
    PLAN_CACHE.clear()
