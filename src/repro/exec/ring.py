"""Preallocated ndarray ring buffers for the plan backend.

A :class:`RingBuffer` is a drop-in replacement for the list-based
:class:`~repro.runtime.channels.Channel` backed by a contiguous float64
ndarray.  The live region ``[_head, _tail)`` always stays contiguous (no
wraparound), so batched kernels can take zero-copy window views over it;
space consumed by popped items is reclaimed lazily — when an append no
longer fits, the live region is slid back to the front (or the buffer is
doubled), giving amortized O(1) push/pop with compaction work proportional
to the *live* data rather than a fixed head offset.

Scalar ``peek``/``pop``/``push`` keep exact :class:`Channel` semantics
(including error behavior) so the compiled fallback runners execute
unchanged over a ring.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import InterpError

_MIN_CAPACITY = 64


class RingBuffer:
    """A FIFO of samples over a contiguous, growable ndarray."""

    __slots__ = ("_buf", "_head", "_tail", "name", "dtype")

    def __init__(self, name: str = "", capacity: int = _MIN_CAPACITY,
                 prefill=None, dtype=np.float64):
        """``prefill`` seeds the ring with initial items — the cyclic
        back edge of a feedback loop starts life holding the loop's
        ``enqueued`` values, exactly like the scalar executor's channel.
        ``dtype`` is the storage dtype (the session's numeric policy);
        everything pushed is cast into it on write.
        """
        self.dtype = np.dtype(dtype)
        if prefill is not None:
            prefill = np.asarray(prefill, dtype=self.dtype)
            capacity = max(capacity, len(prefill))
        self._buf = np.empty(max(capacity, _MIN_CAPACITY), dtype=self.dtype)
        self._head = 0
        self._tail = 0
        self.name = name
        if prefill is not None and len(prefill):
            self._buf[:len(prefill)] = prefill
            self._tail = len(prefill)

    def __len__(self) -> int:
        return self._tail - self._head

    # -- storage management ---------------------------------------------
    def _reserve(self, n: int) -> None:
        """Make room to append ``n`` items past ``_tail``."""
        if self._tail + n <= len(self._buf):
            return
        live = self._tail - self._head
        need = live + n
        cap = len(self._buf)
        if need > cap:
            while cap < need:
                cap *= 2
            new = np.empty(cap, dtype=self.dtype)
            new[:live] = self._buf[self._head:self._tail]
            self._buf = new
        else:
            # slide live region to the front; cost is O(live), amortized
            # O(1) per popped item since head must have crossed cap/2
            self._buf[:live] = self._buf[self._head:self._tail]
        self._head = 0
        self._tail = live

    # -- tape primitives -------------------------------------------------
    def push(self, value: float) -> None:
        self._reserve(1)
        self._buf[self._tail] = value
        self._tail += 1

    def pop(self) -> float:
        if self._head >= self._tail:
            raise InterpError(f"pop from empty channel {self.name!r}")
        v = self._buf[self._head]
        self._head += 1
        return v.item()

    def peek(self, index: int) -> float:
        i = self._head + index
        if index < 0 or i >= self._tail:
            raise InterpError(
                f"peek({index}) beyond channel {self.name!r} "
                f"(holds {len(self)})")
        return self._buf[i].item()

    # -- block operations -------------------------------------------------
    def peek_block(self, n: int) -> np.ndarray:
        """First ``n`` items as an ndarray view, without consuming.

        The view aliases the buffer; callers must not hold it across a
        subsequent push to the *same* ring (plan steps never do).
        """
        if len(self) < n:
            raise InterpError(
                f"peek_block({n}) beyond channel {self.name!r} "
                f"(holds {len(self)})")
        return self._buf[self._head:self._head + n]

    def window_view(self, firings: int, pop: int, peek: int) -> np.ndarray:
        """``(firings, peek)`` view of consecutive peek windows at stride
        ``pop`` — row ``i`` is ``[peek(0), ..., peek(e-1)]`` of firing ``i``.
        """
        span = (firings - 1) * pop + peek
        if len(self) < span:
            raise InterpError(
                f"window_view({firings}x{peek}@{pop}) beyond channel "
                f"{self.name!r} (holds {len(self)}, needs {span})")
        seg = self._buf[self._head:self._head + span]
        return sliding_window_view(seg, peek)[::pop]

    def pop_block(self, n: int) -> None:
        """Discard the first ``n`` items."""
        if len(self) < n:
            raise InterpError(f"pop_block({n}) from channel {self.name!r}")
        self._head += n

    def pop_block_array(self, n: int) -> np.ndarray:
        """Consume and return the first ``n`` items as a fresh ndarray."""
        if len(self) < n:
            raise InterpError(
                f"pop_block_array({n}) from channel {self.name!r}")
        out = self._buf[self._head:self._head + n].copy()
        self._head += n
        return out

    def push_block(self, values) -> None:
        arr = np.asarray(values, dtype=self.dtype)
        self.push_array(arr)

    def push_array(self, values: np.ndarray) -> None:
        n = len(values)
        self._reserve(n)
        self._buf[self._tail:self._tail + n] = values
        self._tail += n

    def alloc_push(self, n: int) -> np.ndarray:
        """Append ``n`` uninitialized items; return a writable view over them.

        Batched kernels fill the view in place, saving the intermediate
        array + copy of ``push_array``.  The view aliases the buffer, so it
        must be fully written before any further ring operation.
        """
        self._reserve(n)
        view = self._buf[self._tail:self._tail + n]
        self._tail += n
        return view

    def snapshot(self) -> list[float]:
        """Current contents (for debugging/tests)."""
        return self._buf[self._head:self._tail].tolist()
