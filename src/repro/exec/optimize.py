"""Pre-plan graph rewriting: the ``optimize=`` stage of the plan pipeline.

``run_graph(..., optimize=...)`` rewrites the program with the paper's
optimization passes *before* handing it to the planner (or the scalar
executor), so the batched engine executes the collapsed/frequency form
instead of the graph as written:

* ``none``   — the graph as written;
* ``linear`` — maximal linear replacement (§4.4): every maximal linear
  region collapses to one matrix-multiply leaf; stateful-linear leaves
  and runs (§7.1 — IIR sections whose fields update affinely) collapse
  to state-space ``StatefulLinearFilter`` leaves;
* ``freq``   — maximal frequency replacement (§5.2): maximal linear
  regions become overlap-save FFT convolutions;
* ``auto``   — the §4.3 selection DP, run with the *batched* cost model
  (:func:`repro.selection.costs.batched_direct_cost` /
  :func:`~repro.selection.costs.batched_frequency_cost`), which amortizes
  per-firing overheads over plan-sized batches and prices the direct
  implementation as the dense BLAS product the plan backend actually runs.

All rewrites descend into ``FeedbackLoop`` bodies: leaves inside a cycle
are always replaceable, and multi-filter pipeline runs collapse when the
combination is *rate-preserving* (lookahead-free children firing once
each per combined firing), which cannot shrink the cycle's delay budget;
frequency blocks change granularity and are never placed inside a cycle.

All four rewrites preserve observable outputs; FLOP counts change by
design (that is the point of the optimizations).
"""

from __future__ import annotations

from ..graph.streams import Stream

#: Valid values of the ``optimize=`` argument, in pipeline order.
OPTIMIZE_MODES = ("none", "linear", "freq", "auto")


def optimize_stream(stream: Stream, mode: str, policy=None) -> Stream:
    """Apply one named optimization mode to ``stream`` (non-destructive).

    ``policy`` (a :class:`~repro.numeric.NumericPolicy` or None) only
    affects ``auto``: the selection DP consults the calibration cache
    for that dtype's measured throughputs when one is present.
    """
    if mode == "none":
        return stream
    # deferred: the passes pull in linear/frequency/selection machinery
    if mode == "linear":
        from ..linear.combine import maximal_linear_replacement
        return maximal_linear_replacement(stream, stateful=True)
    if mode == "freq":
        from ..frequency.replacer import maximal_frequency_replacement
        return maximal_frequency_replacement(stream)
    if mode == "auto":
        from ..selection.dp import select_optimizations
        return select_optimizations(stream, cost_model="batched",
                                    stateful=True, policy=policy).stream
    raise ValueError(
        f"unknown optimize mode {mode!r} (expected one of {OPTIMIZE_MODES})")


def fission_stream(stream: Stream, workers: int, policy=None) -> Stream:
    """Data-parallel fission: replicate profitable linear leaves
    ``workers`` ways behind round-robin split/join (non-destructive).

    Runs *after* ``optimize_stream`` in the ``workers > 1`` compile
    path, so the replicated leaves are the already-selected fused
    kernels.  The construction and pricing live in
    :mod:`repro.parallel.fission`.
    """
    if workers <= 1:
        return stream
    from ..parallel.fission import fission_stream as _fission
    return _fission(stream, workers, policy=policy)
