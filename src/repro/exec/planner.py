"""Plan compilation: flattened graph + steady schedule -> batched steps.

The scalar executor (:class:`~repro.runtime.executor.FlatGraph`) fires
nodes one item at a time, data-driven.  The plan backend observes that the
firing *sequence* of an acyclic stream graph is fully determined by the
static I/O rates, so it splits execution into two phases:

1. **Rate simulation** — an integer-only transcription of
   ``FlatGraph.run``'s control flow (source pass, topological drain sweep,
   early stop once the sink holds ``n_outputs``).  No data moves; the
   simulator only tracks channel occupancies and accumulates *pending
   firing counts* per node.  Because it replicates the scalar executor's
   loop structure exactly — including the final pass's early-break
   behavior — every node's total firing count matches the scalar backends,
   which is what makes FLOP accounting bit-identical.

2. **Batched execution** — pending counts are flushed in flattening
   (topological) order: each node executes all of its pending firings as
   one batched step (:mod:`repro.exec.kernels`) over ndarray ring buffers.
   For a linear filter this is a single ``(B·mult, peek) @ (peek, push)``
   matrix product covering every firing in the chunk.

Topological full-batch execution is valid because within every simulated
pass producers fire before consumers, so cumulative counts at any pass
boundary are a feasible prefix schedule.  Runs larger than
``chunk_outputs`` flush in chunks to bound buffer memory.

**Feedback loops** execute as *islands*: each outermost ``FeedbackLoop``
flattens into a contiguous node slice (recorded by
:class:`~repro.runtime.executor.FlatGraph`) that the planner collapses
into one :class:`~repro.exec.kernels.FeedbackStep` whose external rates
are measured by an integer *island probe* (:func:`probe_island`) — the
rest of the graph stays acyclic and batches exactly as before.  Inside
the island, members fire data-driven through their ordinary batched
kernels, with lookahead bounded by the loop's delay ring, so a linear
loop body still advances ``delay`` iterations per matmul.

The planner *bails out* to the scalar compiled executor only for graphs
it cannot batch safely: nodes that consume nothing yet have inputs
(unbounded drain), unknown primitive sources whose exhaustion behavior
the rate simulator cannot model, and feedback islands whose external
rates the probe cannot certify (sources or collectors inside the cycle,
no external input/output, or a schedule that never reaches a periodic
regime).  Stateful filters whose fields update *affinely* (IIR sections,
DC blockers) extract to state-space nodes and run through the lifted
:class:`~repro.exec.kernels.StatefulLinearStep`; individual *filters*
that are genuinely non-linear, branching, or carry prework run through
:class:`~repro.exec.kernels.FallbackStep` inside the plan —
:func:`plan_report` lists which nodes fell back and why, and names each
feedback island with its member kernels.

:func:`plan_executor_for` / :func:`compiled_plan_for` wrap the whole
pipeline: the ``optimize=`` graph rewrite (:mod:`repro.exec.optimize`)
runs first, and every planning artifact — rewrite, bailout verdict,
per-filter vectorization decisions, recorded schedule traces — is
cached across runs by graph content (:mod:`repro.exec.cache`).

The executor is **resumable**: simulator state (occupancies, pending
counts, source budgets) persists across :meth:`PlanExecutor.advance`
calls, recorded traces carry a simulator end-state snapshot so even a
replayed run can continue live, and :meth:`PlanExecutor.
drain_available` drives a push session's fed input to quiescence —
this is what backs ``repro.compile(...)`` sessions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import InterpError, SchedulingError, StreamGraphError
from ..graph.scheduler import steady_state
from ..graph.streams import Duplicate, Filter, Stream
from ..ir import nodes as N
from ..ir.interp import Interpreter
from ..linear.extraction import extract_filter, extract_stateful_filter
from ..linear.filters import ConstantSourceFilter, LinearFilter
from ..linear.matmul import blas_cost_counts, direct_cost_counts
from ..linear.state import (StatefulLinearFilter, StatefulLinearNode,
                            stateful_cost_counts)
from ..numeric import DEFAULT_POLICY, NumericPolicy, resolve_policy
from ..profiling import Counts, NullProfiler, Profiler
from ..runtime.builtins import (ChunkSource, Collector, FunctionSource,
                                Identity, ListSource)
from ..runtime.channels import Channel
from ..runtime.executor import _NULL_CHANNEL, FlatGraph
from . import kernels as K
from .cache import _UNSET, PLAN_CACHE
from .optimize import optimize_stream
from .ring import RingBuffer

#: Flush batched work once this many sink outputs are pending (bounds ring
#: memory for very long runs while keeping batches large).
DEFAULT_CHUNK_OUTPUTS = 1 << 16

_PROBE_INPUT = 0.5  # probe value dodging singularities (log 0, 1/0, ...)


# ---------------------------------------------------------------------------
# Vectorizability of IR filters
# ---------------------------------------------------------------------------


def _probe_firing_counts(filt: Filter) -> Counts | None:
    """FLOP counts of one ``work`` firing, measured with the interpreter.

    Valid as the per-firing cost of *every* firing when the filter has no
    data-dependent control flow (the planner checks before calling):
    mutable fields change *values* across firings, never the op mix.
    Returns None when probing fails.
    """
    fields = {k: (v.copy() if isinstance(v, np.ndarray) else v)
              for k, v in filt.fields.items()}
    profiler = Profiler()
    ch_in = Channel("probe-in")
    ch_in.push_block([_PROBE_INPUT] * filt.peek)
    ch_out = Channel("probe-out")
    try:
        Interpreter(fields, profiler).run(filt.work, ch_in, ch_out)
    except Exception:
        return None
    return profiler.counts.copy()


def _vectorize_decision(filt: Filter):
    """((node, counts), None) when an IR filter can run as a batched
    kernel — a :class:`~repro.linear.node.LinearNode` for the matmul
    step, a :class:`~repro.linear.state.StatefulLinearNode` for the
    lifted stateful step — or (None, reason) explaining the fallback."""
    if filt.prework is not None:
        return None, "has prework (first firing differs from steady state)"
    if N.has_data_dependent_control(filt.work.body):
        return None, "data-dependent control flow"
    if filt.mutable_fields:
        sresult = extract_stateful_filter(filt)
        if not sresult.is_linear:
            fields = ", ".join(sorted(filt.mutable_fields))
            return None, (f"mutable state fields ({fields}) are not "
                          f"state-space linear: "
                          f"{sresult.reason or 'unknown'}")
        node = sresult.node
    else:
        if filt.pop <= 0 or filt.push <= 0:
            return None, "pops or pushes nothing (no batched window/output)"
        result = extract_filter(filt)
        if not result.is_linear:
            return None, f"not linear: {result.reason or 'unknown'}"
        node = result.node
    if (node.peek, node.pop, node.push) != (filt.peek, filt.pop, filt.push):
        return None, ("extracted node rates disagree with declared "
                      "peek/pop/push")
    counts = _probe_firing_counts(filt)
    if counts is None:
        return None, "FLOP-count probe firing failed"
    return (node, counts), None


# ---------------------------------------------------------------------------
# Feedback islands: external-rate probing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IslandRates:
    """Measured external behavior of one feedback island.

    After an optional prologue firing (``init_pop`` externals in,
    ``init_push`` outputs out — covering enqueued-value transients,
    prework, and peek lookahead build-up), every firing consumes ``pop``
    externals and produces ``push`` outputs, returning the cycle's
    internal channel state to the same occupancies.
    """

    pop: int
    push: int
    init_pop: int
    init_push: int

    @property
    def has_init(self) -> bool:
        return (self.init_pop, self.init_push) != (0, 0)


#: Extra periodic units tried when the greedy schedule's cycle is a
#: multiple of the balance-equation steady state.
_PROBE_PERIODS = 4


def probe_island(flat: FlatGraph, region) -> tuple[IslandRates | None, str]:
    """Measure a feedback island's external rates by integer simulation.

    Feeds externals into the island one at a time, greedily draining the
    cycle after each (the occupancy-only transcription of the scalar
    executor's data-driven loop — confluence makes the quiescent state
    schedule-independent), and looks for the periodic regime where
    ``pop`` more externals always yield ``push`` more outputs with
    identical channel occupancies.  Returns ``(rates, "")`` or
    ``(None, reason)`` when the island has no certifiable rate facade.
    """
    nodes = flat.nodes[region.start:region.stop]
    try:
        ss = steady_state(region.stream)
    except (SchedulingError, StreamGraphError) as exc:
        return None, f"cycle is unschedulable: {exc}"
    if ss.pop <= 0:
        return None, ("consumes no external input (self-sustaining "
                      "cycle cannot be paced)")
    if ss.push <= 0:
        return None, "produces no external output"
    for node in nodes:
        if not node.inputs:
            return None, (f"node {node.name} has no inputs: a source "
                          "inside a cycle fires unboundedly")
        if isinstance(node.stream, Collector):
            return None, (f"contains sink {node.name}: per-item "
                          "collection cannot cross the island boundary")

    # channel registry local to the probe (ids, initial occupancies)
    chan_ids: dict[int, int] = {}
    occ: list[int] = []

    def cid(ch):
        key = id(ch)
        idx = chan_ids.get(key)
        if idx is None:
            idx = len(occ)
            chan_ids[key] = idx
            occ.append(len(ch))  # enqueued values pre-fill the back edge
        return idx

    ext_in = cid(nodes[0].inputs[0])  # the loop joiner's external tape
    split_node = next(n for n in nodes
                      if n.kind == "splitter"
                      and n.splitter is region.stream.splitter)
    ext_out = cid(split_node.outputs[0])

    recs = []
    for node in nodes:
        in_ids = [cid(ch) for ch in node.inputs]
        out_ids = [cid(ch) for ch in node.outputs]
        needs, pops, pushes = _steady_rates(node)
        has_init, init_needs, init_pops, init_pushes = _init_rates(node)
        recs.append(_SimNode(len(recs), in_ids, out_ids, needs, pops,
                             pushes, has_init, init_needs, init_pops,
                             init_pushes))

    def drain():
        # occupancy-only mirror of FeedbackStep's drain loop: any change
        # to the init gating or batch sizing there must land here too,
        # or the probe certifies a schedule the step will not execute
        progress = True
        while progress:
            progress = False
            for sn in recs:
                if sn.has_init and not sn.fired:
                    if not all(occ[c] >= need for c, need
                               in zip(sn.in_ids, sn.init_needs)):
                        continue
                    for c, o in zip(sn.in_ids, sn.init_pops):
                        occ[c] -= o
                    for c, u in zip(sn.out_ids, sn.init_pushes):
                        occ[c] += u
                    sn.fired = True
                    progress = True
                n = K.feasible_firings((occ[c] for c in sn.in_ids),
                                       sn.needs, sn.pops)
                if n:
                    for c, o in zip(sn.in_ids, sn.pops):
                        occ[c] -= o * n
                    for c, u in zip(sn.out_ids, sn.pushes):
                        occ[c] += u * n
                    sn.fired = True
                    progress = True

    def snapshot():
        state = tuple(v for i, v in enumerate(occ) if i != ext_out)
        return state + tuple(sn.fired for sn in recs if sn.has_init)

    c_lim = 4 * ss.pop + sum(occ) + sum(sum(sn.needs) for sn in recs) + 32
    c_max = c_lim + _PROBE_PERIODS * ss.pop
    drain()
    snaps = [(snapshot(), occ[ext_out])]
    for c in range(1, c_max + 1):
        occ[ext_in] += 1
        drain()
        snaps.append((snapshot(), occ[ext_out]))
        for m in range(1, _PROBE_PERIODS + 1):
            pop = m * ss.pop
            if c < pop:
                break
            state, outs = snaps[c - pop]
            if state == snaps[c][0] and \
                    snaps[c][1] - outs == m * ss.push:
                return IslandRates(pop=pop, push=m * ss.push,
                                   init_pop=c - pop, init_push=outs), ""
    return None, ("schedule never reaches a periodic regime within "
                  f"{c_max} externals (is the delay ring long enough?)")


# ---------------------------------------------------------------------------
# Bailout detection
# ---------------------------------------------------------------------------

_KNOWN_SOURCES = (ListSource, FunctionSource, ConstantSourceFilter,
                  ChunkSource)


def plan_bailout_reason(stream: Stream,
                        flat: FlatGraph | None = None,
                        island_rates: dict | None = None) -> str | None:
    """Why ``stream`` cannot be compiled to a plan (None = plannable).

    Pass a dict as ``island_rates`` to receive each certified feedback
    island's probed :class:`IslandRates` (keyed by region start index),
    so the caller can hand them to :class:`PlanExecutor` without a
    second probe.
    """
    if flat is None:
        flat = FlatGraph(stream, NullProfiler(), backend="compiled")
    in_island = set()
    for region in flat.feedback_regions:
        in_island.update(range(region.start, region.stop))
    for i, node in enumerate(flat.nodes):
        if node.inputs and sum(_steady_rates(node)[1]) == 0:
            return (f"node {node.name} has inputs but pops nothing: "
                    "batch size is unbounded")
        if not node.inputs and i not in in_island and \
                node.kind == "primitive" and \
                not isinstance(node.stream, _KNOWN_SOURCES):
            return (f"source {node.name}: unknown primitive type "
                    f"{type(node.stream).__name__}, exhaustion behavior "
                    "not statically known")
    for region in flat.feedback_regions:
        rates, reason = probe_island(flat, region)
        if rates is None:
            return f"feedback island {region.stream.name}: {reason}"
        if island_rates is not None:
            island_rates[region.start] = rates
    return None


# ---------------------------------------------------------------------------
# Rate records for the integer simulator
# ---------------------------------------------------------------------------


@dataclass
class _SimNode:
    """Static I/O rates of one flattened node, with a one-shot init phase."""

    index: int
    in_ids: list[int]
    out_ids: list[int]
    needs: list[int]
    pops: list[int]
    pushes: list[int]
    # first-firing (prework / init) overrides, aligned with in/out ids
    has_init: bool = False
    init_needs: list[int] = field(default_factory=list)
    init_pops: list[int] = field(default_factory=list)
    init_pushes: list[int] = field(default_factory=list)
    fired: bool = False
    remaining: int | None = None  # finite sources (ListSource)


def _steady_rates(node) -> tuple[list[int], list[int], list[int]]:
    """(needs, pops, pushes) of a steady firing, aligned with channels."""
    if node.kind == "filter":
        wf = node.stream.work
        needs = [wf.peek] if node.inputs else []
        pops = [wf.pop] if node.inputs else []
        pushes = [wf.push] if node.outputs else []
        return needs, pops, pushes
    if node.kind == "primitive":
        s = node.stream
        needs = [s.peek] if node.inputs else []
        pops = [s.pop] if node.inputs else []
        pushes = [s.push] if node.outputs else []
        return needs, pops, pushes
    if node.kind == "splitter":
        if isinstance(node.splitter, Duplicate):
            return [1], [1], [1] * len(node.outputs)
        w = list(node.splitter.weights)
        total = sum(w)
        return [total], [total], w
    # joiner
    w = list(node.joiner.weights)
    return w[:], w[:], [sum(w)]


def _init_rates(node):
    """(has_init, needs, pops, pushes) for the first firing."""
    if node.kind == "filter":
        pw = node.stream.prework
        if pw is None:
            return False, [], [], []
        needs = [pw.peek] if node.inputs else []
        pops = [pw.pop] if node.inputs else []
        pushes = [pw.push] if node.outputs else []
        return True, needs, pops, pushes
    if node.kind == "primitive":
        s = node.stream
        if s.init_peek is None and s.init_pop is None and \
                s.init_push is None:
            return False, [], [], []

        def pick(init, steady):
            return init if init is not None else steady

        needs = [pick(s.init_peek, s.peek)] if node.inputs else []
        pops = [pick(s.init_pop, s.pop)] if node.inputs else []
        pushes = [pick(s.init_push, s.push)] if node.outputs else []
        return True, needs, pops, pushes
    return False, [], [], []


# ---------------------------------------------------------------------------
# The plan executor
# ---------------------------------------------------------------------------


class PlanExecutor:
    """Executes a flattened acyclic graph in batched steady-state chunks.

    Mirrors :meth:`FlatGraph.run`'s interface and observable behavior
    (outputs, FLOP counts, deadlock errors); only the execution strategy
    differs.
    """

    def __init__(self, flat: FlatGraph,
                 chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS,
                 decisions: dict | None = None,
                 island_rates: dict | None = None,
                 policy: NumericPolicy = DEFAULT_POLICY):
        self.flat = flat
        self.profiler = flat.profiler
        self.chunk_outputs = chunk_outputs
        #: numeric policy: rings are allocated and kernels compute in this
        #: dtype (float64 default — the seed behavior, bit for bit)
        self.policy = policy

        # per-filter vectorization decisions: node index -> (params, reason).
        # Passed in from the plan cache on a hit (skips extraction/probing);
        # populated here on a miss so the caller can cache them.
        self._decisions_given = decisions is not None
        self.decisions: dict = decisions if decisions is not None else {}
        #: feedback-region start index -> IslandRates; passed in from the
        #: plan cache (or plan_bailout_reason) to skip re-probing
        self.island_rates: dict = (island_rates if island_rates is not None
                                   else {})
        #: node index -> why that node runs through FallbackStep
        self.fallback_reasons: dict[int, str] = {}

        # schedule-trace hooks installed by plan_executor_for (cache path)
        self._trace_lookup = None  # target -> (trace, snapshot) | None
        self._trace_sink = None  # (target, (trace, snapshot)) -> None
        self._trace: list | None = None  # events recorded this run
        self._ran = False

        # channel registry: every distinct Channel gets a ring and an
        # index; rings inherit the channel's current contents (a feedback
        # back edge starts holding the loop's enqueued values)
        self._chan_ids: dict[int, int] = {}
        self.rings: list[RingBuffer] = []

        def ring_of(ch):
            key = id(ch)
            idx = self._chan_ids.get(key)
            if idx is None:
                idx = len(self.rings)
                self._chan_ids[key] = idx
                self.rings.append(self._new_ring(ch.name,
                                                 prefill=ch.snapshot()))
            return idx

        self._out_chan = ring_of(flat.output_channel)
        ring_of(flat.input_channel)

        #: (ChunkSource, _SimNode) pairs whose ``remaining`` is refreshed
        #: from the source ring before every drive (push sessions feed
        #: the ring between calls)
        self._chunk_sources: list[tuple] = []

        # pass 1: per flat node — ring wiring, rates, and the batched step
        raw_in_ids: list[list[int]] = []
        raw_steps: list[K.Step] = []
        raw_rates: list[tuple] = []
        island_start = {r.start: r for r in flat.feedback_regions}
        island_gates: dict[int, int] = {}  # region start -> gate ring id
        for i, node in enumerate(flat.nodes):
            in_ids = [ring_of(ch) for ch in node.inputs]
            out_ids = [ring_of(ch) for ch in node.outputs]
            if i in island_start:
                # the loop joiner reads externals through a private gate
                # ring so the island cannot outrun its simulated schedule
                gate = len(self.rings)
                self.rings.append(self._new_ring(f"{node.name}.gate"))
                island_gates[i] = gate
                in_ids = [gate] + in_ids[1:]
            raw_in_ids.append(in_ids)
            raw_rates.append((_steady_rates(node), _init_rates(node),
                              out_ids))
            raw_steps.append(self._make_step(i, node, in_ids, out_ids))

        # pass 2: assemble the acyclic outer schedule, collapsing each
        # feedback region into a single FeedbackStep facade
        self.sim_nodes: list[_SimNode] = []
        self.steps: list[K.Step] = []
        #: per outer position: the flat node, or the FeedbackRegion
        self.outer_entries: list = []
        self.islands: list[tuple] = []  # (region, IslandRates, FeedbackStep)
        outer_of_flat: dict[int, int] = {}
        i = 0
        while i < len(flat.nodes):
            region = island_start.get(i)
            if region is None:
                node = flat.nodes[i]
                (needs, pops, pushes), \
                    (has_init, init_needs, init_pops, init_pushes), \
                    out_ids = raw_rates[i]
                sn = _SimNode(len(self.sim_nodes), raw_in_ids[i], out_ids,
                              needs, pops, pushes, has_init, init_needs,
                              init_pops, init_pushes)
                if isinstance(node.stream, ListSource):
                    sn.remaining = len(node.stream.values)
                elif isinstance(node.stream, ChunkSource):
                    sn.remaining = node.stream.available
                    self._chunk_sources.append((node.stream, sn))
                outer_of_flat[i] = len(self.sim_nodes)
                self.sim_nodes.append(sn)
                self.steps.append(raw_steps[i])
                self.outer_entries.append(node)
                i += 1
                continue
            rates = self.island_rates.get(region.start)
            if rates is None:
                rates, reason = probe_island(flat, region)
                if rates is None:
                    raise InterpError(
                        f"feedback island {region.stream.name}: {reason} "
                        "(check plan_bailout_reason before planning)")
                self.island_rates[region.start] = rates
            members = []
            for j in range(region.start, region.stop):
                (needs, pops, _pushes), \
                    (has_init, init_needs, _ip, _iu), _o = raw_rates[j]
                members.append(K.IslandMember(
                    raw_steps[j],
                    [self.rings[r] for r in raw_in_ids[j]],
                    needs, pops, has_init, init_needs))
            join_node = flat.nodes[region.start]
            split_node = next(
                n for n in flat.nodes[region.start:region.stop]
                if n.kind == "splitter"
                and n.splitter is region.stream.splitter)
            ext_in = ring_of(join_node.inputs[0])
            ext_out = ring_of(split_node.outputs[0])
            step = K.FeedbackStep(
                region.stream.name, self.rings[ext_in],
                self.rings[island_gates[region.start]], members,
                rates.pop, rates.push,
                init_pop=rates.init_pop if rates.has_init else None,
                init_push=rates.init_push if rates.has_init else None)
            sn = _SimNode(len(self.sim_nodes), [ext_in], [ext_out],
                          [rates.pop], [rates.pop], [rates.push],
                          rates.has_init, [rates.init_pop],
                          [rates.init_pop], [rates.init_push])
            self.sim_nodes.append(sn)
            self.steps.append(step)
            self.outer_entries.append(region)
            self.islands.append((region, rates, step))
            i = region.stop

        self.sources = [sn for sn in self.sim_nodes if not sn.in_ids]
        self.consumers = [sn for sn in self.sim_nodes if sn.in_ids]

        # the sink the executor watches: first Collector, else graph out
        self._collected: list | None = None
        self._sink_index: int | None = None
        if flat.collectors:
            coll = flat.collectors[0]
            flat_idx = next(i for i, n in enumerate(flat.nodes)
                            if n is coll)
            self._collected = coll.runner.collected
            self._sink_index = outer_of_flat[flat_idx]
        else:
            for sn in self.sim_nodes:
                if self._out_chan in sn.out_ids:
                    self._sink_index = sn.index
        self._sink_fires = 0  # cumulative collector firings (sim)

        # persistent simulator state (pre-filled rings start occupied)
        self._occ = [len(r) for r in self.rings]
        self._pending = [0] * len(self.sim_nodes)
        self._pending_outputs = 0
        self._passes = 0
        self._saw_init_fire = False
        # resumable-session cursors (see advance/drain_available)
        self._returned = 0  # outputs handed out to the caller
        self._out_popped = 0  # items popped off the graph output ring

    # -- ring construction ------------------------------------------------
    def _new_ring(self, name: str, prefill=None) -> RingBuffer:
        """Channel-storage hook: the parallel executor overrides this to
        allocate shared-memory rings workers can attach to."""
        return RingBuffer(name, prefill=prefill, dtype=self.policy.dtype)

    def close(self) -> None:
        """Release execution resources (no-op for the serial executor;
        the parallel subclass detaches/unlinks shared memory here)."""

    # -- step construction ------------------------------------------------
    def _make_step(self, index, node, in_ids, out_ids) -> K.Step:
        from ..frequency.filters import (Decimator, NaiveFreqFilter,
                                         OptimizedFreqFilter)

        def rin(j=0):
            return self.rings[in_ids[j]] if in_ids else _NULL_CHANNEL

        def rout(j=0):
            return self.rings[out_ids[j]] if out_ids else _NULL_CHANNEL

        if node.kind == "splitter":
            outs = [self.rings[i] for i in out_ids]
            if isinstance(node.splitter, Duplicate):
                return K.DuplicateSplitStep(rin(), outs)
            return K.RoundRobinSplitStep(rin(), outs,
                                         list(node.splitter.weights))
        if node.kind == "joiner":
            ins = [self.rings[i] for i in in_ids]
            return K.RoundRobinJoinStep(ins, rout(),
                                        list(node.joiner.weights))
        s = node.stream
        if node.kind == "filter":
            if self._decisions_given:
                params, reason = self.decisions.get(
                    index, (None, "no cached decision"))
            else:
                params, reason = _vectorize_decision(s)
                self.decisions[index] = (params, reason)
            if params is not None:
                ln, counts = params
                if isinstance(ln, StatefulLinearNode):
                    return K.StatefulLinearStep(rin(), rout(), ln, counts,
                                                self.profiler,
                                                policy=self.policy)
                return K.MatmulStep(rin(), rout(), ln.A, ln.b, ln.peek,
                                    ln.pop, ln.push, counts, self.profiler,
                                    policy=self.policy)
            self.fallback_reasons[index] = reason
            return K.FallbackStep(node, rin(), rout())
        # primitives
        if isinstance(s, StatefulLinearFilter):
            snode = s.stateful_node
            # fission replicas pin ``account_counts`` — the original
            # filter's per-firing counts — so k replicas firing F/k
            # times report exactly the fused filter's F-firing profile
            counts = getattr(s, "account_counts", None)
            if counts is None:
                counts = stateful_cost_counts(snode)
            return K.StatefulLinearStep(rin(), rout(), snode, counts,
                                        self.profiler, filter_name=s.name,
                                        policy=self.policy)
        if isinstance(s, LinearFilter):
            ln = s.linear_node
            counts = getattr(s, "account_counts", None)
            if counts is None:
                counts = (blas_cost_counts(ln) if s.backend == "blas"
                          else direct_cost_counts(ln))
            return K.MatmulStep(rin(), rout(), ln.A, ln.b, ln.peek, ln.pop,
                                ln.push, counts, self.profiler,
                                filter_name=s.name, policy=self.policy)
        if isinstance(s, NaiveFreqFilter):
            return K.NaiveFreqStep(rin(), rout(), s, self.profiler,
                                   policy=self.policy)
        if isinstance(s, OptimizedFreqFilter):
            return K.OptimizedFreqStep(rin(), rout(), s, self.profiler,
                                       policy=self.policy)
        if isinstance(s, Collector):
            return K.CollectorStep(rin(), node.runner.collected)
        if isinstance(s, ChunkSource):
            return K.ChunkSourceStep(rout(), s)
        if isinstance(s, ListSource):
            return K.ListSourceStep(rout(), s.values)
        if isinstance(s, FunctionSource):
            return K.FunctionSourceStep(rout(), s.fn)
        if isinstance(s, ConstantSourceFilter):
            return K.ConstantSourceStep(rout(), s.values)
        if isinstance(s, Identity):
            return K.IdentityStep(rin(), rout())
        if isinstance(s, Decimator):
            return K.DecimatorStep(rin(), rout(), s.o, s.u)
        self.fallback_reasons[index] = (
            f"no batched kernel for primitive type {type(s).__name__}")
        return K.FallbackStep(node, rin(), rout())

    def islands_member_step(self, region, flat_index: int) -> K.Step:
        """The kernel executing flat node ``flat_index`` inside ``region``."""
        _, _, fstep = next(t for t in self.islands if t[0] is region)
        return fstep.members[flat_index - region.start].step

    # -- integer rate simulation ------------------------------------------
    def _produced(self) -> int:
        """Total sink outputs since construction (including ones already
        taken by the caller — the out ring's pops are tracked so the
        count stays cumulative across session advances)."""
        if self._collected is not None:
            return self._sink_fires
        return self._out_popped + self._occ[self._out_chan]

    def _sim_fire(self, sn: _SimNode, n: int, init: bool) -> None:
        occ = self._occ
        pops = sn.init_pops if init else sn.pops
        pushes = sn.init_pushes if init else sn.pushes
        for cid, o in zip(sn.in_ids, pops):
            occ[cid] -= o * n
        for cid, u in zip(sn.out_ids, pushes):
            occ[cid] += u * n
        self._pending[sn.index] += n
        if init:
            self._saw_init_fire = True
        sn.fired = True
        if sn.index == self._sink_index:
            if self._collected is not None:
                self._sink_fires += n
            self._pending_outputs += n

    def _in_init_phase(self, sn: _SimNode) -> bool:
        return sn.has_init and not sn.fired

    def _feasible_steady(self, sn: _SimNode) -> int:
        """Max consecutive steady firings given current occupancies."""
        occ = self._occ
        return K.feasible_firings((occ[cid] for cid in sn.in_ids),
                                  sn.needs, sn.pops)

    def _sweep(self, n_outputs: int) -> None:
        """One drain sweep, transcribing FlatGraph.run's inner loop.

        Nodes drain fully in flattening (topological) order.  Once the
        sink reaches ``n_outputs`` the scalar executor's loop fires each
        remaining fireable node exactly once before stopping; we replicate
        that to keep firing counts — and therefore FLOP counts —
        identical.
        """
        hit = self._produced() >= n_outputs
        for sn in self.consumers:
            if self._in_init_phase(sn):
                ok = all(self._occ[cid] >= need for cid, need
                         in zip(sn.in_ids, sn.init_needs))
                if not ok:
                    continue
                self._sim_fire(sn, 1, init=True)
                if hit:
                    continue
                if sn.index == self._sink_index and \
                        self._produced() >= n_outputs:
                    hit = True
                    continue
            if hit:
                if self._feasible_steady(sn) > 0:
                    self._sim_fire(sn, 1, init=False)
                continue
            n = self._feasible_steady(sn)
            if n <= 0:
                continue
            if sn.index == self._sink_index:
                gain = (1 if self._collected is not None
                        else (sn.pushes[sn.out_ids.index(self._out_chan)]
                              if self._out_chan in sn.out_ids else 0))
                if gain > 0 and not math.isinf(n_outputs):
                    deficit = n_outputs - self._produced()
                    cap = -(-deficit // gain)  # ceil
                    if n >= cap:
                        n = cap
                        hit = True
            self._sim_fire(sn, n, init=False)

    def _sim_sources(self) -> bool:
        progress = False
        for sn in self.sources:
            if sn.remaining is not None:
                if sn.remaining <= 0:
                    continue
                sn.remaining -= 1
            self._sim_fire(sn, 1, init=self._in_init_phase(sn))
            progress = True
        return progress

    # -- batched flush -----------------------------------------------------
    def _flush(self) -> None:
        pending = self._pending
        trace = self._trace
        for i, step in enumerate(self.steps):
            n = pending[i]
            if n:
                step.execute(n)
                if trace is not None:
                    trace.append((i, n))
                pending[i] = 0
        self._pending_outputs = 0

    # -- steady-regime extrapolation ---------------------------------------

    #: Longest pass-boundary occupancy cycle the extrapolator looks for.
    #: Multirate graphs reach a steady regime whose boundary occupancies
    #: repeat with period p >= 1 (FIR: 1, FilterBank: 3, decimating
    #: cascades: up to their interleave factor); transients never match,
    #: so the scan cost is only paid during warmup.
    EXTRAPOLATION_PERIOD_LIMIT = 64

    def _extrapolate(self, history, n_outputs) -> bool:
        """Replay the last simulated window of passes K more times in
        O(nodes).

        ``history`` holds (occupancy, pending) snapshots at recent pass
        starts.  When the current occupancy vector matches the one ``p``
        passes ago — and no init firing invalidated the window (the
        caller clears history on those) — the intervening firings form
        one steady unit: the sweep is a deterministic function of
        occupancies and phases, so the next ``p`` passes must repeat it
        exactly.  K is capped so the sink stays strictly below
        ``n_outputs`` (the final passes run through the literal
        simulator, preserving the scalar executor's early-stop firing
        counts) and so no finite source runs dry mid-replay.  Returns
        True when a replay was applied (the caller resets its history:
        the window boundary moved).
        """
        if self._sink_index is None:
            return False
        occ_now = self._occ
        out = None if self._collected is not None else self._out_chan
        if out is not None:
            # the graph output ring is terminal (no node consumes it):
            # it grows monotonically, so exclude it from the match and
            # read the window's sink gain off its growth instead
            occ_now = occ_now[:]
            occ_now[out] = 0
        fires = None
        period = 0
        gain = 0
        for p in range(1, len(history) + 1):
            occ_p, pending_p = history[-p]
            if out is not None:
                gain = self._occ[out] - occ_p[out]
                occ_p = occ_p[:]
                occ_p[out] = 0
            if occ_p == occ_now:
                fires = [a - b for a, b in zip(self._pending, pending_p)]
                period = p
                break
        if fires is None:
            return False
        if out is None:
            gain = fires[self._sink_index]
        if gain <= 0:
            return False
        if math.isinf(n_outputs):  # greedy drain: no sink target
            k = -(-self.chunk_outputs // gain)
        else:
            k = (n_outputs - self._produced() - 1) // gain
            k = min(k, -(-self.chunk_outputs // gain))  # bound chunk memory
        for sn in self.sources:
            if sn.remaining is not None and fires[sn.index] > 0:
                k = min(k, sn.remaining // fires[sn.index])
        if k <= 0:
            return False
        for sn in self.sim_nodes:
            f = fires[sn.index]
            if not f:
                continue
            self._pending[sn.index] += f * k
            for cid, o in zip(sn.in_ids, sn.pops):
                self._occ[cid] -= o * f * k
            for cid, u in zip(sn.out_ids, sn.pushes):
                self._occ[cid] += u * f * k
            if sn.remaining is not None:
                sn.remaining -= f * k
        if self._collected is not None:
            self._sink_fires += gain * k
        self._pending_outputs += gain * k
        self._passes += k * period
        return True

    # -- cached-trace replay ------------------------------------------------
    def _sim_snapshot(self) -> tuple:
        """Simulator-only state alongside a recorded trace, so a replayed
        executor can resume live simulation afterwards.  Step-internal
        state (ring contents, stateful carries, FFT partials, island
        phases) needs no snapshot: the replay executes the real steps."""
        return (self._occ[:],
                [sn.remaining for sn in self.sim_nodes],
                [sn.fired for sn in self.sim_nodes],
                self._sink_fires, self._passes)

    def _install_snapshot(self, snap: tuple) -> None:
        occ, remaining, fired, sink_fires, passes = snap
        self._occ = occ[:]
        for sn, r, f in zip(self.sim_nodes, remaining, fired):
            sn.remaining = r
            sn.fired = f
        self._sink_fires = sink_fires
        self._passes = passes

    def _replay(self, rec) -> None:
        """Execute a previously recorded flush sequence, skipping the rate
        simulation, then install the recorded simulator end-state so the
        executor stays resumable.  Valid only from the initial state (the
        trace was recorded from a cold executor)."""
        trace, snapshot = rec
        self._ran = True
        steps = self.steps
        for i, n in trace:
            steps[i].execute(n)
        self._install_snapshot(snapshot)

    # -- reentrant drive loop -----------------------------------------------
    def _refresh_chunk_sources(self) -> None:
        for src, sn in self._chunk_sources:
            sn.remaining = src.available

    def _drive(self, target: int, max_passes: int) -> None:
        """Simulate + flush until the sink holds ``target`` total outputs.

        Drain-first transcription of :meth:`FlatGraph._drive`: leftover
        occupancy from a previous advance is swept before any source
        fires, which is what keeps incremental firing counts identical
        to a single cold run of the same total.
        """
        self._refresh_chunk_sources()
        if self._produced() >= target:
            return
        if not self._ran:
            if self._trace_lookup is not None:
                rec = self._trace_lookup(target)
                if rec is not None:
                    self._replay(rec)
                    return
            if self._trace_sink is not None:
                self._trace = []
        recording = self._trace is not None
        self._ran = True
        self._sweep(target)
        passes = 0  # per-call runaway guard; self._passes is lifetime
        #: (occ, pending) snapshots at recent pass starts — the
        #: extrapolator's search window for a periodic steady regime.
        #: Cleared whenever the deltas stop being a replayable unit
        #: (init firings, flushes, an applied replay).
        history: list[tuple] = []
        while self._produced() < target:
            passes += 1
            self._passes += 1
            if passes > max_passes:
                raise InterpError("executor pass limit exceeded")
            history.append((self._occ[:], self._pending[:]))
            if len(history) > self.EXTRAPOLATION_PERIOD_LIMIT:
                history.pop(0)
            self._saw_init_fire = False
            progress = self._sim_sources()
            self._sweep(target)
            if self._saw_init_fire:
                history.clear()
            elif progress and self._produced() < target:
                if self._extrapolate(history, target):
                    history.clear()
            if self._pending_outputs >= self.chunk_outputs:
                self._flush()
                history.clear()
            if not progress and self._produced() < target:
                self._flush()
                raise InterpError(
                    f"deadlock: no source progress, "
                    f"{self._produced()}/{target} outputs")
        self._flush()
        if recording:
            self._trace_sink(target, (self._trace, self._sim_snapshot()))
            self._trace = None

    def _take(self, n: int):
        """The next ``n`` already-produced outputs past the cursor."""
        if self._collected is not None:
            out = self._collected[self._returned:self._returned + n]
        else:
            out_ring = self.rings[self._out_chan]
            out = out_ring.pop_block_array(n)
            self._occ[self._out_chan] -= n
            self._out_popped += n
        self._returned += n
        return out

    # -- public API ---------------------------------------------------------
    def advance(self, n: int, max_passes: int = 10_000_000):
        """Produce and return the *next* ``n`` outputs (resumable).

        Consecutive calls continue the stream: ring occupancy, stateful
        carries, feedback-island phases, and source positions persist,
        and total firing counts after ``advance(k1); advance(k2)`` equal
        one cold run of ``k1 + k2`` outputs.
        """
        self._drive(self._returned + n, max_passes)
        return self._take(n)

    def _sim_sources_block(self) -> bool:
        """Greedy-mode source pass: finite sources fire *all* remaining
        items at once.  Only valid when draining to quiescence — SDF
        confluence makes the quiescent totals independent of feed
        granularity, so block feeding changes no firing count — and it
        makes the greedy drain O(nodes) per push instead of one
        simulated pass per fed item."""
        progress = False
        for sn in self.sources:
            if self._in_init_phase(sn):
                if sn.remaining is not None:
                    if sn.remaining <= 0:
                        continue
                    sn.remaining -= 1
                self._sim_fire(sn, 1, init=True)
                progress = True
                continue
            if sn.remaining is None:
                k = 1  # unbounded source: keep the pass-paced behavior
            else:
                k = sn.remaining
                if k <= 0:
                    continue
                sn.remaining = 0
            self._sim_fire(sn, k, init=False)
            progress = True
        return progress

    def drain_available(self, max_passes: int = 10_000_000):
        """Greedily fire everything the fed input admits; return the new
        outputs.  Used by ``StreamSession.push``: no output target, no
        deadlock — the drive stops when the finite sources run dry and
        the graph is quiescent."""
        self._refresh_chunk_sources()
        self._ran = True
        target = math.inf
        self._sweep(target)
        passes = 0
        while True:
            passes += 1
            self._passes += 1
            if passes > max_passes:
                raise InterpError("executor pass limit exceeded")
            self._saw_init_fire = False
            if not self._sim_sources_block():
                break
            self._sweep(target)
            if self._pending_outputs >= self.chunk_outputs:
                self._flush()
        self._flush()
        return self._take(self._produced() - self._returned)

    def run(self, n_outputs: int, max_passes: int = 10_000_000) -> list[float]:
        """Batched equivalent of :meth:`FlatGraph.run` (same legacy
        semantics: absolute target with a Collector sink — repeated runs
        extend and re-return the prefix — consumed output channel
        otherwise; the session cursor follows either way)."""
        if self._collected is not None:
            self._drive(n_outputs, max_passes)
            if n_outputs > self._returned:
                self._returned = n_outputs
            out = self._collected[:n_outputs]
            return out if isinstance(out, list) else list(out)
        out = self.advance(n_outputs, max_passes)
        if isinstance(out, np.ndarray):
            return out.tolist()
        return out if isinstance(out, list) else list(out)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _make_executor(flat, chunk_outputs, decisions, island_rates, policy,
                   workers):
    """PlanExecutor, or the parallel subclass when ``workers > 1``."""
    if workers > 1:
        from ..parallel.executor import ParallelPlanExecutor
        return ParallelPlanExecutor(flat, chunk_outputs=chunk_outputs,
                                    decisions=decisions,
                                    island_rates=island_rates,
                                    policy=policy, workers=workers)
    return PlanExecutor(flat, chunk_outputs=chunk_outputs,
                        decisions=decisions, island_rates=island_rates,
                        policy=policy)


def _fission_rewrite(stream: Stream, workers: int, policy) -> Stream:
    from .optimize import fission_stream
    return fission_stream(stream, workers, policy=policy)


def compiled_plan_for(stream: Stream, profiler: Profiler | None = None,
                      chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS,
                      optimize: str = "none", cache=None, traces=True,
                      seed=None, dtype=None, workers: int = 1):
    """Compile ``stream``; return ``(executor, entry)``.

    The full pipeline: rewrite the graph per ``optimize``
    (:func:`~repro.exec.optimize.optimize_stream`), then plan the
    rewritten graph.  Planning artifacts — the rewrite itself, the bailout
    verdict, per-filter vectorization decisions, and recorded schedule
    traces — are cached in ``cache`` (default: the process-wide
    :data:`~repro.exec.cache.PLAN_CACHE`), keyed by the graph's content
    fingerprint; pass ``cache=False`` to plan from scratch (``entry`` is
    then None).  Probing happens at most once per entry — repeated
    compiles of a cached graph never re-extract or re-probe.

    ``seed`` is an optional :class:`~repro.exec.cache.PlanEntry` of a
    **content-identical** graph (same fingerprint modulo single-use
    sources): its bailout verdict, island probe results, and extraction
    decisions transfer to this compile, skipping the expensive probing
    that single-use fingerprints (push-session ``ChunkSource`` rings)
    cannot amortize through the cache.  Sound because those artifacts
    are pure functions of graph *content* and are consumed read-only —
    :class:`~repro.serve.pool.SessionPool` feeds the first session's
    entry to every sibling compile of the same key.  The caller owns
    the identity claim; a mismatched seed corrupts planning.

    ``executor`` is the scalar compiled :class:`FlatGraph` (same
    ``run``/``advance`` interface) when the graph cannot be batched —
    see :func:`plan_bailout_reason`; the verdict is on ``entry.bailout``.
    ``traces=False`` skips installing schedule-trace record/replay hooks
    (push sessions, whose input arrives incrementally, use this).

    ``workers > 1`` compiles for the parallel engine: the optimized
    graph additionally passes the fission rewrite
    (:func:`~repro.exec.optimize.fission_stream`), the executor is a
    :class:`~repro.parallel.executor.ParallelPlanExecutor` scheduling
    step chains onto a worker pool, trace record/replay is disabled
    (schedules are driven live), and the plan cache keys on the worker
    count.
    """
    policy = resolve_policy(dtype)
    if workers > 1:
        traces = False
    if cache is None:
        cache = PLAN_CACHE
    if cache is False:
        opt = optimize_stream(stream, optimize, policy=policy)
        if workers > 1:
            opt = _fission_rewrite(opt, workers, policy)
        flat = FlatGraph(opt, profiler, backend="compiled")
        rates: dict = {}
        if plan_bailout_reason(opt, flat, island_rates=rates) is not None:
            return flat, None
        return _make_executor(flat, chunk_outputs, None, rates, policy,
                              workers), None

    entry = cache.entry_for(stream, optimize, policy=policy,
                            workers=workers)
    if seed is not None and seed is not entry:
        # decision/island maps key on flattened node indices — identical
        # content means identical structure means identical indices
        if entry.bailout is _UNSET and seed.bailout is not _UNSET:
            entry.bailout = seed.bailout
            if entry.islands is None:
                entry.islands = seed.islands
        if entry.decisions is None and seed.decisions is not None:
            entry.decisions = seed.decisions
    if entry.optimized is None:
        opt = optimize_stream(stream, optimize, policy=policy)
        if workers > 1:
            opt = _fission_rewrite(opt, workers, policy)
        entry.optimized = opt
    flat = FlatGraph(entry.optimized, profiler, backend="compiled")
    if entry.bailout is _UNSET:
        rates = {}
        entry.bailout = plan_bailout_reason(entry.optimized, flat,
                                            island_rates=rates)
        if entry.bailout is None:
            entry.islands = rates
    if entry.bailout is not None:
        return flat, entry
    executor = _make_executor(flat, chunk_outputs, entry.decisions,
                              entry.islands, policy, workers)
    if entry.decisions is None:
        entry.decisions = executor.decisions
    if entry.islands is None:
        entry.islands = executor.island_rates
    if traces:
        store = entry.traces
        executor._trace_lookup = lambda n: store.get((chunk_outputs, n))
        executor._trace_sink = (
            lambda n, t: store.setdefault((chunk_outputs, n), t))
    return executor, entry


def plan_executor_for(stream: Stream, profiler: Profiler | None = None,
                      chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS,
                      optimize: str = "none", cache=None, dtype=None,
                      workers: int = 1):
    """Compile ``stream`` into a :class:`PlanExecutor` — see
    :func:`compiled_plan_for` (this drops the cache entry)."""
    return compiled_plan_for(stream, profiler, chunk_outputs=chunk_outputs,
                             optimize=optimize, cache=cache, dtype=dtype,
                             workers=workers)[0]


def executor_from_entry(entry, profiler: Profiler | None = None,
                        chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS,
                        traces: bool = True):
    """Fresh executor over an already-compiled :class:`~repro.exec.cache.
    PlanEntry` — no fingerprinting, no probing, no cache lookup.

    ``StreamSession.reset`` rebuilds execution state through this, so a
    session keeps its pinned plan even if the graph's fields were
    mutated in place after compilation.  Returns the scalar
    :class:`FlatGraph` when the entry's verdict was a bailout.
    """
    flat = FlatGraph(entry.optimized, profiler, backend="compiled")
    if entry.bailout is not None:
        return flat
    workers = getattr(entry, "workers", 1)
    if workers > 1:
        traces = False
    executor = _make_executor(flat, chunk_outputs, entry.decisions,
                              entry.islands,
                              getattr(entry, "policy", DEFAULT_POLICY),
                              workers)
    if traces:
        store = entry.traces
        executor._trace_lookup = lambda n: store.get((chunk_outputs, n))
        executor._trace_sink = (
            lambda n, t: store.setdefault((chunk_outputs, n), t))
    return executor


# ---------------------------------------------------------------------------
# Plan introspection
# ---------------------------------------------------------------------------


@dataclass
class StepReport:
    """How one flattened node is realized inside a plan."""

    index: int
    name: str
    node_kind: str  # 'filter' | 'primitive' | 'splitter' | 'joiner'
    step_kind: str  # Step.kind of the chosen kernel
    reason: str | None  # set iff the node runs through FallbackStep


@dataclass
class IslandReport:
    """One feedback island: its rate facade and member kernels."""

    name: str
    delay: int
    rates: IslandRates
    steps: list[StepReport] = field(default_factory=list)

    def __str__(self) -> str:
        head = (f"feedback island {self.name}: delay={self.delay}, "
                f"pop/push per firing={self.rates.pop}/{self.rates.push}")
        if self.rates.has_init:
            head += (f", prologue={self.rates.init_pop}"
                     f"/{self.rates.init_push}")
        lines = [head]
        for s in self.steps:
            lines.append(f"  {s.name.ljust(24)}{s.step_kind.ljust(12)}"
                         + (s.reason or ""))
        return "\n".join(lines)


@dataclass
class PlanReport:
    """Which kernels a plan chose, and why nodes fell back to scalar.

    Fallback-heavy graphs (Radar: stateful sources, nonlinear magnitude
    and detector stages) are slow for reasons invisible in the output;
    this report makes them diagnosable.  Render with ``str(report)`` or
    inspect :attr:`steps` / :attr:`fallbacks` / :attr:`islands`
    programmatically; each feedback island appears as one ``feedback``
    row in the main table plus an island section listing its member
    kernels.
    """

    program: str
    optimize: str
    bailout: str | None
    steps: list[StepReport] = field(default_factory=list)
    islands: list[IslandReport] = field(default_factory=list)

    @property
    def fallbacks(self) -> list[StepReport]:
        return [s for s in self.steps if s.step_kind == "fallback"]

    def __str__(self) -> str:
        title = f"plan report: {self.program} (optimize={self.optimize})"
        lines = [title, "=" * len(title)]
        if self.bailout is not None:
            lines.append(f"whole-graph bailout to compiled: {self.bailout}")
            return "\n".join(lines)
        name_w = max([len(s.name) for s in self.steps] + [4]) + 2
        kind_w = 12
        lines.append("node".ljust(name_w) + "step".ljust(kind_w)
                     + "fallback reason")
        lines.append("-" * (name_w + kind_w + 15))
        for s in self.steps:
            lines.append(s.name.ljust(name_w) + s.step_kind.ljust(kind_w)
                         + (s.reason or ""))
        n_fb = len(self.fallbacks)
        lines.append(f"{n_fb}/{len(self.steps)} nodes fall back to scalar "
                     "firing")
        for isl in self.islands:
            lines.append(str(isl))
        return "\n".join(lines)


def report_for_executor(executor: PlanExecutor, program: str,
                        optimize: str = "none") -> PlanReport:
    """Build a :class:`PlanReport` from an already-compiled executor.

    Used by ``StreamSession.report()`` so reporting on a live session
    re-probes nothing; :func:`plan_report` builds a throwaway executor
    and routes through here.
    """
    from ..runtime.executor import FeedbackRegion

    flat = executor.flat
    rep = PlanReport(program=program, optimize=optimize, bailout=None)
    flat_index = {id(n): i for i, n in enumerate(flat.nodes)}
    for pos, (entry, step) in enumerate(zip(executor.outer_entries,
                                            executor.steps)):
        if isinstance(entry, FeedbackRegion):
            _, rates, _ = next(t for t in executor.islands
                               if t[0] is entry)
            n_members = entry.stop - entry.start
            rep.steps.append(StepReport(
                pos, f"{entry.stream.name} [feedback island: "
                     f"{n_members} nodes, delay {entry.stream.delay}]",
                "feedback", "feedback", None))
            isl = IslandReport(entry.stream.name, entry.stream.delay,
                               rates)
            for j in range(entry.start, entry.stop):
                node = flat.nodes[j]
                mstep = executor.islands_member_step(entry, j)
                isl.steps.append(StepReport(
                    j, node.name, node.kind, mstep.kind,
                    executor.fallback_reasons.get(j)))
            rep.islands.append(isl)
        else:
            rep.steps.append(StepReport(
                pos, entry.name, entry.kind, step.kind,
                executor.fallback_reasons.get(flat_index[id(entry)])))
    return rep


def plan_report(stream: Stream, optimize: str = "none",
                chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS) -> PlanReport:
    """Explain how ``stream`` would execute under the plan backend."""
    opt = optimize_stream(stream, optimize)
    flat = FlatGraph(opt, NullProfiler(), backend="compiled")
    probed: dict = {}
    bailout = plan_bailout_reason(opt, flat, island_rates=probed)
    if bailout is not None:
        return PlanReport(program=getattr(stream, "name", "?"),
                          optimize=optimize, bailout=bailout)
    executor = PlanExecutor(flat, chunk_outputs=chunk_outputs,
                            island_rates=probed)
    return report_for_executor(executor, getattr(stream, "name", "?"),
                               optimize)
