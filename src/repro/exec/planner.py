"""Plan compilation: flattened graph + steady schedule -> batched steps.

The scalar executor (:class:`~repro.runtime.executor.FlatGraph`) fires
nodes one item at a time, data-driven.  The plan backend observes that the
firing *sequence* of an acyclic stream graph is fully determined by the
static I/O rates, so it splits execution into two phases:

1. **Rate simulation** — an integer-only transcription of
   ``FlatGraph.run``'s control flow (source pass, topological drain sweep,
   early stop once the sink holds ``n_outputs``).  No data moves; the
   simulator only tracks channel occupancies and accumulates *pending
   firing counts* per node.  Because it replicates the scalar executor's
   loop structure exactly — including the final pass's early-break
   behavior — every node's total firing count matches the scalar backends,
   which is what makes FLOP accounting bit-identical.

2. **Batched execution** — pending counts are flushed in flattening
   (topological) order: each node executes all of its pending firings as
   one batched step (:mod:`repro.exec.kernels`) over ndarray ring buffers.
   For a linear filter this is a single ``(B·mult, peek) @ (peek, push)``
   matrix product covering every firing in the chunk.

Topological full-batch execution is valid because within every simulated
pass producers fire before consumers, so cumulative counts at any pass
boundary are a feasible prefix schedule.  Runs larger than
``chunk_outputs`` flush in chunks to bound buffer memory.

The planner *bails out* to the scalar compiled executor for graphs it
cannot batch safely: feedback loops (the flattened graph is cyclic, so no
topological sweep exists), nodes that consume nothing yet have inputs
(unbounded drain), and unknown primitive sources whose exhaustion
behavior the rate simulator cannot model.  Individual *filters* that are
non-linear, stateful, branching, or carry prework simply run through
:class:`~repro.exec.kernels.FallbackStep` inside the plan —
:func:`plan_report` lists which nodes fell back and why.

:func:`plan_executor_for` wraps the whole pipeline: the ``optimize=``
graph rewrite (:mod:`repro.exec.optimize`) runs first, and every
planning artifact — rewrite, bailout verdict, per-filter vectorization
decisions, recorded schedule traces — is cached across runs by graph
content (:mod:`repro.exec.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import InterpError
from ..graph.streams import Duplicate, Filter, Stream, has_feedback
from ..ir import nodes as N
from ..ir.interp import Interpreter
from ..linear.extraction import extract_filter
from ..linear.filters import ConstantSourceFilter, LinearFilter
from ..linear.matmul import blas_cost_counts, direct_cost_counts
from ..profiling import Counts, NullProfiler, Profiler
from ..runtime.builtins import (Collector, FunctionSource, Identity,
                                ListSource)
from ..runtime.channels import Channel
from ..runtime.executor import _NULL_CHANNEL, FlatGraph
from . import kernels as K
from .cache import _UNSET, PLAN_CACHE
from .optimize import optimize_stream
from .ring import RingBuffer

#: Flush batched work once this many sink outputs are pending (bounds ring
#: memory for very long runs while keeping batches large).
DEFAULT_CHUNK_OUTPUTS = 1 << 16

_PROBE_INPUT = 0.5  # probe value dodging singularities (log 0, 1/0, ...)


# ---------------------------------------------------------------------------
# Vectorizability of IR filters
# ---------------------------------------------------------------------------


def _probe_firing_counts(filt: Filter) -> Counts | None:
    """FLOP counts of one ``work`` firing, measured with the interpreter.

    Valid as the per-firing cost of *every* firing when the filter has no
    data-dependent control flow and no mutable fields (the planner checks
    both before calling).  Returns None when probing fails.
    """
    fields = {k: (v.copy() if isinstance(v, np.ndarray) else v)
              for k, v in filt.fields.items()}
    profiler = Profiler()
    ch_in = Channel("probe-in")
    ch_in.push_block([_PROBE_INPUT] * filt.peek)
    ch_out = Channel("probe-out")
    try:
        Interpreter(fields, profiler).run(filt.work, ch_in, ch_out)
    except Exception:
        return None
    return profiler.counts.copy()


def _vectorize_decision(filt: Filter):
    """((node, counts), None) when an IR filter can run as a batched
    matmul, or (None, reason) explaining the scalar fallback."""
    if filt.prework is not None:
        return None, "has prework (first firing differs from steady state)"
    if filt.mutable_fields:
        return None, ("mutable state fields: "
                      f"{', '.join(sorted(filt.mutable_fields))}")
    if filt.pop <= 0 or filt.push <= 0:
        return None, "pops or pushes nothing (no batched window/output)"
    if N.has_data_dependent_control(filt.work.body):
        return None, "data-dependent control flow"
    result = extract_filter(filt)
    if not result.is_linear:
        return None, f"not linear: {result.reason or 'unknown'}"
    node = result.node
    if (node.peek, node.pop, node.push) != (filt.peek, filt.pop, filt.push):
        return None, ("extracted node rates disagree with declared "
                      "peek/pop/push")
    counts = _probe_firing_counts(filt)
    if counts is None:
        return None, "FLOP-count probe firing failed"
    return (node, counts), None


# ---------------------------------------------------------------------------
# Bailout detection
# ---------------------------------------------------------------------------

_KNOWN_SOURCES = (ListSource, FunctionSource, ConstantSourceFilter)


def plan_bailout_reason(stream: Stream,
                        flat: FlatGraph | None = None) -> str | None:
    """Why ``stream`` cannot be compiled to a plan (None = plannable)."""
    if has_feedback(stream):
        return (f"{stream.name}: contains a feedbackloop, so the "
                "flattened graph is cyclic and no topological batch "
                "order exists")
    if flat is None:
        flat = FlatGraph(stream, NullProfiler(), backend="compiled")
    for node in flat.nodes:
        if node.inputs and sum(_steady_rates(node)[1]) == 0:
            return (f"node {node.name} has inputs but pops nothing: "
                    "batch size is unbounded")
        if not node.inputs and node.kind == "primitive" and \
                not isinstance(node.stream, _KNOWN_SOURCES):
            return (f"source {node.name}: unknown primitive type "
                    f"{type(node.stream).__name__}, exhaustion behavior "
                    "not statically known")
    return None


# ---------------------------------------------------------------------------
# Rate records for the integer simulator
# ---------------------------------------------------------------------------


@dataclass
class _SimNode:
    """Static I/O rates of one flattened node, with a one-shot init phase."""

    index: int
    in_ids: list[int]
    out_ids: list[int]
    needs: list[int]
    pops: list[int]
    pushes: list[int]
    # first-firing (prework / init) overrides, aligned with in/out ids
    has_init: bool = False
    init_needs: list[int] = field(default_factory=list)
    init_pops: list[int] = field(default_factory=list)
    init_pushes: list[int] = field(default_factory=list)
    fired: bool = False
    remaining: int | None = None  # finite sources (ListSource)


def _steady_rates(node) -> tuple[list[int], list[int], list[int]]:
    """(needs, pops, pushes) of a steady firing, aligned with channels."""
    if node.kind == "filter":
        wf = node.stream.work
        needs = [wf.peek] if node.inputs else []
        pops = [wf.pop] if node.inputs else []
        pushes = [wf.push] if node.outputs else []
        return needs, pops, pushes
    if node.kind == "primitive":
        s = node.stream
        needs = [s.peek] if node.inputs else []
        pops = [s.pop] if node.inputs else []
        pushes = [s.push] if node.outputs else []
        return needs, pops, pushes
    if node.kind == "splitter":
        if isinstance(node.splitter, Duplicate):
            return [1], [1], [1] * len(node.outputs)
        w = list(node.splitter.weights)
        total = sum(w)
        return [total], [total], w
    # joiner
    w = list(node.joiner.weights)
    return w[:], w[:], [sum(w)]


def _init_rates(node):
    """(has_init, needs, pops, pushes) for the first firing."""
    if node.kind == "filter":
        pw = node.stream.prework
        if pw is None:
            return False, [], [], []
        needs = [pw.peek] if node.inputs else []
        pops = [pw.pop] if node.inputs else []
        pushes = [pw.push] if node.outputs else []
        return True, needs, pops, pushes
    if node.kind == "primitive":
        s = node.stream
        if s.init_peek is None and s.init_pop is None and \
                s.init_push is None:
            return False, [], [], []

        def pick(init, steady):
            return init if init is not None else steady

        needs = [pick(s.init_peek, s.peek)] if node.inputs else []
        pops = [pick(s.init_pop, s.pop)] if node.inputs else []
        pushes = [pick(s.init_push, s.push)] if node.outputs else []
        return True, needs, pops, pushes
    return False, [], [], []


# ---------------------------------------------------------------------------
# The plan executor
# ---------------------------------------------------------------------------


class PlanExecutor:
    """Executes a flattened acyclic graph in batched steady-state chunks.

    Mirrors :meth:`FlatGraph.run`'s interface and observable behavior
    (outputs, FLOP counts, deadlock errors); only the execution strategy
    differs.
    """

    def __init__(self, flat: FlatGraph,
                 chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS,
                 decisions: dict | None = None):
        self.flat = flat
        self.profiler = flat.profiler
        self.chunk_outputs = chunk_outputs

        # per-filter vectorization decisions: node index -> (params, reason).
        # Passed in from the plan cache on a hit (skips extraction/probing);
        # populated here on a miss so the caller can cache them.
        self._decisions_given = decisions is not None
        self.decisions: dict = decisions if decisions is not None else {}
        #: node index -> why that node runs through FallbackStep
        self.fallback_reasons: dict[int, str] = {}

        # schedule-trace hooks installed by plan_executor_for (cache path)
        self._trace_lookup = None  # n_outputs -> recorded trace | None
        self._trace_sink = None  # (n_outputs, trace) -> None
        self._trace: list | None = None  # events recorded this run
        self._ran = False
        self._replayed = False

        # channel registry: every distinct Channel gets a ring and an index
        self._chan_ids: dict[int, int] = {}
        self.rings: list[RingBuffer] = []

        def ring_of(ch):
            key = id(ch)
            idx = self._chan_ids.get(key)
            if idx is None:
                idx = len(self.rings)
                self._chan_ids[key] = idx
                self.rings.append(RingBuffer(ch.name))
            return idx

        self._out_chan = ring_of(flat.output_channel)
        ring_of(flat.input_channel)

        self.sim_nodes: list[_SimNode] = []
        self.steps: list[K.Step] = []
        for i, node in enumerate(flat.nodes):
            in_ids = [ring_of(ch) for ch in node.inputs]
            out_ids = [ring_of(ch) for ch in node.outputs]
            needs, pops, pushes = _steady_rates(node)
            has_init, init_needs, init_pops, init_pushes = _init_rates(node)
            sn = _SimNode(i, in_ids, out_ids, needs, pops, pushes,
                          has_init, init_needs, init_pops, init_pushes)
            if isinstance(node.stream, ListSource):
                sn.remaining = len(node.stream.values)
            self.sim_nodes.append(sn)
            self.steps.append(self._make_step(i, node, in_ids, out_ids))

        self.sources = [sn for sn in self.sim_nodes if not sn.in_ids]
        self.consumers = [sn for sn in self.sim_nodes if sn.in_ids]

        # the sink the executor watches: first Collector, else graph out
        self._collected: list | None = None
        self._sink_index: int | None = None
        if flat.collectors:
            coll = flat.collectors[0]
            self._collected = coll.runner.collected
            self._sink_index = next(i for i, n in enumerate(flat.nodes)
                                    if n is coll)
        else:
            for sn in self.sim_nodes:
                if self._out_chan in sn.out_ids:
                    self._sink_index = sn.index
        self._sink_fires = 0  # cumulative collector firings (sim)

        # persistent simulator state
        self._occ = [0] * len(self.rings)
        self._pending = [0] * len(self.sim_nodes)
        self._pending_outputs = 0
        self._passes = 0
        self._saw_init_fire = False

    # -- step construction ------------------------------------------------
    def _make_step(self, index, node, in_ids, out_ids) -> K.Step:
        from ..frequency.filters import (Decimator, NaiveFreqFilter,
                                         OptimizedFreqFilter)

        def rin(j=0):
            return self.rings[in_ids[j]] if in_ids else _NULL_CHANNEL

        def rout(j=0):
            return self.rings[out_ids[j]] if out_ids else _NULL_CHANNEL

        if node.kind == "splitter":
            outs = [self.rings[i] for i in out_ids]
            if isinstance(node.splitter, Duplicate):
                return K.DuplicateSplitStep(rin(), outs)
            return K.RoundRobinSplitStep(rin(), outs,
                                         list(node.splitter.weights))
        if node.kind == "joiner":
            ins = [self.rings[i] for i in in_ids]
            return K.RoundRobinJoinStep(ins, rout(),
                                        list(node.joiner.weights))
        s = node.stream
        if node.kind == "filter":
            if self._decisions_given:
                params, reason = self.decisions.get(
                    index, (None, "no cached decision"))
            else:
                params, reason = _vectorize_decision(s)
                self.decisions[index] = (params, reason)
            if params is not None:
                ln, counts = params
                return K.MatmulStep(rin(), rout(), ln.A, ln.b, ln.peek,
                                    ln.pop, ln.push, counts, self.profiler)
            self.fallback_reasons[index] = reason
            return K.FallbackStep(node, rin(), rout())
        # primitives
        if isinstance(s, LinearFilter):
            ln = s.linear_node
            counts = (blas_cost_counts(ln) if s.backend == "blas"
                      else direct_cost_counts(ln))
            return K.MatmulStep(rin(), rout(), ln.A, ln.b, ln.peek, ln.pop,
                                ln.push, counts, self.profiler,
                                filter_name=s.name)
        if isinstance(s, NaiveFreqFilter):
            return K.NaiveFreqStep(rin(), rout(), s, self.profiler)
        if isinstance(s, OptimizedFreqFilter):
            return K.OptimizedFreqStep(rin(), rout(), s, self.profiler)
        if isinstance(s, Collector):
            return K.CollectorStep(rin(), node.runner.collected)
        if isinstance(s, ListSource):
            return K.ListSourceStep(rout(), s.values)
        if isinstance(s, FunctionSource):
            return K.FunctionSourceStep(rout(), s.fn)
        if isinstance(s, ConstantSourceFilter):
            return K.ConstantSourceStep(rout(), s.values)
        if isinstance(s, Identity):
            return K.IdentityStep(rin(), rout())
        if isinstance(s, Decimator):
            return K.DecimatorStep(rin(), rout(), s.o, s.u)
        self.fallback_reasons[index] = (
            f"no batched kernel for primitive type {type(s).__name__}")
        return K.FallbackStep(node, rin(), rout())

    # -- integer rate simulation ------------------------------------------
    def _produced(self) -> int:
        if self._collected is not None:
            return self._sink_fires
        return self._occ[self._out_chan]

    def _sim_fire(self, sn: _SimNode, n: int, init: bool) -> None:
        occ = self._occ
        pops = sn.init_pops if init else sn.pops
        pushes = sn.init_pushes if init else sn.pushes
        for cid, o in zip(sn.in_ids, pops):
            occ[cid] -= o * n
        for cid, u in zip(sn.out_ids, pushes):
            occ[cid] += u * n
        self._pending[sn.index] += n
        if init:
            self._saw_init_fire = True
        sn.fired = True
        if sn.index == self._sink_index:
            if self._collected is not None:
                self._sink_fires += n
            self._pending_outputs += n

    def _in_init_phase(self, sn: _SimNode) -> bool:
        return sn.has_init and not sn.fired

    def _feasible_steady(self, sn: _SimNode) -> int:
        """Max consecutive steady firings given current occupancies."""
        occ = self._occ
        n = None
        for cid, need, o in zip(sn.in_ids, sn.needs, sn.pops):
            have = occ[cid]
            if have < need:
                return 0
            if o > 0:
                k = (have - need) // o + 1
                if n is None or k < n:
                    n = k
        return n if n is not None else 0

    def _sweep(self, n_outputs: int) -> None:
        """One drain sweep, transcribing FlatGraph.run's inner loop.

        Nodes drain fully in flattening (topological) order.  Once the
        sink reaches ``n_outputs`` the scalar executor's loop fires each
        remaining fireable node exactly once before stopping; we replicate
        that to keep firing counts — and therefore FLOP counts —
        identical.
        """
        hit = self._produced() >= n_outputs
        for sn in self.consumers:
            if self._in_init_phase(sn):
                ok = all(self._occ[cid] >= need for cid, need
                         in zip(sn.in_ids, sn.init_needs))
                if not ok:
                    continue
                self._sim_fire(sn, 1, init=True)
                if hit:
                    continue
                if sn.index == self._sink_index and \
                        self._produced() >= n_outputs:
                    hit = True
                    continue
            if hit:
                if self._feasible_steady(sn) > 0:
                    self._sim_fire(sn, 1, init=False)
                continue
            n = self._feasible_steady(sn)
            if n <= 0:
                continue
            if sn.index == self._sink_index:
                gain = (1 if self._collected is not None
                        else (sn.pushes[sn.out_ids.index(self._out_chan)]
                              if self._out_chan in sn.out_ids else 0))
                if gain > 0:
                    deficit = n_outputs - self._produced()
                    cap = -(-deficit // gain)  # ceil
                    if n >= cap:
                        n = cap
                        hit = True
            self._sim_fire(sn, n, init=False)

    def _sim_sources(self) -> bool:
        progress = False
        for sn in self.sources:
            if sn.remaining is not None:
                if sn.remaining <= 0:
                    continue
                sn.remaining -= 1
            self._sim_fire(sn, 1, init=self._in_init_phase(sn))
            progress = True
        return progress

    # -- batched flush -----------------------------------------------------
    def _flush(self) -> None:
        pending = self._pending
        trace = self._trace
        for i, step in enumerate(self.steps):
            n = pending[i]
            if n:
                step.execute(n)
                if trace is not None:
                    trace.append((i, n))
                pending[i] = 0
        self._pending_outputs = 0

    # -- steady-regime extrapolation ---------------------------------------
    def _extrapolate(self, occ_before, pending_before, n_outputs) -> None:
        """Replay the pass just simulated K more times in O(nodes).

        Valid only when the pass left every channel occupancy unchanged
        (period-1 steady regime): the sweep is a deterministic function of
        occupancies and phases, so the next pass must fire the exact same
        vector.  K is capped so the sink stays strictly below
        ``n_outputs`` (the final passes run through the literal simulator,
        preserving the scalar executor's early-stop firing counts) and so
        no finite source runs dry mid-replay.
        """
        if self._saw_init_fire or self._occ != occ_before:
            return
        fires = [a - b for a, b in zip(self._pending, pending_before)]
        if self._sink_index is None:
            return
        if self._collected is not None:
            gain = fires[self._sink_index]
        else:
            gain = self._occ[self._out_chan] - occ_before[self._out_chan]
        if gain <= 0:
            return
        k = (n_outputs - self._produced() - 1) // gain
        k = min(k, -(-self.chunk_outputs // gain))  # bound chunk memory
        for sn in self.sources:
            if sn.remaining is not None and fires[sn.index] > 0:
                k = min(k, sn.remaining // fires[sn.index])
        if k <= 0:
            return
        for sn in self.sim_nodes:
            f = fires[sn.index]
            if not f:
                continue
            self._pending[sn.index] += f * k
            for cid, o in zip(sn.in_ids, sn.pops):
                self._occ[cid] -= o * f * k
            for cid, u in zip(sn.out_ids, sn.pushes):
                self._occ[cid] += u * f * k
            if sn.remaining is not None:
                sn.remaining -= f * k
        if self._collected is not None:
            self._sink_fires += fires[self._sink_index] * k
        self._pending_outputs += gain * k
        self._passes += k

    # -- cached-trace replay ------------------------------------------------
    def _run_trace(self, trace, n_outputs: int) -> list[float]:
        """Execute a previously recorded flush sequence, skipping the rate
        simulation entirely.  Valid only on a fresh executor (the trace was
        recorded from the same initial state)."""
        self._ran = True
        self._replayed = True
        steps = self.steps
        for i, n in trace:
            steps[i].execute(n)
        if self._collected is not None:
            return self._collected[:n_outputs]
        out_ring = self.rings[self._out_chan]
        return [out_ring.pop() for _ in range(n_outputs)]

    # -- public API ---------------------------------------------------------
    def run(self, n_outputs: int, max_passes: int = 10_000_000) -> list[float]:
        """Batched equivalent of :meth:`FlatGraph.run`."""
        if self._replayed:
            raise InterpError(
                "plan executor already consumed by a cached-trace replay; "
                "build a fresh executor to run again")
        if not self._ran:
            if self._trace_lookup is not None:
                trace = self._trace_lookup(n_outputs)
                if trace is not None:
                    return self._run_trace(trace, n_outputs)
            if self._trace_sink is not None:
                self._trace = []
        recording = self._trace is not None
        self._ran = True
        while self._produced() < n_outputs:
            self._passes += 1
            if self._passes > max_passes:
                raise InterpError("executor pass limit exceeded")
            occ_before = self._occ[:]
            pending_before = self._pending[:]
            self._saw_init_fire = False
            progress = self._sim_sources()
            self._sweep(n_outputs)
            if progress and self._produced() < n_outputs:
                self._extrapolate(occ_before, pending_before, n_outputs)
            if self._pending_outputs >= self.chunk_outputs:
                self._flush()
            if not progress and self._produced() < n_outputs:
                self._flush()
                raise InterpError(
                    f"deadlock: no source progress, "
                    f"{self._produced()}/{n_outputs} outputs")
        self._flush()
        if recording:
            self._trace_sink(n_outputs, self._trace)
            self._trace = None
        if self._collected is not None:
            return self._collected[:n_outputs]
        out_ring = self.rings[self._out_chan]
        self._occ[self._out_chan] -= n_outputs
        return [out_ring.pop() for _ in range(n_outputs)]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def plan_executor_for(stream: Stream, profiler: Profiler | None = None,
                      chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS,
                      optimize: str = "none", cache=None):
    """Compile ``stream`` into a :class:`PlanExecutor`.

    The full pipeline: rewrite the graph per ``optimize``
    (:func:`~repro.exec.optimize.optimize_stream`), then plan the
    rewritten graph.  Planning artifacts — the rewrite itself, the bailout
    verdict, per-filter vectorization decisions, and recorded schedule
    traces — are cached in ``cache`` (default: the process-wide
    :data:`~repro.exec.cache.PLAN_CACHE`), keyed by the graph's content
    fingerprint; pass ``cache=False`` to plan from scratch.

    Falls back to the scalar compiled :class:`FlatGraph` (same ``run``
    interface) when the graph cannot be batched — see
    :func:`plan_bailout_reason`.
    """
    if cache is None:
        cache = PLAN_CACHE
    if cache is False:
        opt = optimize_stream(stream, optimize)
        flat = FlatGraph(opt, profiler, backend="compiled")
        if plan_bailout_reason(opt, flat) is not None:
            return flat
        return PlanExecutor(flat, chunk_outputs=chunk_outputs)

    entry = cache.entry_for(stream, optimize)
    if entry.optimized is None:
        entry.optimized = optimize_stream(stream, optimize)
    flat = FlatGraph(entry.optimized, profiler, backend="compiled")
    if entry.bailout is _UNSET:
        entry.bailout = plan_bailout_reason(entry.optimized, flat)
    if entry.bailout is not None:
        return flat
    executor = PlanExecutor(flat, chunk_outputs=chunk_outputs,
                            decisions=entry.decisions)
    if entry.decisions is None:
        entry.decisions = executor.decisions
    traces = entry.traces
    executor._trace_lookup = lambda n: traces.get((chunk_outputs, n))
    executor._trace_sink = (
        lambda n, t: traces.setdefault((chunk_outputs, n), t))
    return executor


# ---------------------------------------------------------------------------
# Plan introspection
# ---------------------------------------------------------------------------


@dataclass
class StepReport:
    """How one flattened node is realized inside a plan."""

    index: int
    name: str
    node_kind: str  # 'filter' | 'primitive' | 'splitter' | 'joiner'
    step_kind: str  # Step.kind of the chosen kernel
    reason: str | None  # set iff the node runs through FallbackStep


@dataclass
class PlanReport:
    """Which kernels a plan chose, and why nodes fell back to scalar.

    Fallback-heavy graphs (Radar: stateful sources, nonlinear magnitude
    and detector stages) are slow for reasons invisible in the output;
    this report makes them diagnosable.  Render with ``str(report)`` or
    inspect :attr:`steps` / :attr:`fallbacks` programmatically.
    """

    program: str
    optimize: str
    bailout: str | None
    steps: list[StepReport] = field(default_factory=list)

    @property
    def fallbacks(self) -> list[StepReport]:
        return [s for s in self.steps if s.step_kind == "fallback"]

    def __str__(self) -> str:
        title = f"plan report: {self.program} (optimize={self.optimize})"
        lines = [title, "=" * len(title)]
        if self.bailout is not None:
            lines.append(f"whole-graph bailout to compiled: {self.bailout}")
            return "\n".join(lines)
        name_w = max([len(s.name) for s in self.steps] + [4]) + 2
        kind_w = 12
        lines.append("node".ljust(name_w) + "step".ljust(kind_w)
                     + "fallback reason")
        lines.append("-" * (name_w + kind_w + 15))
        for s in self.steps:
            lines.append(s.name.ljust(name_w) + s.step_kind.ljust(kind_w)
                         + (s.reason or ""))
        n_fb = len(self.fallbacks)
        lines.append(f"{n_fb}/{len(self.steps)} nodes fall back to scalar "
                     "firing")
        return "\n".join(lines)


def plan_report(stream: Stream, optimize: str = "none",
                chunk_outputs: int = DEFAULT_CHUNK_OUTPUTS) -> PlanReport:
    """Explain how ``stream`` would execute under the plan backend."""
    opt = optimize_stream(stream, optimize)
    flat = FlatGraph(opt, NullProfiler(), backend="compiled")
    bailout = plan_bailout_reason(opt, flat)
    rep = PlanReport(program=getattr(stream, "name", "?"), optimize=optimize,
                     bailout=bailout)
    if bailout is not None:
        return rep
    executor = PlanExecutor(flat, chunk_outputs=chunk_outputs)
    for i, (node, step) in enumerate(zip(flat.nodes, executor.steps)):
        rep.steps.append(StepReport(i, node.name, node.kind, step.kind,
                                    executor.fallback_reasons.get(i)))
    return rep
