"""IR node definitions for the C-like work-function language.

The thesis analyzes filters whose ``work`` functions are written in an
imperative, C-like language with three tape primitives (``peek``, ``pop``,
``push``).  This module defines the expression and statement forms of that
language as immutable dataclasses.  The same IR is consumed by

* the concrete interpreter (:mod:`repro.ir.interp`) that runs filters,
* the Python code generator (:mod:`repro.ir.pycodegen`) used for fast
  execution, and
* the symbolic executor of the linear extraction analysis
  (:mod:`repro.linear.extraction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for all expressions."""


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (int or float)."""

    value: Union[int, float]


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a scalar local variable or filter field."""

    name: str


@dataclass(frozen=True)
class Index(Expr):
    """An array element reference ``base[index]``."""

    base: str
    index: Expr


@dataclass(frozen=True)
class Peek(Expr):
    """``peek(index)`` — read the input tape without consuming."""

    index: Expr


@dataclass(frozen=True)
class Pop(Expr):
    """``pop()`` — consume and return the head of the input tape."""


#: Binary operators understood by the IR.  Arithmetic, comparison, logical
#: and bit-level operators follow C semantics.
BINARY_OPS = frozenset(
    {"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
     "&&", "||", "&", "|", "^", "<<", ">>"}
)

#: Operators whose float execution counts as a multiplication instruction
#: (the thesis counts the fmul/fdiv x87 families as "multiplications").
MULTIPLICATIVE_OPS = frozenset({"*", "/"})

UNARY_OPS = frozenset({"-", "!"})

#: Intrinsic math functions (map onto libm / x87 transcendental ops).
INTRINSICS = frozenset(
    {"sin", "cos", "tan", "atan", "atan2", "exp", "log", "sqrt", "abs",
     "floor", "ceil", "pow", "min", "max", "round"}
)


@dataclass(frozen=True)
class Bin(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class Un(Expr):
    """A unary operation ``op operand``."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Call(Expr):
    """A call to a math intrinsic, e.g. ``sin(x)``."""

    fn: str
    args: tuple[Expr, ...]

    def __post_init__(self):
        if self.fn not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {self.fn!r}")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for all statements."""


@dataclass(frozen=True)
class Decl(Stmt):
    """Declare a local variable: ``float x = init`` or ``float[size] x``."""

    name: str
    ty: str  # 'float' | 'int'
    size: int | None = None  # None => scalar, else array length
    init: Expr | None = None

    def __post_init__(self):
        if self.ty not in ("float", "int"):
            raise ValueError(f"unknown type {self.ty!r}")


@dataclass(frozen=True)
class Assign(Stmt):
    """Assign to a scalar variable, field, or array element."""

    target: Union[Var, Index]
    value: Expr


@dataclass(frozen=True)
class PushS(Stmt):
    """``push(value)`` as a statement."""

    value: Expr


@dataclass(frozen=True)
class PopS(Stmt):
    """``pop()`` as a statement (value discarded)."""


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { then } else { orelse }``."""

    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class For(Stmt):
    """Counted loop ``for (ty var = start; var < stop; var += step)``.

    ``start``/``stop``/``step`` are evaluated once on entry; the loop runs
    while ``var < stop`` (or ``var > stop`` for a negative constant step).
    This covers every loop in the benchmark suite and keeps bounds
    resolvable for the symbolic executor.
    """

    var: str
    start: Expr
    stop: Expr
    body: tuple[Stmt, ...]
    step: Expr = field(default_factory=lambda: Const(1))


@dataclass(frozen=True)
class WorkFunction:
    """A work (or prework) function: I/O rates plus a statement body.

    ``peek`` is the maximum index peeked + 1, ``pop``/``push`` the number of
    items consumed/produced per invocation.  Rates must be compile-time
    constants, as in StreamIt.
    """

    peek: int
    pop: int
    push: int
    body: tuple[Stmt, ...]

    def __post_init__(self):
        if self.peek < self.pop:
            raise ValueError(
                f"peek rate ({self.peek}) must be >= pop rate ({self.pop})")
        if min(self.peek, self.pop, self.push) < 0:
            raise ValueError("rates must be non-negative")


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_exprs(node: Expr):
    """Yield ``node`` and every sub-expression, pre-order."""
    yield node
    if isinstance(node, Bin):
        yield from walk_exprs(node.left)
        yield from walk_exprs(node.right)
    elif isinstance(node, Un):
        yield from walk_exprs(node.operand)
    elif isinstance(node, Call):
        for a in node.args:
            yield from walk_exprs(a)
    elif isinstance(node, Index):
        yield from walk_exprs(node.index)
    elif isinstance(node, Peek):
        yield from walk_exprs(node.index)


def walk_stmts(stmts: tuple[Stmt, ...]):
    """Yield every statement in ``stmts``, recursing into bodies, pre-order."""
    for s in stmts:
        yield s
        if isinstance(s, If):
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)
        elif isinstance(s, For):
            yield from walk_stmts(s.body)


def stmt_exprs(s: Stmt):
    """Yield the top-level expressions appearing directly in statement ``s``."""
    if isinstance(s, Decl):
        if s.init is not None:
            yield s.init
    elif isinstance(s, Assign):
        yield s.target
        yield s.value
    elif isinstance(s, PushS):
        yield s.value
    elif isinstance(s, If):
        yield s.cond
    elif isinstance(s, For):
        yield s.start
        yield s.stop
        yield s.step


def has_data_dependent_control(stmts: tuple[Stmt, ...]) -> bool:
    """True when per-execution op counts may depend on tape values.

    Branches select different op mixes at runtime, and ``&&``/``||``
    short-circuit in the interpreter; counted loops with constant bounds
    are fine.  The plan backend uses this to decide whether one probed
    firing's FLOP counts generalize to every firing.
    """
    for s in walk_stmts(stmts):
        if isinstance(s, If):
            return True
        for e in stmt_exprs(s):
            for sub in walk_exprs(e):
                if isinstance(sub, Bin) and sub.op in ("&&", "||"):
                    return True
    return False


def assigned_names(stmts: tuple[Stmt, ...]) -> set[str]:
    """Names of all variables/arrays written anywhere in ``stmts``."""
    names = set()
    for s in walk_stmts(stmts):
        if isinstance(s, Assign):
            t = s.target
            names.add(t.name if isinstance(t, Var) else t.base)
        elif isinstance(s, Decl):
            names.add(s.name)
        elif isinstance(s, For):
            names.add(s.var)
    return names


def declared_names(stmts: tuple[Stmt, ...]) -> set[str]:
    """Names declared locally (Decl or loop variables) in ``stmts``."""
    names = set()
    for s in walk_stmts(stmts):
        if isinstance(s, Decl):
            names.add(s.name)
        elif isinstance(s, For):
            names.add(s.var)
    return names
