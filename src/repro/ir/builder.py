"""Ergonomic construction of work-function IR from Python.

Filters in the benchmark suite are authored through :class:`FilterBuilder`,
which stages Python operator syntax into IR trees::

    f = FilterBuilder('LowPassFilter', peek=N, pop=1, push=1)
    h = f.const_array('h', coeffs)
    with f.work():
        s = f.local('sum', 0.0)
        with f.loop('i', 0, N) as i:
            f.assign(s, s + h[i] * f.peek(i))
        f.push(s)
        f.pop()
    filt = f.build()
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import IRError
from . import nodes as N

Number = Union[int, float]


def _as_expr(v) -> N.Expr:
    if isinstance(v, EB):
        return v.node
    if isinstance(v, N.Expr):
        return v
    if isinstance(v, bool):
        return N.Const(int(v))
    if isinstance(v, (int, np.integer)):
        return N.Const(int(v))
    if isinstance(v, (float, np.floating)):
        return N.Const(float(v))
    raise IRError(f"cannot convert {v!r} to an IR expression")


class EB:
    """Expression builder: wraps an IR expression with operator overloads."""

    __slots__ = ("node",)

    def __init__(self, node: N.Expr):
        self.node = node

    # arithmetic ----------------------------------------------------------
    def _bin(self, op, other, swap=False):
        l, r = _as_expr(self), _as_expr(other)
        if swap:
            l, r = r, l
        return EB(N.Bin(op, l, r))

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, swap=True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, swap=True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, swap=True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __rtruediv__(self, o):
        return self._bin("/", o, swap=True)

    def __mod__(self, o):
        return self._bin("%", o)

    def __rmod__(self, o):
        return self._bin("%", o, swap=True)

    def __neg__(self):
        return EB(N.Un("-", _as_expr(self)))

    # comparisons ---------------------------------------------------------
    def __lt__(self, o):
        return self._bin("<", o)

    def __le__(self, o):
        return self._bin("<=", o)

    def __gt__(self, o):
        return self._bin(">", o)

    def __ge__(self, o):
        return self._bin(">=", o)

    def eq(self, o):
        """Equality comparison (``==`` is kept as Python identity-free)."""
        return self._bin("==", o)

    def ne(self, o):
        return self._bin("!=", o)

    def logical_and(self, o):
        return self._bin("&&", o)

    def logical_or(self, o):
        return self._bin("||", o)

    def bit_and(self, o):
        return self._bin("&", o)

    def bit_or(self, o):
        return self._bin("|", o)

    def bit_xor(self, o):
        return self._bin("^", o)

    def shl(self, o):
        return self._bin("<<", o)

    def shr(self, o):
        return self._bin(">>", o)


class ArrayRef:
    """Handle to a declared array; indexing yields element expressions."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __getitem__(self, index) -> EB:
        return EB(N.Index(self.name, _as_expr(index)))


def call(fn: str, *args) -> EB:
    """Build a math-intrinsic call expression, e.g. ``call('sin', x)``."""
    return EB(N.Call(fn, tuple(_as_expr(a) for a in args)))


class _BodyCtx:
    """Context manager that collects statements for one work function."""

    def __init__(self, builder: "FilterBuilder", kind: str,
                 rates: tuple[int, int, int]):
        self._builder = builder
        self._kind = kind
        self._rates = rates

    def __enter__(self):
        self._builder._begin_body()
        return self._builder

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            body = self._builder._end_body()
            peek, pop, push = self._rates
            wf = N.WorkFunction(peek=peek, pop=pop, push=push, body=body)
            if self._kind == "work":
                self._builder._work = wf
            else:
                self._builder._prework = wf
        return False


class _LoopCtx:
    """Context manager for a counted loop body."""

    def __init__(self, builder: "FilterBuilder", var: str, start, stop, step):
        self._builder = builder
        self._var = var
        self._start = _as_expr(start)
        self._stop = _as_expr(stop)
        self._step = _as_expr(step)

    def __enter__(self) -> EB:
        self._builder._push_block()
        return EB(N.Var(self._var))

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            body = self._builder._pop_block()
            self._builder._emit(
                N.For(self._var, self._start, self._stop, body, self._step))
        return False


class _IfCtx:
    """Context manager pair for if/else bodies."""

    def __init__(self, builder: "FilterBuilder", cond):
        self._builder = builder
        self._cond = _as_expr(cond)
        self._then: tuple[N.Stmt, ...] | None = None

    def __enter__(self):
        self._builder._push_block()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            block = self._builder._pop_block()
            if self._then is None:
                self._then = block
                self._builder._emit(N.If(self._cond, self._then, ()))
            else:
                # replace the If emitted at the end of the then-block
                stmts = self._builder._current_block()
                assert isinstance(stmts[-1], N.If)
                stmts[-1] = N.If(self._cond, self._then, block)
        return False

    def otherwise(self) -> "_IfCtx":
        """Open the else-branch: ``with cond_ctx.otherwise(): ...``"""
        if self._then is None:
            raise IRError("otherwise() before the if-body closed")
        return self


class FilterBuilder:
    """Stage a StreamIt-style filter definition into IR.

    Parameters mirror the StreamIt declaration ``work push u pop o peek e``.
    ``const_array``/``const`` register coefficient fields whose values are
    computed in Python (the moral equivalent of running ``init`` at
    elaboration time); ``state``/``state_array`` register mutable fields.
    """

    def __init__(self, name: str, *, peek: int, pop: int, push: int):
        self.name = name
        self._rates = (peek, pop, push)
        self._fields: dict[str, object] = {}
        self._mutable: set[str] = set()
        self._work: N.WorkFunction | None = None
        self._prework: N.WorkFunction | None = None
        self._blocks: list[list[N.Stmt]] | None = None

    # field declaration ----------------------------------------------------
    def const(self, name: str, value: Number) -> EB:
        """Declare an immutable scalar coefficient field."""
        self._fields[name] = float(value) if isinstance(value, float) else value
        return EB(N.Var(name))

    def const_array(self, name: str, values: Iterable[Number]) -> ArrayRef:
        """Declare an immutable coefficient array field."""
        self._fields[name] = np.asarray(list(values), dtype=float)
        return ArrayRef(name)

    def state(self, name: str, value: Number) -> EB:
        """Declare a mutable scalar state field (marks the filter stateful)."""
        self._fields[name] = value
        self._mutable.add(name)
        return EB(N.Var(name))

    def state_array(self, name: str, values: Iterable[Number]) -> ArrayRef:
        """Declare a mutable array state field."""
        self._fields[name] = np.asarray(list(values), dtype=float)
        self._mutable.add(name)
        return ArrayRef(name)

    # body construction ------------------------------------------------------
    def work(self) -> _BodyCtx:
        return _BodyCtx(self, "work", self._rates)

    def prework(self, *, peek: int, pop: int, push: int) -> _BodyCtx:
        """Define an ``initWork`` body with its own rates."""
        return _BodyCtx(self, "prework", (peek, pop, push))

    def _begin_body(self):
        if self._blocks is not None:
            raise IRError("nested work() bodies are not allowed")
        self._blocks = [[]]

    def _end_body(self) -> tuple[N.Stmt, ...]:
        assert self._blocks is not None and len(self._blocks) == 1
        body = tuple(self._blocks[0])
        self._blocks = None
        return body

    def _push_block(self):
        self._blocks.append([])

    def _pop_block(self) -> tuple[N.Stmt, ...]:
        return tuple(self._blocks.pop())

    def _current_block(self) -> list[N.Stmt]:
        if self._blocks is None:
            raise IRError("statement emitted outside a work() body")
        return self._blocks[-1]

    def _emit(self, stmt: N.Stmt):
        self._current_block().append(stmt)

    # statements -------------------------------------------------------------
    def local(self, name: str, init=None, ty: str = "float") -> EB:
        """Declare a scalar local; returns a reference expression."""
        self._emit(N.Decl(name, ty, None,
                          None if init is None else _as_expr(init)))
        return EB(N.Var(name))

    def local_array(self, name: str, size: int, ty: str = "float") -> ArrayRef:
        self._emit(N.Decl(name, ty, size, None))
        return ArrayRef(name)

    def assign(self, target, value):
        t = _as_expr(target)
        if not isinstance(t, (N.Var, N.Index)):
            raise IRError(f"cannot assign to {t!r}")
        self._emit(N.Assign(t, _as_expr(value)))

    def push(self, value):
        self._emit(N.PushS(_as_expr(value)))

    def pop(self):
        self._emit(N.PopS())

    def pop_expr(self) -> EB:
        """``pop()`` used as a value (inside an expression)."""
        return EB(N.Pop())

    def peek(self, index) -> EB:
        return EB(N.Peek(_as_expr(index)))

    def loop(self, var: str, start, stop, step=1) -> _LoopCtx:
        return _LoopCtx(self, var, start, stop, step)

    def if_(self, cond) -> _IfCtx:
        return _IfCtx(self, cond)

    # build -------------------------------------------------------------------
    def build(self):
        from ..graph.streams import Filter  # local import to avoid a cycle

        if self._work is None:
            raise IRError(f"filter {self.name!r} has no work body")
        return Filter(
            name=self.name,
            work=self._work,
            prework=self._prework,
            fields=dict(self._fields),
            mutable_fields=frozenset(
                self._mutable | (N.assigned_names(self._work.body)
                                 & set(self._fields))),
        )
