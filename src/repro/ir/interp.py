"""Reference tree-walking interpreter for work-function IR.

Executes one firing of a :class:`~repro.ir.nodes.WorkFunction` against a
pair of channels, reporting every floating-point operation to the active
profiler.  This is the semantic reference: the faster generated-Python
backend (:mod:`repro.ir.pycodegen`) is tested against it.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InterpError
from ..profiling import Profiler
from . import nodes as N

_MAX_LOOP_ITERS = 10_000_000

_INTRINSIC_IMPL = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "atan2": math.atan2,
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": pow,
    "min": min,
    "max": max,
    "round": round,
}

_COUNTED_INTRINSICS = frozenset(
    {"sin", "cos", "tan", "atan", "atan2", "exp", "log", "sqrt", "pow"})


def _is_float(v) -> bool:
    # complex counts as floating for op accounting and promotion: under
    # a complex numeric policy, scalar evaluation carries complex
    # samples through the same float-typed DSL expressions
    return isinstance(v, (float, complex))


def _c_int_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class Interpreter:
    """Interprets work-function bodies for a single filter instance.

    ``fields`` maps field names to scalars or numpy arrays; the dict (and
    array contents) are mutated in place by field assignments, which is how
    stateful filters carry state between firings.
    """

    def __init__(self, fields: dict, profiler: Profiler):
        self.fields = fields
        self.profiler = profiler
        self._ch_in = None
        self._ch_out = None
        self._popped = 0
        self._pushed = 0

    # ------------------------------------------------------------------
    def run(self, wf: N.WorkFunction, ch_in, ch_out) -> None:
        """Execute one firing of ``wf``: read from ch_in, write to ch_out.

        Reentrant: per-firing tape state is saved and restored, so a
        probe firing (e.g. the planner's FLOP-count probe while a paused
        session holds this runner mid-stream) cannot corrupt an
        in-flight firing's pop/push accounting.
        """
        frame = (self._ch_in, self._ch_out, self._popped, self._pushed)
        env: dict[str, object] = {}
        self._ch_in = ch_in
        self._ch_out = ch_out
        self._popped = 0
        self._pushed = 0
        try:
            self._exec_block(wf.body, env)
            if self._popped != wf.pop:
                raise InterpError(
                    f"work popped {self._popped} items, "
                    f"declared pop {wf.pop}")
            if self._pushed != wf.push:
                raise InterpError(
                    f"work pushed {self._pushed} items, "
                    f"declared push {wf.push}")
        finally:
            self._ch_in, self._ch_out, self._popped, self._pushed = frame

    # ------------------------------------------------------------------
    def _exec_block(self, stmts, env):
        for s in stmts:
            self._exec_stmt(s, env)

    def _exec_stmt(self, s, env):
        if isinstance(s, N.Assign):
            v = self._eval(s.value, env)
            self._store(s.target, v, env)
        elif isinstance(s, N.PushS):
            v = self._eval(s.value, env)
            # ``* 1.0`` instead of ``float()``: bit-exact for floats,
            # coerces ints, passes complex through (complex policies)
            self._ch_out.push(v * 1.0)
            self._pushed += 1
        elif isinstance(s, N.PopS):
            self._ch_in.pop()
            self._popped += 1
        elif isinstance(s, N.For):
            start = self._eval(s.start, env)
            stop = self._eval(s.stop, env)
            step = self._eval(s.step, env)
            if step == 0:
                raise InterpError("loop step of zero")
            i, iters = start, 0
            while (i < stop) if step > 0 else (i > stop):
                env[s.var] = i
                self._exec_block(s.body, env)
                i = env[s.var] + step
                iters += 1
                if iters > _MAX_LOOP_ITERS:
                    raise InterpError("loop iteration bound exceeded")
            env[s.var] = i
        elif isinstance(s, N.If):
            c = self._eval(s.cond, env)
            if c:
                self._exec_block(s.then, env)
            else:
                self._exec_block(s.orelse, env)
        elif isinstance(s, N.Decl):
            if s.size is not None:
                env[s.name] = np.zeros(s.size) if s.ty == "float" \
                    else np.zeros(s.size, dtype=int)
            elif s.init is not None:
                v = self._eval(s.init, env)
                env[s.name] = v * 1.0 if s.ty == "float" else int(v)
            else:
                env[s.name] = 0.0 if s.ty == "float" else 0
        else:  # pragma: no cover
            raise InterpError(f"unknown statement {s!r}")

    def _store(self, target, value, env):
        if isinstance(target, N.Var):
            name = target.name
            if name in env:
                env[name] = self._coerce_like(env[name], value)
            elif name in self.fields:
                self.fields[name] = self._coerce_like(self.fields[name], value)
            else:
                env[name] = value
        else:  # Index
            idx = self._eval(target.index, env)
            arr = self._lookup_array(target.base, env)
            arr[int(idx)] = value

    @staticmethod
    def _coerce_like(old, new):
        if isinstance(old, (float, complex)):
            return new * 1.0
        if isinstance(old, int) and not isinstance(old, bool):
            return int(new)
        return new

    def _lookup_array(self, name, env):
        if name in env:
            return env[name]
        if name in self.fields:
            return self.fields[name]
        raise InterpError(f"unknown array {name!r}")

    # ------------------------------------------------------------------
    def _eval(self, e, env):
        if isinstance(e, N.Const):
            return e.value
        if isinstance(e, N.Var):
            if e.name in env:
                return env[e.name]
            if e.name in self.fields:
                return self.fields[e.name]
            raise InterpError(f"unknown variable {e.name!r}")
        if isinstance(e, N.Index):
            idx = int(self._eval(e.index, env))
            arr = self._lookup_array(e.base, env)
            v = arr[idx]
            return float(v) if isinstance(v, (float, np.floating)) else int(v)
        if isinstance(e, N.Peek):
            idx = int(self._eval(e.index, env))
            return self._ch_in.peek(idx)
        if isinstance(e, N.Pop):
            self._popped += 1
            return self._ch_in.pop()
        if isinstance(e, N.Bin):
            return self._eval_bin(e, env)
        if isinstance(e, N.Un):
            v = self._eval(e.operand, env)
            if e.op == "-":
                if _is_float(v):
                    self.profiler.op("fneg")
                return -v
            return int(not v)
        if isinstance(e, N.Call):
            args = [self._eval(a, env) for a in e.args]
            if e.fn in _COUNTED_INTRINSICS:
                self.profiler.op("fcall")
            elif e.fn == "abs" and any(_is_float(a) for a in args):
                self.profiler.op("fabs")
            return _INTRINSIC_IMPL[e.fn](*args)
        raise InterpError(f"unknown expression {e!r}")  # pragma: no cover

    def _eval_bin(self, e, env):
        op = e.op
        if op == "&&":
            return int(bool(self._eval(e.left, env))
                       and bool(self._eval(e.right, env)))
        if op == "||":
            return int(bool(self._eval(e.left, env))
                       or bool(self._eval(e.right, env)))
        a = self._eval(e.left, env)
        b = self._eval(e.right, env)
        fl = _is_float(a) or _is_float(b)
        if op == "+":
            if fl:
                self.profiler.op("fadd")
            return a + b
        if op == "-":
            if fl:
                self.profiler.op("fsub")
            return a - b
        if op == "*":
            if fl:
                self.profiler.op("fmul")
            return a * b
        if op == "/":
            if fl:
                self.profiler.op("fdiv")
                return a / b
            return _c_int_div(a, b)
        if op == "%":
            if fl:
                self.profiler.op("fdiv")
                return math.fmod(a, b)
            return a - _c_int_div(a, b) * b
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if fl:
                self.profiler.op("fcmp")
            result = {"==": a == b, "!=": a != b, "<": a < b,
                      "<=": a <= b, ">": a > b, ">=": a >= b}[op]
            return int(result)
        # bit-level ops: ints only
        ia, ib = int(a), int(b)
        if op == "&":
            return ia & ib
        if op == "|":
            return ia | ib
        if op == "^":
            return ia ^ ib
        if op == "<<":
            return ia << ib
        if op == ">>":
            return ia >> ib
        raise InterpError(f"unknown operator {op!r}")  # pragma: no cover
