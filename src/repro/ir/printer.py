"""Pretty-printer: render work-function IR as StreamIt-like source text.

Used for diagnostics, golden tests, and the README examples.
"""

from __future__ import annotations

from . import nodes as N

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def expr_to_str(e: N.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(e, N.Const):
        if isinstance(e.value, float):
            return repr(e.value)
        return str(e.value)
    if isinstance(e, N.Var):
        return e.name
    if isinstance(e, N.Index):
        return f"{e.base}[{expr_to_str(e.index)}]"
    if isinstance(e, N.Peek):
        return f"peek({expr_to_str(e.index)})"
    if isinstance(e, N.Pop):
        return "pop()"
    if isinstance(e, N.Un):
        inner = expr_to_str(e.operand, 11)
        return f"{'-' if e.op == '-' else '!'}{inner}"
    if isinstance(e, N.Call):
        args = ", ".join(expr_to_str(a) for a in e.args)
        return f"{e.fn}({args})"
    if isinstance(e, N.Bin):
        prec = _PRECEDENCE[e.op]
        s = (f"{expr_to_str(e.left, prec)} {e.op} "
             f"{expr_to_str(e.right, prec + 1)}")
        return f"({s})" if prec < parent_prec else s
    raise TypeError(f"unknown expression {e!r}")


def _stmt_lines(s: N.Stmt, indent: int) -> list[str]:
    pad = "    " * indent
    if isinstance(s, N.Decl):
        ty = f"{s.ty}[{s.size}]" if s.size is not None else s.ty
        init = f" = {expr_to_str(s.init)}" if s.init is not None else ""
        return [f"{pad}{ty} {s.name}{init};"]
    if isinstance(s, N.Assign):
        return [f"{pad}{expr_to_str(s.target)} = {expr_to_str(s.value)};"]
    if isinstance(s, N.PushS):
        return [f"{pad}push({expr_to_str(s.value)});"]
    if isinstance(s, N.PopS):
        return [f"{pad}pop();"]
    if isinstance(s, N.If):
        lines = [f"{pad}if ({expr_to_str(s.cond)}) {{"]
        for t in s.then:
            lines.extend(_stmt_lines(t, indent + 1))
        if s.orelse:
            lines.append(f"{pad}}} else {{")
            for t in s.orelse:
                lines.extend(_stmt_lines(t, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(s, N.For):
        step = expr_to_str(s.step)
        upd = f"{s.var}++" if step == "1" else f"{s.var} += {step}"
        lines = [f"{pad}for (int {s.var} = {expr_to_str(s.start)}; "
                 f"{s.var} < {expr_to_str(s.stop)}; {upd}) {{"]
        for t in s.body:
            lines.extend(_stmt_lines(t, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement {s!r}")


def work_to_str(wf: N.WorkFunction, name: str = "work") -> str:
    """Render a work function as StreamIt-like source."""
    header = f"{name} peek {wf.peek} pop {wf.pop} push {wf.push} {{"
    lines = [header]
    for s in wf.body:
        lines.extend(_stmt_lines(s, 1))
    lines.append("}")
    return "\n".join(lines)
