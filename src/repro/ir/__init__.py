"""The C-like work-function IR: nodes, builder, interpreter, codegen."""

from . import nodes
from .builder import EB, ArrayRef, FilterBuilder, call
from .interp import Interpreter
from .printer import expr_to_str, work_to_str
from .pycodegen import compile_work

__all__ = [
    "nodes", "FilterBuilder", "EB", "ArrayRef", "call", "Interpreter",
    "expr_to_str", "work_to_str", "compile_work",
]
