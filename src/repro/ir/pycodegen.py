"""Generate fast Python functions from work-function IR.

This is the reproduction of the StreamIt uniprocessor backend: where the
paper's compiler emits C that is compiled with ``gcc -O2``, we emit Python
source compiled with :func:`compile`/``exec``.  The generated function has
signature ``work(peek, pop, push, F)`` where ``peek``/``pop``/``push`` are
bound channel methods and ``F`` is the filter's field dict.

Float-op accounting is *static per basic block*: at generation time we count
the float operations in each straight-line region and emit a single bulk
counter update that executes once per region execution, giving dynamic
counts identical to the tree interpreter at a fraction of the cost.

Type inference: locals declared ``int`` (including loop variables) are ints;
everything else (peeks, pops, float fields/locals) is a float.  An operation
is a float-op when any operand is float, mirroring the interpreter.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import IRError
from ..profiling import Counts
from . import nodes as N
from .interp import _COUNTED_INTRINSICS


class _TypeEnv:
    """Tracks which names are known ints; fields contribute their dtype."""

    def __init__(self, fields: dict):
        self.int_names: set[str] = set()
        self.float_names: set[str] = set()
        for name, value in fields.items():
            if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
                self.int_names.add(name)
            elif isinstance(value, np.ndarray) and value.dtype.kind == "i":
                self.int_names.add(name)
            else:
                self.float_names.add(name)

    def declare(self, name: str, ty: str):
        if ty == "int":
            self.int_names.add(name)
            self.float_names.discard(name)
        else:
            self.float_names.add(name)
            self.int_names.discard(name)

    def is_int(self, e: N.Expr) -> bool:
        """True when the expression is statically known to be an int."""
        if isinstance(e, N.Const):
            return isinstance(e.value, int)
        if isinstance(e, N.Var):
            return e.name in self.int_names
        if isinstance(e, N.Index):
            return e.base in self.int_names
        if isinstance(e, (N.Peek, N.Pop)):
            return False
        if isinstance(e, N.Un):
            return self.is_int(e.operand) if e.op == "-" else True
        if isinstance(e, N.Bin):
            if e.op in ("&&", "||", "&", "|", "^", "<<", ">>",
                        "==", "!=", "<", "<=", ">", ">="):
                return True
            return self.is_int(e.left) and self.is_int(e.right)
        if isinstance(e, N.Call):
            if e.fn in ("floor", "ceil", "round"):
                return True
            if e.fn in ("abs", "min", "max"):
                return all(self.is_int(a) for a in e.args)
            return False
        return False


class _Emitter:
    def __init__(self, tenv: _TypeEnv):
        self.tenv = tenv
        self.lines: list[str] = []
        self.pending = Counts()  # float-ops owed for the current block

    def emit(self, line: str, indent: int):
        self.lines.append("    " * indent + line)

    def flush_counts(self, indent: int):
        """Emit a counter bump for the ops accumulated in this region."""
        c = self.pending
        if c.flops == 0:
            self.pending = Counts()
            return
        args = ", ".join(f"{k}={getattr(c, k)}"
                         for k in ("fadd", "fsub", "fmul", "fdiv", "fcmp",
                                   "fneg", "fabs", "fcall")
                         if getattr(c, k))
        self.emit(f"_bulk({args})", indent)
        self.pending = Counts()

    # -- expressions --------------------------------------------------
    def expr(self, e: N.Expr) -> str:
        if isinstance(e, N.Const):
            return repr(e.value)
        if isinstance(e, N.Var):
            return self._name(e.name)
        if isinstance(e, N.Index):
            return f"{self._name(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, N.Peek):
            return f"peek({self.expr(e.index)})"
        if isinstance(e, N.Pop):
            return "pop()"
        if isinstance(e, N.Un):
            if e.op == "-":
                if not self.tenv.is_int(e.operand):
                    self.pending.fneg += 1
                return f"(-{self.expr(e.operand)})"
            return f"(0 if {self.expr(e.operand)} else 1)"
        if isinstance(e, N.Call):
            return self._call(e)
        if isinstance(e, N.Bin):
            return self._bin(e)
        raise IRError(f"cannot generate code for {e!r}")

    def _name(self, name: str) -> str:
        return f"_v_{name}"

    def _call(self, e: N.Call) -> str:
        args = ", ".join(self.expr(a) for a in e.args)
        if e.fn in _COUNTED_INTRINSICS:
            self.pending.fcall += 1
        elif e.fn == "abs" and not all(self.tenv.is_int(a) for a in e.args):
            self.pending.fabs += 1
        fn = {"abs": "abs", "pow": "pow", "min": "min", "max": "max",
              "round": "round"}.get(e.fn, f"_math.{e.fn}")
        return f"{fn}({args})"

    def _bin(self, e: N.Bin) -> str:
        op = e.op
        if op == "&&":
            return f"(1 if ({self.expr(e.left)} and {self.expr(e.right)}) else 0)"
        if op == "||":
            return f"(1 if ({self.expr(e.left)} or {self.expr(e.right)}) else 0)"
        both_int = self.tenv.is_int(e.left) and self.tenv.is_int(e.right)
        l, r = self.expr(e.left), self.expr(e.right)
        if op in ("+", "-", "*"):
            if not both_int:
                self.pending.fadd += op == "+"
                self.pending.fsub += op == "-"
                self.pending.fmul += op == "*"
            return f"({l} {op} {r})"
        if op == "/":
            if both_int:
                return f"_idiv({l}, {r})"
            self.pending.fdiv += 1
            return f"({l} / {r})"
        if op == "%":
            if both_int:
                return f"_imod({l}, {r})"
            self.pending.fdiv += 1
            return f"_math.fmod({l}, {r})"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if not both_int:
                self.pending.fcmp += 1
            return f"(1 if {l} {op} {r} else 0)"
        return f"({l} {op} {r})"  # & | ^ << >>

    # -- statements ---------------------------------------------------
    def block(self, stmts: tuple[N.Stmt, ...], indent: int):
        for s in stmts:
            self.stmt(s, indent)
        self.flush_counts(indent)

    def stmt(self, s: N.Stmt, indent: int):
        if isinstance(s, N.Decl):
            self.tenv.declare(s.name, s.ty)
            if s.size is not None:
                zero = "0.0" if s.ty == "float" else "0"
                self.emit(f"{self._name(s.name)} = [{zero}] * {s.size}", indent)
            else:
                init = self.expr(s.init) if s.init is not None else (
                    "0.0" if s.ty == "float" else "0")
                if s.ty == "float":
                    # ``x * 1.0`` instead of ``float(x)``: bit-exact for
                    # floats, coerces ints, and passes complex through
                    # (the plan backend's scalar fallback may carry
                    # complex samples under a complex numeric policy)
                    self.emit(f"{self._name(s.name)} = {init} * 1.0",
                              indent)
                else:
                    self.emit(f"{self._name(s.name)} = int({init})", indent)
        elif isinstance(s, N.Assign):
            rhs = self.expr(s.value)
            if isinstance(s.target, N.Var):
                self.emit(f"{self._name(s.target.name)} = {rhs}", indent)
            else:
                self.emit(
                    f"{self._name(s.target.base)}"
                    f"[{self.expr(s.target.index)}] = {rhs}", indent)
        elif isinstance(s, N.PushS):
            # same ``* 1.0`` normalization as float declarations
            self.emit(f"push({self.expr(s.value)} * 1.0)", indent)
        elif isinstance(s, N.PopS):
            self.emit("pop()", indent)
        elif isinstance(s, N.If):
            # flush ops owed before the branch, then count each arm inside it
            cond = self.expr(s.cond)
            self.flush_counts(indent)
            self.emit(f"if {cond}:", indent)
            if s.then:
                self.block(s.then, indent + 1)
            else:
                self.emit("pass", indent + 1)
            if s.orelse:
                self.emit("else:", indent)
                self.block(s.orelse, indent + 1)
        elif isinstance(s, N.For):
            self.tenv.declare(s.var, "int")
            start, stop, step = (self.expr(s.start), self.expr(s.stop),
                                 self.expr(s.step))
            self.flush_counts(indent)
            var = self._name(s.var)
            self.emit(f"for {var} in range({start}, {stop}, {step}):", indent)
            if s.body:
                self.block(s.body, indent + 1)
            else:
                self.emit("pass", indent + 1)
        else:  # pragma: no cover
            raise IRError(f"cannot generate code for {s!r}")


def _idiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    return a - _idiv(a, b) * b


def compile_work(wf: N.WorkFunction, fields: dict, name: str = "work"):
    """Compile a work function to a Python callable.

    Returns ``fn(peek, pop, push, fields, bulk)`` where ``bulk`` is the
    profiler's :meth:`~repro.runtime.profiler.Profiler.bulk` method.  Field
    reads/writes go through the ``fields`` dict so state persists across
    firings and is shared with the interpreter.
    """
    tenv = _TypeEnv(fields)
    em = _Emitter(tenv)
    name = "".join(c if c.isalnum() or c == "_" else "_" for c in name) \
        or "work"
    if name[0].isdigit():
        name = f"f_{name}"
    em.emit(f"def _{name}(peek, pop, push, _F, _bulk):", 0)
    # Bind fields to locals on entry; write back mutated scalars on exit.
    field_names = sorted(fields)
    for fname in field_names:
        em.emit(f"_v_{fname} = _F[{fname!r}]", 1)
    em.block(wf.body, 1)
    written = N.assigned_names(wf.body)
    for fname in field_names:
        value = fields[fname]
        if fname in written and not isinstance(value, np.ndarray):
            em.emit(f"_F[{fname!r}] = _v_{fname}", 1)
    src = "\n".join(em.lines) + "\n"
    namespace = {"_math": math, "_idiv": _idiv, "_imod": _imod}
    exec(compile(src, f"<generated:{name}>", "exec"), namespace)
    fn = namespace[f"_{name}"]
    fn.__repro_source__ = src
    return fn
