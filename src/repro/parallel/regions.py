"""Partition a compiled plan into schedulable units + dependency DAG.

The planner's step list is already a topological order of the flattened
acyclic graph (feedback islands collapsed into single facade steps), so
every *step* is a schedulable unit.  Two refinements:

* consecutive offloadable single-in/single-out kernels whose connecting
  ring has no other consumer **chain** into one unit, so a pipeline like
  ``matmul -> decimator -> matmul`` ships as one task instead of three
  round trips;
* units containing only trivial transfers (identity/decimator) or any
  non-picklable machinery (sources, collectors, fallback runners,
  feedback islands, split/join scatter-gathers) stay **inline** — the
  scheduler runs them in the parent while offloaded units execute in
  workers.

Edges come from ring adjacency: each ring has exactly one producer step
and at most one consumer step, so unit ``P`` precedes unit ``C``
whenever a ring flows between them.  Executing any topological order of
this DAG with full per-flush batch counts is equivalent to the serial
flush: a step's output depends only on its input rings' contents, which
are complete once its producers ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exec import kernels as K

#: step types a worker can execute (picklable, single-in/single-out,
#: all state carried through the Step carry API)
OFFLOADABLE = (K.MatmulStep, K.StatefulLinearStep, K.NaiveFreqStep,
               K.OptimizedFreqStep, K.IdentityStep, K.DecimatorStep)

#: step types that justify paying a dispatch round trip
HEAVY = (K.MatmulStep, K.StatefulLinearStep, K.NaiveFreqStep,
         K.OptimizedFreqStep)


@dataclass
class Unit:
    """One schedulable unit: a maximal chain of plan steps."""

    id: int
    step_indices: list[int] = field(default_factory=list)
    offload: bool = False
    #: unit ids this unit depends on / unlocks
    preds: set = field(default_factory=set)
    succs: set = field(default_factory=set)
    #: union of ring indices any member step reads or writes
    ring_ids: set = field(default_factory=set)


def build_units(executor) -> list[Unit]:
    """Group ``executor.steps`` into units and wire the DAG.

    ``executor`` is a :class:`~repro.exec.planner.PlanExecutor`: its
    ``sim_nodes[i].in_ids/out_ids`` give ring wiring per step (a
    feedback island's interior rings are invisible here — only the
    facade's external in/out appear, keeping the island atomic).
    """
    steps = executor.steps
    sim = executor.sim_nodes
    producer_of: dict[int, int] = {}  # ring id -> producing step index
    consumers_of: dict[int, list[int]] = {}
    for i, sn in enumerate(sim):
        for r in sn.out_ids:
            producer_of[r] = i
        for r in sn.in_ids:
            consumers_of.setdefault(r, []).append(i)

    units: list[Unit] = []
    unit_of: list[int] = [0] * len(steps)
    for i, step in enumerate(steps):
        sn = sim[i]
        chain_to = None
        if (isinstance(step, OFFLOADABLE) and len(sn.in_ids) == 1
                and len(sn.out_ids) <= 1):
            r = sn.in_ids[0]
            p = producer_of.get(r)
            if (p is not None and p < i
                    and isinstance(steps[p], OFFLOADABLE)
                    and len(consumers_of.get(r, ())) == 1):
                cand = units[unit_of[p]]
                if cand.step_indices[-1] == p:
                    chain_to = cand
        if chain_to is not None:
            chain_to.step_indices.append(i)
            unit_of[i] = chain_to.id
        else:
            u = Unit(id=len(units), step_indices=[i])
            units.append(u)
            unit_of[i] = u.id
        units[unit_of[i]].ring_ids.update(sn.in_ids)
        units[unit_of[i]].ring_ids.update(sn.out_ids)

    for u in units:
        u.offload = any(isinstance(steps[i], HEAVY) for i in u.step_indices)

    for r, consumers in consumers_of.items():
        p = producer_of.get(r)
        if p is None:
            continue
        for c in consumers:
            pu, cu = unit_of[p], unit_of[c]
            if pu != cu:
                units[cu].preds.add(pu)
                units[pu].succs.add(cu)
    return units
