"""Data-parallel fission: replicate linear leaves behind split/join.

A linear filter processes disjoint (or sliding) windows of one stream;
``k``-way fission turns it into a ``SplitJoin`` of ``k`` replicas, each
handling every ``k``-th firing, so the parallel scheduler can run them
on different cores.  Two constructions:

* **Round-robin cloning** — ``peek == pop`` stateless leaves partition
  the input exactly: ``roundrobin(o,...,o)`` deals each firing's window
  to one replica, the clone executes the identical kernel on it, and
  ``roundrobin(u,...,u)`` reassembles outputs in firing order.  No
  redundant work, and the replica arithmetic is literally the fused
  kernel's, so outputs are bitwise identical.

* **State-monoid lift** — lookahead (``peek > pop``) and stateful
  leaves fission through :func:`~repro.linear.state.expand_stateful`:
  the ``k``-firing block operator expresses firing ``i``'s outputs (its
  column slice) and the full ``k``-step state advance in terms of the
  *block-start* state, so replica ``i`` keeps the complete (tiny) state
  trajectory locally while computing only its own outputs.  Every
  replica duplicates the window (``Duplicate`` splitter) and the state
  advance; the per-output work — the dominant term for peek-heavy
  filters — is split ``k`` ways.  Summation regrouping makes this path
  1e-9-close rather than bitwise.

Both paths preserve **exact FLOP accounting**: each replica carries
``account_counts`` — the *original* per-firing counts — so ``k``
replicas firing ``F/k`` times report precisely what the fused filter
reports for ``F`` firings (the planner honors the override).

Fission is priced against the fused kernel by
:func:`~repro.selection.costs.fission_speedup` (calibrated cost model);
unprofitable leaves are left alone.  Leaves inside a ``FeedbackLoop``
are never fissioned — replicas raise lookahead, which would shrink the
cycle's delay budget.
"""

from __future__ import annotations

from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             RoundRobin, SplitJoin, Stream)
from ..linear.filters import LinearFilter
from ..linear.matmul import blas_cost_counts, direct_cost_counts
from ..linear.node import LinearNode
from ..linear.state import (StatefulLinearFilter, StatefulLinearNode,
                            expand_stateful, from_stateless,
                            stateful_cost_counts)
from ..selection.costs import fission_speedup

#: Minimum modeled speedup before a leaf is worth replicating.
FISSION_THRESHOLD = 1.2


def fission_stream(stream: Stream, workers: int, policy=None) -> Stream:
    """Replicate profitable linear leaves ``workers`` ways
    (non-destructive; returns ``stream`` itself when nothing fissions).
    """
    if workers <= 1:
        return stream
    return _rewrite(stream, workers, policy)


def _rewrite(s: Stream, k: int, policy) -> Stream:
    if isinstance(s, Pipeline):
        kids = [_rewrite(c, k, policy) for c in s.children]
        if all(a is b for a, b in zip(kids, s.children)):
            return s
        return Pipeline(kids, name=s.name)
    if isinstance(s, SplitJoin):
        # sibling branches already run in parallel: replicas inside a
        # wide splitjoin would oversubscribe the pool, so the budget
        # divides across branches
        inner = k // len(s.children)
        if inner < 2:
            return s
        kids = [_rewrite(c, inner, policy) for c in s.children]
        if all(a is b for a, b in zip(kids, s.children)):
            return s
        return SplitJoin(s.splitter, kids, s.joiner, name=s.name)
    if isinstance(s, FeedbackLoop):
        return s
    fissioned = _fission_leaf(s, k, policy)
    return s if fissioned is None else fissioned


def _candidate(s: Stream):
    """``(node, counts, backend)`` for a fissionable leaf, else None.

    ``counts`` is the exact per-firing accounting the fused form would
    report — the replicas' ``account_counts`` override.
    """
    if isinstance(s, StatefulLinearFilter):
        node = s.stateful_node
        counts = getattr(s, "account_counts", None)
        return node, counts or stateful_cost_counts(node), "direct"
    if isinstance(s, LinearFilter):
        node = s.linear_node
        counts = getattr(s, "account_counts", None)
        if counts is None:
            counts = (blas_cost_counts(node) if s.backend == "blas"
                      else direct_cost_counts(node))
        return node, counts, s.backend
    if isinstance(s, Filter):
        from ..exec.planner import _vectorize_decision
        params, _reason = _vectorize_decision(s)
        if params is None:
            return None
        node, counts = params
        return node, counts, "direct"
    return None


def _fission_leaf(s: Stream, k: int, policy) -> Stream | None:
    cand = _candidate(s)
    if cand is None:
        return None
    node, counts, backend = cand
    o, u = node.pop, node.push
    if o < 1 or u < 1 or node.peek < o:
        return None
    if fission_speedup(node, k, policy=policy) < FISSION_THRESHOLD:
        return None
    name = getattr(s, "name", "filter")
    if isinstance(node, LinearNode) and node.peek == o:
        # round-robin clone path: firings read disjoint windows
        reps = [LinearFilter(node, name=f"{name}.fis{i}", backend=backend)
                for i in range(k)]
        split: Duplicate | RoundRobin = RoundRobin((o,) * k)
    else:
        # state-monoid lift path
        snode = (node if isinstance(node, StatefulLinearNode)
                 else from_stateless(node))
        ex = expand_stateful(snode, k)
        E, U = ex.peek, ex.push
        reps = []
        for i in range(k):
            cols = slice(U - (i + 1) * u, U - i * u)
            if snode.state_dim == 0:
                rnode = LinearNode(A=ex.Ax[:, cols], b=ex.bx[cols],
                                   peek=E, pop=ex.pop, push=u)
                reps.append(LinearFilter(rnode, name=f"{name}.fis{i}",
                                         backend=backend))
            else:
                rnode = StatefulLinearNode(
                    Ax=ex.Ax[:, cols], As=ex.As[:, cols], bx=ex.bx[cols],
                    Cx=ex.Cx, Cs=ex.Cs, bs=ex.bs, s0=ex.s0,
                    peek=E, pop=ex.pop, push=u)
                reps.append(StatefulLinearFilter(rnode,
                                                 name=f"{name}.fis{i}"))
        split = Duplicate()
    for rep in reps:
        rep.account_counts = counts
    return SplitJoin(split, reps, RoundRobin((u,) * k),
                     name=f"{name}.fission{k}")
