"""Persistent worker pool for the parallel plan executor.

Workers are long-lived processes (fork where available, spawn
otherwise) connected by duplex pipes.  A worker keeps a **warm cache**
of kernel steps per plan: the first task touching a step ships a cold
pickled copy; later tasks reference it by index, so steady-state
dispatch moves only cursors, batch counts, and per-step state carries.

Protocol (parent -> worker):

* ``("exec", task_id, plan_uid, rings_info, entries)`` — attach/refresh
  the listed rings (``ShmRing.describe()`` tuples), then execute each
  ``(step_idx, n, cold_step | None, carry | None)`` entry in order.
  ``carry`` is a 1-tuple holding the step's authoritative state (the
  parent's copy) when the step carries state across firings.
* ``("forget", plan_uid, ring_uids)`` — retire a plan's cached steps
  and detach its rings.
* ``("stop",)`` — exit.

Replies: ``("ok", task_id, cursors, carries, counts, per_filter,
busy_seconds)`` with ``cursors = {uid: (head, tail)}`` and ``carries =
{step_idx: state}``, or ``("err", task_id, traceback_text)``.

The pool is process-global and sized on demand: executors share it, and
:func:`shutdown_pool` (wired into serve's graceful shutdown and
``atexit``) tears it down.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
import traceback

from . import shm as _shm


def _worker_main(conn) -> None:
    # fault injection is a parent-process concern: a fault plan armed
    # before fork must not fire inside workers (the parent's scheduler
    # surfaces worker errors through its own fault machinery)
    from .. import faults
    faults.ACTIVE = None
    from ..profiling import Profiler

    steps_by_plan: dict[str, dict[int, object]] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "forget":
            _, plan_uid, ring_uids = msg
            steps_by_plan.pop(plan_uid, None)
            _shm.forget_rings(ring_uids)
            continue
        _, task_id, plan_uid, rings_info, entries = msg
        try:
            t0 = time.perf_counter()
            rings = [_shm.attach_ring(*info) for info in rings_info]
            steps = steps_by_plan.setdefault(plan_uid, {})
            prof = Profiler()
            ran = []
            for idx, n, cold, carry in entries:
                step = steps.get(idx)
                if step is None:
                    if cold is None:
                        raise RuntimeError(
                            f"worker has no cached step {idx} for plan "
                            f"{plan_uid} and no cold payload was sent")
                    steps[idx] = step = cold
                step.profiler = prof
                if carry is not None:
                    step.set_carry_state(carry[0])
                step.execute(n)
                ran.append(step)
            carries = {idx: step.carry_state()
                       for (idx, _n, _c, carry), step in zip(entries, ran)
                       if carry is not None}
            cursors = {r.uid: (r._head, r._tail) for r in rings}
            busy = time.perf_counter() - t0
            conn.send(("ok", task_id, cursors, carries, prof.counts,
                       prof.per_filter, busy))
        except BaseException:
            try:
                conn.send(("err", task_id, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break


class Worker:
    __slots__ = ("conn", "proc", "index", "busy_task")

    def __init__(self, ctx, index: int):
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main, args=(child,),
                                daemon=True,
                                name=f"repro-parallel-{index}")
        self.proc.start()
        child.close()
        self.index = index
        self.busy_task = None  # task id in flight, else None

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        self.conn.close()


class WorkerPool:
    """A set of persistent workers plus pool-lifetime metrics."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.workers: list[Worker] = []
        #: bumped whenever workers are replaced — executors key their
        #: shipped-step caches on (pool id, generation) so a restarted
        #: pool gets fresh step copies
        self.generation = 0
        # pool-lifetime counters, surfaced through serve STATS
        self.tasks = 0
        self.steals = 0
        self.idle_waits = 0
        self.busy_seconds = 0.0
        self.resets = 0

    def grow_to(self, n: int) -> None:
        while len(self.workers) < n:
            self.workers.append(Worker(self.ctx, len(self.workers)))

    def reset(self) -> None:
        """Kill every worker (after an error left one undefined)."""
        self.resets += 1
        self.generation += 1
        for w in self.workers:
            try:
                w.proc.terminate()
                w.proc.join(timeout=2.0)
                w.conn.close()
            except OSError:
                pass
        self.workers = []

    def stop_all(self) -> None:
        self.generation += 1
        for w in self.workers:
            w.stop()
        self.workers = []

    def stats_snapshot(self) -> dict:
        return {
            "workers": len(self.workers),
            "tasks": self.tasks,
            "steals": self.steals,
            "idle_waits": self.idle_waits,
            "busy_seconds": round(self.busy_seconds, 6),
            "resets": self.resets,
        }


_POOL: WorkerPool | None = None


def _context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def get_pool(workers: int) -> WorkerPool:
    """The process-global pool, grown to at least ``workers`` workers."""
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool(_context())
    _POOL.grow_to(workers)
    return _POOL


def pool_stats() -> dict | None:
    """Metrics snapshot, or None when no pool was ever started."""
    return None if _POOL is None else _POOL.stats_snapshot()


def default_workers() -> int:
    return max(1, os.cpu_count() or 1)


@atexit.register
def shutdown_pool() -> None:
    """Stop every worker.  Wired into serve's graceful shutdown; safe to
    call repeatedly (the next ``get_pool`` restarts workers)."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.stop_all()
