"""The parallel plan executor: region scheduling over a worker pool.

``ParallelPlanExecutor`` keeps the serial planner's entire pipeline —
flattening, steady-state chunking, vectorization decisions, feedback
islands — and replaces only the storage and flush layers:

* channels become :class:`~repro.parallel.shm.ShmRing` segments that
  worker processes attach by name, so a dispatched region reads its
  inputs and writes its outputs in place (cursors travel over the pipe,
  samples never do);
* :meth:`_flush` runs the region DAG from :func:`~repro.parallel
  .regions.build_units` with a Kahn scheduler: ready offloadable units
  go to pool workers (sticky affinity, work stealing when the preferred
  worker is busy), inline units (sources, splitters, collectors,
  feedback facades) execute in the parent, and completions retire
  dependency edges until the whole flush quiesces.

Workers cache warm kernel steps per plan, so steady-state dispatch
ships only ``(step index, batch count, state carry)`` triples.  The
parent remains the single owner of every ring (only it may grow one —
capacity for a task's outputs is reserved *before* dispatch) and of all
carried kernel state: each task ships the authoritative carry in and
returns it with the reply, so a region can migrate between workers at
any batch boundary without desync.

Worker FLOP counts come back per task (total + per-filter attribution)
and merge into the parent's profiler, preserving the serial backend's
exact accounting.  A worker error (or a dead pipe) resets the pool and
surfaces as :class:`~repro.errors.InterpError`, which the serving
stack's fault machinery already knows how to recover from.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from itertools import count as _count
from multiprocessing import connection as _mpconn
from secrets import token_hex

from ..errors import InterpError
from ..exec import kernels as K
from ..exec.planner import PlanExecutor
from . import pool as _pool
from .regions import Unit, build_units
from .shm import ShmRing

_PLAN_SEQ = _count()


class ParallelPlanExecutor(PlanExecutor):
    """A :class:`PlanExecutor` that flushes batches across a worker pool."""

    def __init__(self, flat, *, workers: int = 2, **kwargs):
        self.workers = max(2, int(workers))
        super().__init__(flat, **kwargs)
        self.units: list[Unit] = build_units(self)
        self._plan_uid = f"plan-{next(_PLAN_SEQ)}-{token_hex(4)}"
        self._ring_by_uid = {r.uid: r for r in self.rings}
        # worker index sets per step: which workers hold a warm copy
        self._shipped: list[set[int]] = [set() for _ in self.steps]
        self._pool_key = None  # (pool id, generation) the cache is valid for
        self._next_task = 0
        self._closed = False
        #: per-executor metrics, folded into serve STATS via
        #: :func:`parallel_stats`
        self.metrics = {
            "tasks": 0,
            "inline_units": 0,
            "steals": 0,
            "idle_waits": 0,
            "busy_seconds": 0.0,
            # unit id -> [completed task count, accumulated latency]
            "unit_latency": {u.id: [0, 0.0] for u in self.units
                            if u.offload},
        }

    # -- storage ----------------------------------------------------------
    def _new_ring(self, name, prefill=None):
        return ShmRing(name, prefill=prefill, dtype=self.policy.dtype)

    def close(self) -> None:
        """Retire worker-side caches and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        uids = [r.uid for r in self.rings]
        pool = _pool._POOL
        if pool is not None and self._pool_key == (id(pool),
                                                   pool.generation):
            for w in pool.workers:
                try:
                    w.conn.send(("forget", self._plan_uid, uids))
                except (BrokenPipeError, OSError):
                    pass
        for r in self.rings:
            r.close(unlink=True)

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- scheduling -------------------------------------------------------
    def _flush(self) -> None:
        if self._trace is not None:
            raise InterpError(
                "schedule traces are not supported with workers > 1")
        pending = self._pending
        if not any(pending):
            self._pending_outputs = 0
            return
        pool = _pool.get_pool(self.workers)
        key = (id(pool), pool.generation)
        if key != self._pool_key:
            # fresh or restarted pool: no worker holds warm steps
            self._pool_key = key
            self._shipped = [set() for _ in self.steps]
        workers = pool.workers[:self.workers]
        try:
            self._run_units(pool, workers)
        except (EOFError, BrokenPipeError, ConnectionResetError,
                OSError) as exc:
            pool.reset()
            self._pool_key = None
            raise InterpError(
                f"parallel worker pipe failed mid-flush: {exc!r}") from exc
        finally:
            self._pending_outputs = 0

    def _run_units(self, pool, workers) -> None:
        pending = self._pending
        units = self.units
        indeg = [len(u.preds) for u in units]
        ready = deque(u for u in units if not u.preds)
        offload_q: deque[Unit] = deque()
        free = list(workers)
        by_worker: dict[int, tuple] = {}  # worker idx -> (unit, t0)
        done = 0

        def finish(u: Unit) -> None:
            nonlocal done
            done += 1
            for s in sorted(u.succs):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(units[s])

        while done < len(units):
            while ready:
                u = ready.popleft()
                if u.offload and any(pending[i] for i in u.step_indices):
                    offload_q.append(u)
                    continue
                for i in u.step_indices:
                    n = pending[i]
                    if n:
                        self.steps[i].execute(n)
                        pending[i] = 0
                self.metrics["inline_units"] += 1
                finish(u)
            while offload_q and free:
                u = offload_q.popleft()
                w = self._pick_worker(u, free, pool)
                free.remove(w)
                self._dispatch(u, w)
                by_worker[w.index] = (u, time.perf_counter())
            if done == len(units) or ready or (offload_q and free):
                continue
            if by_worker:
                if free:
                    # workers sit idle while we block on stragglers
                    pool.idle_waits += 1
                    self.metrics["idle_waits"] += 1
                conns = {w.conn: w for w in workers
                         if w.index in by_worker}
                for conn in _mpconn.wait(list(conns)):
                    w = conns[conn]
                    u, t0 = by_worker.pop(w.index)
                    self._apply_reply(w, u, t0, pool)
                    free.append(w)
                    finish(u)
            elif offload_q:
                raise InterpError(
                    "parallel scheduler stalled: work queued but no "
                    "workers available")
            else:
                raise InterpError(
                    "parallel scheduler deadlock: dependency cycle among "
                    f"regions ({done}/{len(units)} completed)")

    def _pick_worker(self, unit: Unit, free: list, pool):
        """Sticky affinity (unit id mod pool size) with work stealing."""
        want = unit.id % self.workers
        for w in free:
            if w.index == want:
                return w
        pool.steals += 1
        self.metrics["steals"] += 1
        return free[0]

    # -- dispatch / reply -------------------------------------------------
    def _dispatch(self, unit: Unit, worker) -> None:
        pending = self._pending
        # workers may not grow a shared segment: reserve room for every
        # output this task can push before the cursors ship
        incoming: dict[int, int] = {}
        for i in unit.step_indices:
            n = pending[i]
            if not n:
                continue
            sn = self.sim_nodes[i]
            for j, rid in enumerate(sn.out_ids):
                push = sn.pushes[j]
                if sn.has_init and j < len(sn.init_pushes):
                    push = max(push, sn.init_pushes[j])
                incoming[rid] = incoming.get(rid, 0) + n * push
        for rid in sorted(unit.ring_ids):
            r = self.rings[rid]
            r.ensure_capacity(len(r) + incoming.get(rid, 0))
        rings_info = [self.rings[rid].describe()
                      for rid in sorted(unit.ring_ids)]
        entries = []
        widx = worker.index
        for i in unit.step_indices:
            n = pending[i]
            if not n:
                continue
            step = self.steps[i]
            cold = (None if widx in self._shipped[i]
                    else self._cold_copy(step))
            carry = (step.carry_state(),) if step.carries_state else None
            entries.append((i, n, cold, carry))
            pending[i] = 0
        worker.conn.send(("exec", self._next_task, self._plan_uid,
                          rings_info, entries))
        self._next_task += 1
        for i, _n, cold, _c in entries:
            if cold is not None:
                self._shipped[i].add(widx)

    @staticmethod
    def _cold_copy(step):
        c = copy.copy(step)
        c.profiler = None  # the worker installs a per-task profiler
        if isinstance(c, K.StatefulLinearStep):
            c._lifted = {}  # block-lift cache: rebuilt worker-side
        return c

    def _apply_reply(self, worker, unit: Unit, t0: float, pool) -> None:
        msg = worker.conn.recv()
        if msg[0] == "err":
            tb = msg[2]
            pool.reset()
            self._pool_key = None
            raise InterpError(
                f"parallel worker {worker.index} failed executing region "
                f"{unit.id}:\n{tb}")
        _ok, _tid, cursors, carries, counts, per_filter, busy = msg
        for uid, (head, tail) in cursors.items():
            r = self._ring_by_uid[uid]
            r._head, r._tail = head, tail
        for idx, state in carries.items():
            self.steps[idx].set_carry_state(state)
        rest = counts.copy()
        for name, c in per_filter.items():
            self.profiler.add_counts(c, filter_name=name)
            rest = rest - c
        self.profiler.add_counts(rest)
        elapsed = time.perf_counter() - t0
        pool.tasks += 1
        pool.busy_seconds += busy
        self.metrics["tasks"] += 1
        self.metrics["busy_seconds"] += busy
        lat = self.metrics["unit_latency"][unit.id]
        lat[0] += 1
        lat[1] += elapsed

    # -- metrics ----------------------------------------------------------
    def parallel_stats(self) -> dict:
        """Executor metrics plus a pool snapshot, for serve STATS."""
        m = self.metrics
        per_unit = {
            uid: {"tasks": n, "avg_latency": (s / n if n else 0.0)}
            for uid, (n, s) in m["unit_latency"].items()
        }
        out = {
            "workers": self.workers,
            "tasks": m["tasks"],
            "inline_units": m["inline_units"],
            "steals": m["steals"],
            "idle_waits": m["idle_waits"],
            "busy_seconds": round(m["busy_seconds"], 6),
            "regions": per_unit,
        }
        snap = _pool.pool_stats()
        if snap is not None:
            out["pool"] = snap
        return out
