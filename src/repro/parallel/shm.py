"""Ring buffers over ``multiprocessing.shared_memory`` segments.

A :class:`ShmRing` is a :class:`~repro.exec.ring.RingBuffer` whose
backing ndarray lives in a named shared-memory segment, so a worker
process can attach the *same* storage and execute kernel steps over it
in place — the parent and the workers exchange only (head, tail)
cursors, never sample data.

Ownership model:

* The **parent** (scheduler) process creates every segment and is the
  only side allowed to grow one.  Growth allocates a fresh segment under
  a new OS name but the same logical ``uid``; workers notice the segment
  name changed on the next dispatch and re-attach in place.
* **Workers** attach lazily through :func:`attach_ring` and keep a
  process-local registry keyed by ``uid``, so cached kernel steps keep
  valid ring references across tasks (re-attachment swaps the buffer
  under the same Python object).  A worker may *slide* the live region
  (cheap compaction) but never grow; the parent pre-grows rings to the
  dispatched batch's worst case before sending a task.

Cleanup: segments are unlinked by the parent when the executor closes.
``resource_tracker`` registration is dropped on both sides — under the
default fork start method parent and children share one tracker process,
so a child exiting would otherwise unlink segments the parent still
uses.  A parent-side ``atexit`` hook (guarded by creator pid) backstops
leaks if an executor is never closed.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import InterpError
from ..exec.ring import _MIN_CAPACITY, RingBuffer

#: uid -> attached ShmRing, per worker process (see attach_ring)
_ATTACHED: dict[str, "ShmRing"] = {}

#: parent-side leak backstop: every owned ring, weakly
_OWNED: "weakref.WeakSet[ShmRing]" = weakref.WeakSet()

_UID_COUNTER = 0


def _new_uid() -> str:
    global _UID_COUNTER
    _UID_COUNTER += 1
    return f"{os.getpid()}.{secrets.token_hex(4)}.{_UID_COUNTER}"


def _untrack(shm) -> None:
    """Drop ``shm`` from the resource tracker (shared with forked
    children); lifetime is managed explicitly by the owner."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _release_segment(shm, unlink: bool) -> None:
    try:
        shm.close()
    except BufferError:
        # an ndarray view still aliases the mmap; it is released when
        # the last view is collected — unlink below still detaches the
        # name so the memory is reclaimed then
        pass
    except OSError:
        pass
    if unlink:
        # shm.unlink() would also unregister with the resource tracker,
        # but the segment was already untracked at creation — go through
        # the low-level call so the tracker is not asked twice
        unlink_fn = getattr(shared_memory, "_posixshmem", None)
        try:
            if unlink_fn is not None:
                unlink_fn.shm_unlink(shm._name)
            else:  # windows: no named unlink; close releases the handle
                pass
        except (FileNotFoundError, OSError):
            pass


@atexit.register
def _cleanup_owned() -> None:
    pid = os.getpid()
    for ring in list(_OWNED):
        if ring._create_pid == pid:
            ring.close(unlink=True)


class ShmRing(RingBuffer):
    """A ring buffer whose storage is a shared-memory segment."""

    __slots__ = ("uid", "shm", "owner", "_create_pid", "__weakref__")

    def __init__(self, name: str = "", capacity: int = _MIN_CAPACITY,
                 prefill=None, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        if prefill is not None:
            prefill = np.asarray(prefill, dtype=self.dtype)
            capacity = max(capacity, len(prefill))
        capacity = max(capacity, _MIN_CAPACITY)
        self.uid = _new_uid()
        self.owner = True
        self._create_pid = os.getpid()
        self.shm = shared_memory.SharedMemory(
            create=True, size=capacity * self.dtype.itemsize)
        _untrack(self.shm)
        self._buf = np.ndarray(self.shm.size // self.dtype.itemsize,
                               dtype=self.dtype, buffer=self.shm.buf)
        self._head = 0
        self._tail = 0
        self.name = name
        if prefill is not None and len(prefill):
            self._buf[:len(prefill)] = prefill
            self._tail = len(prefill)
        _OWNED.add(self)

    # -- wire format ------------------------------------------------------
    def describe(self) -> tuple:
        """The attach tuple shipped in task messages (and pickles)."""
        return (self.uid, self.shm.name, self.name, self.dtype.str,
                self._head, self._tail)

    def __reduce__(self):
        # pickling a ring (e.g. inside a cold kernel-step payload)
        # resolves to the receiving process's attached registry entry
        return (attach_ring, self.describe())

    # -- storage management -----------------------------------------------
    def _reserve(self, n: int) -> None:
        if self._tail + n <= len(self._buf):
            return
        live = self._tail - self._head
        need = live + n
        if need > len(self._buf):
            if not self.owner:
                raise InterpError(
                    f"shared ring {self.name!r} needs {need} slots but "
                    f"holds {len(self._buf)} — the scheduler must "
                    "pre-grow rings before dispatch")
            self._grow(need)
            return
        self._buf[:live] = self._buf[self._head:self._tail]
        self._head = 0
        self._tail = live

    def _grow(self, need: int) -> None:
        """Owner-only: move the live region into a fresh, larger segment
        (same uid, new OS name — workers re-attach on next dispatch)."""
        cap = len(self._buf)
        while cap < need:
            cap *= 2
        live = self._tail - self._head
        new = shared_memory.SharedMemory(create=True,
                                         size=cap * self.dtype.itemsize)
        _untrack(new)
        buf = np.ndarray(new.size // self.dtype.itemsize, dtype=self.dtype,
                         buffer=new.buf)
        buf[:live] = self._buf[self._head:self._tail]
        old, self.shm = self.shm, new
        self._buf = buf
        self._head = 0
        self._tail = live
        _release_segment(old, unlink=True)

    def ensure_capacity(self, total: int) -> None:
        """Owner-only: guarantee room for ``total`` live items so a
        worker's appends never need more than a slide."""
        if total > len(self._buf):
            self._grow(total)

    # -- attach side ------------------------------------------------------
    def _attach_segment(self, segname: str) -> None:
        old = self.shm
        shm = shared_memory.SharedMemory(name=segname)
        _untrack(shm)
        self._buf = np.ndarray(shm.size // self.dtype.itemsize,
                               dtype=self.dtype, buffer=shm.buf)
        self.shm = shm
        if old is not None:
            _release_segment(old, unlink=False)

    # -- lifecycle --------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Detach from the segment; the owner also unlinks it."""
        self._buf = np.empty(0, dtype=self.dtype)
        shm, self.shm = self.shm, None
        if shm is not None:
            _release_segment(shm, unlink=unlink and self.owner)


def attach_ring(uid: str, segname: str, name: str, dtype_str: str,
                head: int, tail: int) -> ShmRing:
    """Worker-side get-or-create attach; refreshes cursors every call.

    The registry returns the *same* Python object for a uid across
    tasks, so kernel steps cached in the worker keep valid references —
    if the parent grew the segment, the buffer is swapped in place.
    """
    ring = _ATTACHED.get(uid)
    if ring is None:
        ring = ShmRing.__new__(ShmRing)
        ring.dtype = np.dtype(dtype_str)
        ring.name = name
        ring.uid = uid
        ring.owner = False
        ring._create_pid = os.getpid()
        ring.shm = None
        ring._attach_segment(segname)
        _ATTACHED[uid] = ring
    elif ring.shm is None or ring.shm.name != segname:
        ring._attach_segment(segname)
    ring._head = head
    ring._tail = tail
    return ring


def forget_rings(uids) -> None:
    """Worker-side: drop attached rings for a retired plan."""
    for uid in uids:
        ring = _ATTACHED.pop(uid, None)
        if ring is not None:
            ring.close()
