"""Parallel execution engine: multicore region scheduling + fission.

The plan backend (:mod:`repro.exec.planner`) compiles a stream graph
into batched kernel steps over ring buffers, but executes them serially.
This package adds the multicore execution layer:

* :mod:`~repro.parallel.shm` — ring buffers backed by
  ``multiprocessing.shared_memory`` so worker processes operate on the
  parent's channel storage in place (zero-copy, dtype-aware per the
  session's :class:`~repro.numeric.NumericPolicy`);
* :mod:`~repro.parallel.pool` — a persistent fork-based worker pool with
  warm per-plan kernel caches;
* :mod:`~repro.parallel.regions` — groups a compiled plan's steps into
  schedulable units (chains of offloadable kernels, inline islands and
  sources) and builds the inter-unit dependency DAG;
* :mod:`~repro.parallel.executor` — a :class:`~repro.exec.planner.
  PlanExecutor` subclass whose flush drives independent units
  concurrently on the pool;
* :mod:`~repro.parallel.fission` — data-parallel **fission** rewrites:
  a linear (or stateful-linear, via the state-monoid lift of
  :func:`~repro.linear.state.expand_stateful`) filter is replicated into
  ``k`` replicas behind split/join, priced against the fused form by the
  calibrated cost model.

Entry point: ``repro.compile(..., workers=k)`` / ``bench --workers k``.
"""

from __future__ import annotations

__all__ = ["shm", "pool", "regions", "executor", "fission"]
