"""Lexer for the mini-StreamIt DSL.

Tokenizes a StreamIt-like surface syntax (thesis §2.1, Figure 2-2):
stream declarations, filter work functions with push/pop/peek, pipelines,
splitjoins and feedbackloops.

Every token carries its full source span (start *and* end), so
multi-character tokens, numbers, and comments that span newlines all
report the extent of the offending text rather than a single start
position.  The :class:`Lexer` recovers from bad input — it records a
:class:`~repro.errors.Diagnostic` and keeps scanning — so a single pass
surfaces every lexical error alongside the parser's syntax errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import Diagnostic, DSLError, SourceSpan

KEYWORDS = frozenset({
    "filter", "pipeline", "splitjoin", "feedbackloop",
    "work", "prework", "init", "add", "split", "join", "body", "loop",
    "enqueue", "duplicate", "roundrobin",
    "push", "pop", "peek",
    "float", "int", "void", "boolean",
    "for", "if", "else", "while", "return", "true", "false", "pi",
})

#: multi-character operators, longest first
OPERATORS = [
    "->", "++", "--", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=",
    "&&", "||", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'eof'
    text: str
    line: int
    col: int
    end_line: int = 0
    end_col: int = 0

    def __post_init__(self):
        if self.end_line <= 0:
            object.__setattr__(self, "end_line", self.line)
        if self.end_col <= 0:
            object.__setattr__(self, "end_col", self.col + len(self.text))

    @property
    def span(self) -> SourceSpan:
        return SourceSpan(self.line, self.col, self.end_line, self.end_col)

    def __repr__(self):
        return f"Token({self.kind}:{self.text!r}@{self.line}:{self.col})"


class Lexer:
    """Scans source text into tokens, collecting diagnostics on the way.

    ``scan()`` always returns a complete token list (terminated by an
    ``eof`` token); lexical errors land in ``self.diagnostics`` instead
    of aborting the scan, so the parser can report them together with
    its own errors.
    """

    def __init__(self, source: str):
        self.source = source
        self.diagnostics: list[Diagnostic] = []
        self._i = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor --------------------------------------------------
    def _advance_over(self, text: str) -> None:
        """Move the cursor past ``text`` (which starts at the cursor),
        tracking line/column across embedded newlines."""
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._i += len(text)

    def _error(self, code: str, message: str, span: SourceSpan,
               hint: str | None = None) -> None:
        self.diagnostics.append(Diagnostic(code, message, span, hint))

    # -- scanning ----------------------------------------------------------
    def scan(self) -> list[Token]:
        tokens: list[Token] = []
        src = self.source
        n = len(src)
        while self._i < n:
            c = src[self._i]
            start_line, start_col = self._line, self._col
            # whitespace
            if c in " \t\r":
                self._advance_over(c)
                continue
            if c == "\n":
                self._advance_over(c)
                continue
            # comments
            if src.startswith("//", self._i):
                end = src.find("\n", self._i)
                end = n if end < 0 else end
                self._advance_over(src[self._i:end])
                continue
            if src.startswith("/*", self._i):
                end = src.find("*/", self._i + 2)
                if end < 0:
                    # the offending text is the whole unterminated
                    # comment, through end of input
                    self._advance_over(src[self._i:])
                    self._error(
                        "dsl-unterminated-comment",
                        "unterminated block comment",
                        SourceSpan(start_line, start_col,
                                   self._line, self._col),
                        hint="close it with '*/'")
                    continue
                self._advance_over(src[self._i:end + 2])
                continue
            # numbers
            if c.isdigit() or (c == "." and self._i + 1 < n
                               and src[self._i + 1].isdigit()):
                self._scan_number(tokens)
                continue
            # identifiers / keywords
            if c.isalpha() or c == "_":
                j = self._i
                while j < n and (src[j].isalnum() or src[j] == "_"):
                    j += 1
                text = src[self._i:j]
                kind = "keyword" if text in KEYWORDS else "ident"
                self._advance_over(text)
                tokens.append(Token(kind, text, start_line, start_col,
                                    self._line, self._col))
                continue
            # operators
            for op in OPERATORS:
                if src.startswith(op, self._i):
                    self._advance_over(op)
                    tokens.append(Token("op", op, start_line, start_col,
                                        self._line, self._col))
                    break
            else:
                self._advance_over(c)
                self._error("dsl-bad-char",
                            f"unexpected character {c!r}",
                            SourceSpan(start_line, start_col,
                                       self._line, self._col))
        tokens.append(Token("eof", "", self._line, self._col,
                            self._line, self._col))
        return tokens

    def _scan_number(self, tokens: list[Token]) -> None:
        src = self.source
        n = len(src)
        start_line, start_col = self._line, self._col
        j = self._i
        is_float = False
        malformed = False
        while j < n and (src[j].isdigit() or src[j] == "."):
            if src[j] == ".":
                if is_float:
                    malformed = True
                is_float = True
            j += 1
        if j < n and src[j] in "eE":
            is_float = True
            j += 1
            if j < n and src[j] in "+-":
                j += 1
            while j < n and src[j].isdigit():
                j += 1
        text = src[self._i:j]
        self._advance_over(text)
        if malformed:
            # the span covers the whole malformed literal, not just
            # where scanning started
            self._error("dsl-bad-number",
                        f"malformed number {text!r}",
                        SourceSpan(start_line, start_col,
                                   self._line, self._col))
            return
        tokens.append(Token("float" if is_float else "int", text,
                            start_line, start_col, self._line, self._col))


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`DSLError` carrying *all*
    lexical diagnostics if any text failed to scan."""
    lexer = Lexer(source)
    tokens = lexer.scan()
    if lexer.diagnostics:
        raise DSLError(diagnostics=lexer.diagnostics, source=source)
    return tokens
