"""Lexer for the mini-StreamIt DSL.

Tokenizes a StreamIt-like surface syntax (thesis §2.1, Figure 2-2):
stream declarations, filter work functions with push/pop/peek, pipelines,
splitjoins and feedbackloops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DSLError

KEYWORDS = frozenset({
    "filter", "pipeline", "splitjoin", "feedbackloop",
    "work", "prework", "init", "add", "split", "join", "body", "loop",
    "enqueue", "duplicate", "roundrobin",
    "push", "pop", "peek",
    "float", "int", "void", "boolean",
    "for", "if", "else", "while", "return", "true", "false", "pi",
})

#: multi-character operators, longest first
OPERATORS = [
    "->", "++", "--", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=",
    "&&", "||", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind}:{self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def error(msg):
        raise DSLError(msg, line, col)

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated block comment")
            for ch in source[i:end + 2]:
                if ch == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # numbers
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    if is_float:
                        error("malformed number")
                    is_float = True
                j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            tokens.append(Token("float" if is_float else "int", text,
                                line, col))
            col += j - i
            i = j
            continue
        # identifiers / keywords
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        # operators
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            error(f"unexpected character {c!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
