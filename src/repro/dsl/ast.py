"""AST node definitions for the mini-StreamIt DSL."""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Num(Expr):
    value: float | int


@dataclass(frozen=True)
class Name(Expr):
    ident: str


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class CallExpr(Expr):
    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class IndexExpr(Expr):
    base: str
    index: Expr


@dataclass(frozen=True)
class PeekExpr(Expr):
    index: Expr


@dataclass(frozen=True)
class PopExpr(Expr):
    pass


# -- statements --------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class VarDecl(Stmt):
    ty: str  # 'float' | 'int'
    size: Expr | None
    name: str
    init: Expr | None


@dataclass(frozen=True)
class AssignStmt(Stmt):
    target: Name | IndexExpr
    op: str  # '=', '+=', '-=', '*=', '/='
    value: Expr


@dataclass(frozen=True)
class PushStmt(Stmt):
    value: Expr


@dataclass(frozen=True)
class PopStmt(Stmt):
    pass


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class IfStmt(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...]


@dataclass(frozen=True)
class ForStmt(Stmt):
    var: str
    start: Expr
    stop: Expr  # loop runs while var < stop
    step: Expr
    body: tuple[Stmt, ...]


# -- stream-level constructs -------------------------------------------------


@dataclass(frozen=True)
class Param:
    ty: str
    size: Expr | None
    name: str


@dataclass(frozen=True)
class WorkDecl:
    kind: str  # 'work' | 'prework'
    peek: Expr | None
    pop: Expr | None
    push: Expr | None
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class FieldDecl:
    ty: str
    size: Expr | None
    name: str
    init: Expr | None


@dataclass(frozen=True)
class FilterDecl:
    name: str
    params: tuple[Param, ...]
    fields: tuple[FieldDecl, ...]
    init: tuple[Stmt, ...]
    works: tuple[WorkDecl, ...]


@dataclass(frozen=True)
class AddStmt(Stmt):
    """``add Stream(args);`` inside a pipeline or splitjoin body."""

    stream: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class SplitDecl(Stmt):
    kind: str  # 'duplicate' | 'roundrobin'
    weights: tuple[Expr, ...]


@dataclass(frozen=True)
class JoinDecl(Stmt):
    weights: tuple[Expr, ...]


@dataclass(frozen=True)
class EnqueueStmt(Stmt):
    value: Expr


@dataclass(frozen=True)
class BodyDecl(Stmt):
    stream: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class LoopDecl(Stmt):
    stream: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class CompositeDecl:
    kind: str  # 'pipeline' | 'splitjoin' | 'feedbackloop'
    name: str
    params: tuple[Param, ...]
    body: tuple[Stmt, ...]  # Add/Split/Join/For/If/var-decl statements


@dataclass
class Program:
    decls: dict[str, FilterDecl | CompositeDecl] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
