"""AST node definitions for the mini-StreamIt DSL.

Every node carries an optional ``span`` locating it in the source text
(threaded through from the lexer by the parser), so elaboration errors —
unknown stream, bad arity, rate mismatch — can point at the offending
source instead of a Python frame.  ``span`` is excluded from equality
and repr: two parses of the same program produce equal ASTs regardless
of formatting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SourceSpan


def _span_field():
    return field(default=None, compare=False, repr=False, kw_only=True)


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    span: SourceSpan | None = _span_field()


@dataclass(frozen=True)
class Num(Expr):
    value: float | int = 0


@dataclass(frozen=True)
class Name(Expr):
    ident: str = ""


@dataclass(frozen=True)
class BinOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass(frozen=True)
class UnOp(Expr):
    op: str = ""
    operand: Expr = None


@dataclass(frozen=True)
class CallExpr(Expr):
    fn: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class IndexExpr(Expr):
    base: str = ""
    index: Expr = None


@dataclass(frozen=True)
class PeekExpr(Expr):
    index: Expr = None


@dataclass(frozen=True)
class PopExpr(Expr):
    pass


# -- statements --------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    span: SourceSpan | None = _span_field()


@dataclass(frozen=True)
class VarDecl(Stmt):
    ty: str = "int"  # 'float' | 'int'
    size: Expr | None = None
    name: str = ""
    init: Expr | None = None


@dataclass(frozen=True)
class AssignStmt(Stmt):
    target: Name | IndexExpr = None
    op: str = "="  # '=', '+=', '-=', '*=', '/='
    value: Expr = None


@dataclass(frozen=True)
class PushStmt(Stmt):
    value: Expr = None


@dataclass(frozen=True)
class PopStmt(Stmt):
    pass


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass(frozen=True)
class IfStmt(Stmt):
    cond: Expr = None
    then: tuple[Stmt, ...] = ()
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class ForStmt(Stmt):
    var: str = ""
    start: Expr = None
    stop: Expr = None  # loop runs while var < stop
    step: Expr = None
    body: tuple[Stmt, ...] = ()


# -- stream-level constructs -------------------------------------------------


@dataclass(frozen=True)
class Param:
    ty: str
    size: Expr | None
    name: str
    span: SourceSpan | None = _span_field()


@dataclass(frozen=True)
class WorkDecl:
    kind: str  # 'work' | 'prework'
    peek: Expr | None
    pop: Expr | None
    push: Expr | None
    body: tuple[Stmt, ...]
    span: SourceSpan | None = _span_field()


@dataclass(frozen=True)
class FieldDecl:
    ty: str
    size: Expr | None
    name: str
    init: Expr | None
    span: SourceSpan | None = _span_field()


@dataclass(frozen=True)
class FilterDecl:
    name: str
    params: tuple[Param, ...]
    fields: tuple[FieldDecl, ...]
    init: tuple[Stmt, ...]
    works: tuple[WorkDecl, ...]
    span: SourceSpan | None = _span_field()


@dataclass(frozen=True)
class AddStmt(Stmt):
    """``add Stream(args);`` inside a pipeline or splitjoin body."""

    stream: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class SplitDecl(Stmt):
    kind: str = "duplicate"  # 'duplicate' | 'roundrobin'
    weights: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class JoinDecl(Stmt):
    weights: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class EnqueueStmt(Stmt):
    value: Expr = None


@dataclass(frozen=True)
class BodyDecl(Stmt):
    stream: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class LoopDecl(Stmt):
    stream: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class CompositeDecl:
    kind: str  # 'pipeline' | 'splitjoin' | 'feedbackloop'
    name: str
    params: tuple[Param, ...]
    body: tuple[Stmt, ...]  # Add/Split/Join/For/If/var-decl statements
    span: SourceSpan | None = _span_field()


@dataclass
class Program:
    decls: dict[str, FilterDecl | CompositeDecl] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    source: str | None = None
