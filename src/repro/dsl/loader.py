"""Cached DSL source -> stream-graph loading.

``load_source`` is the memoized path from source text to an
instantiated graph: parsing is cached per source string and elaboration
per ``(source digest, top, args)`` triple, with every call returning a
fresh :func:`~repro.graph.streams.clone_stream` copy so callers can run
or mutate their graph without perturbing the cache.

``fingerprint=True`` stamps the clone with its *source* fingerprint —
the digest of the (source, top, args) triple — which
:func:`~repro.exec.cache.fingerprint_stream` uses as the plan-cache key,
so recompiling the same program text hits the plan cache directly.
This is what ``repro.compile(dsl_source)`` and the serve OPEN handler
use; the app loaders deliberately do not (their graphs are handed to
user code that may mutate coefficients, which must change the
fingerprint).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

from ..errors import DSLError
from ..graph.streams import Stream, clone_stream
from .ast import Program
from .elaborator import Elaborator
from .parser import parse

#: elaborated prototypes kept per process; beyond this the oldest
#: entries are dropped (insertion order ~ LRU for our access pattern)
_MAX_GRAPHS = 128

_graphs: dict[tuple, Stream] = {}


@lru_cache(maxsize=64)
def _parsed(source: str) -> Program:
    return parse(source)


def _freeze(arg):
    """A hashable, content-identifying form of an instantiation arg."""
    if isinstance(arg, (list, tuple, np.ndarray)):
        a = np.asarray(arg, dtype=float)
        return ("arr", a.shape, a.tobytes())
    if isinstance(arg, (bool, np.bool_)):
        return ("b", bool(arg))
    if isinstance(arg, (int, np.integer)):
        return ("i", int(arg))
    if isinstance(arg, (float, np.floating)):
        return ("f", float(arg))
    raise TypeError(f"cannot use {type(arg).__name__} as a DSL argument")


def source_digest(source: str, top: str | None = None, args=()) -> bytes:
    """Digest identifying a (source text, top stream, args) compilation."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update((top or "").encode())
    for frozen in map(_freeze, args):
        h.update(repr(frozen).encode())
    return h.digest()


def load_source(source: str, top: str | None = None, *args,
                fingerprint: bool = False) -> Stream:
    """Parse + elaborate (cached), returning a fresh graph clone.

    With ``fingerprint=True`` the clone carries its source digest as
    ``_source_fingerprint``, making the source text the plan-cache key.
    """
    key = (source_digest(source, top, args),)
    proto = _graphs.get(key)
    if proto is None:
        program = _parsed(source)
        if not program.order:
            # defer to compile_source's error path for the diagnostic
            from .elaborator import compile_source
            return compile_source(source, top, *args)
        name = top if top is not None else program.order[-1]
        try:
            proto = Elaborator(program).instantiate(name, *args)
        except DSLError as e:
            if e.source is None:
                e.source = source
            raise
        while len(_graphs) >= _MAX_GRAPHS:
            del _graphs[next(iter(_graphs))]
        _graphs[key] = proto
    clone = clone_stream(proto)
    if fingerprint:
        clone._source_fingerprint = (key[0], False)
    return clone


def clear_source_cache() -> None:
    """Drop all cached parses and elaborated prototypes (for tests)."""
    _parsed.cache_clear()
    _graphs.clear()
