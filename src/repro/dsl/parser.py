"""Recursive-descent parser for the mini-StreamIt DSL."""

from __future__ import annotations

from ..errors import DSLError
from . import ast
from .lexer import Token, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}

_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def error(self, msg: str):
        t = self.cur
        raise DSLError(f"{msg} (found {t.kind} {t.text!r})", t.line, t.col)

    def advance(self) -> Token:
        t = self.cur
        self.pos += 1
        return t

    def accept(self, text: str) -> bool:
        if self.cur.text == text and self.cur.kind in ("op", "keyword"):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        if self.cur.text != text:
            self.error(f"expected {text!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.cur.kind != "ident":
            self.error("expected identifier")
        return self.advance().text

    # -- program --------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.cur.kind != "eof":
            decl = self.parse_stream_decl()
            if decl.name in program.decls:
                self.error(f"duplicate stream {decl.name!r}")
            program.decls[decl.name] = decl
            program.order.append(decl.name)
        return program

    def parse_type(self) -> tuple[str, ast.Expr | None]:
        if self.cur.text not in ("float", "int", "void", "boolean"):
            self.error("expected a type")
        ty = self.advance().text
        size = None
        if self.accept("["):
            size = self.parse_expr()
            self.expect("]")
        return ty, size

    def parse_stream_decl(self):
        self.parse_type()  # input type (unchecked beyond syntax)
        self.expect("->")
        self.parse_type()  # output type
        kind = self.cur.text
        if kind not in ("filter", "pipeline", "splitjoin", "feedbackloop"):
            self.error("expected filter/pipeline/splitjoin/feedbackloop")
        self.advance()
        name = self.expect_ident()
        params = self.parse_params()
        if kind == "filter":
            return self.parse_filter_body(name, params)
        return self.parse_composite_body(kind, name, params)

    def parse_params(self) -> tuple[ast.Param, ...]:
        params = []
        if self.accept("("):
            while not self.accept(")"):
                ty, size = self.parse_type()
                pname = self.expect_ident()
                params.append(ast.Param(ty, size, pname))
                if self.cur.text != ")":
                    self.expect(",")
        return tuple(params)

    # -- filters ----------------------------------------------------------
    def parse_filter_body(self, name, params) -> ast.FilterDecl:
        self.expect("{")
        fields: list[ast.FieldDecl] = []
        init: tuple[ast.Stmt, ...] = ()
        works: list[ast.WorkDecl] = []
        while not self.accept("}"):
            if self.cur.text == "init":
                self.advance()
                init = self.parse_block()
            elif self.cur.text in ("work", "prework"):
                works.append(self.parse_work())
            elif self.cur.text in ("float", "int", "boolean"):
                ty, size = self.parse_type()
                fname = self.expect_ident()
                finit = self.parse_expr() if self.accept("=") else None
                self.expect(";")
                fields.append(ast.FieldDecl(ty, size, fname, finit))
            else:
                self.error("expected field, init, work or prework")
        if not works:
            self.error(f"filter {name!r} has no work function")
        return ast.FilterDecl(name, params, tuple(fields), init,
                              tuple(works))

    def parse_work(self) -> ast.WorkDecl:
        kind = self.advance().text
        peek = pop = push = None
        while self.cur.text in ("push", "pop", "peek"):
            which = self.advance().text
            rate = self.parse_unary()
            if which == "push":
                push = rate
            elif which == "pop":
                pop = rate
            else:
                peek = rate
        body = self.parse_block()
        return ast.WorkDecl(kind, peek, pop, push, body)

    # -- statements -------------------------------------------------------
    def parse_block(self) -> tuple[ast.Stmt, ...]:
        self.expect("{")
        stmts = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return tuple(stmts)

    def parse_stmt(self) -> ast.Stmt:
        t = self.cur
        if t.text in ("float", "int", "boolean"):
            ty, size = self.parse_type()
            name = self.expect_ident()
            init = self.parse_expr() if self.accept("=") else None
            self.expect(";")
            return ast.VarDecl("int" if ty == "boolean" else ty,
                               size, name, init)
        if t.text == "push":
            self.advance()
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.PushStmt(value)
        if t.text == "pop":
            self.advance()
            self.expect("(")
            self.expect(")")
            self.expect(";")
            return ast.PopStmt()
        if t.text == "if":
            return self.parse_if()
        if t.text == "for":
            return self.parse_for()
        if t.text == "add":
            self.advance()
            stream, args = self.parse_stream_ref()
            self.expect(";")
            return ast.AddStmt(stream, args)
        if t.text == "split":
            self.advance()
            if self.accept("duplicate"):
                decl = ast.SplitDecl("duplicate", ())
            else:
                self.expect("roundrobin")
                decl = ast.SplitDecl("roundrobin", self.parse_arg_list())
            self.expect(";")
            return decl
        if t.text == "join":
            self.advance()
            self.expect("roundrobin")
            weights = self.parse_arg_list()
            self.expect(";")
            return ast.JoinDecl(weights)
        if t.text == "body":
            self.advance()
            stream, args = self.parse_stream_ref()
            self.expect(";")
            return ast.BodyDecl(stream, args)
        if t.text == "loop":
            self.advance()
            stream, args = self.parse_stream_ref()
            self.expect(";")
            return ast.LoopDecl(stream, args)
        if t.text == "enqueue":
            self.advance()
            value = self.parse_expr()
            self.expect(";")
            return ast.EnqueueStmt(value)
        # assignment or bare expression
        expr = self.parse_expr()
        if self.cur.text in _ASSIGN_OPS:
            op = self.advance().text
            if not isinstance(expr, (ast.Name, ast.IndexExpr)):
                self.error("invalid assignment target")
            value = self.parse_expr()
            self.expect(";")
            return ast.AssignStmt(expr, op, value)
        if self.cur.text in ("++", "--"):
            op = self.advance().text
            if not isinstance(expr, (ast.Name, ast.IndexExpr)):
                self.error("invalid increment target")
            self.expect(";")
            delta = ast.Num(1) if op == "++" else ast.Num(-1)
            return ast.AssignStmt(expr, "+=", delta)
        self.expect(";")
        return ast.ExprStmt(expr)

    def parse_if(self) -> ast.IfStmt:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block() if self.cur.text == "{" \
            else (self.parse_stmt(),)
        orelse: tuple[ast.Stmt, ...] = ()
        if self.accept("else"):
            orelse = self.parse_block() if self.cur.text == "{" \
                else (self.parse_stmt(),)
        return ast.IfStmt(cond, then, orelse)

    def parse_for(self) -> ast.ForStmt:
        self.expect("for")
        self.expect("(")
        # init: 'int i = e' or 'i = e'
        if self.cur.text == "int":
            self.advance()
        var = self.expect_ident()
        self.expect("=")
        start = self.parse_expr()
        self.expect(";")
        # cond: i < e | i <= e | i > e | i >= e
        cvar = self.expect_ident()
        if cvar != var:
            self.error("for-loop condition must test the loop variable")
        rel = self.advance().text
        bound = self.parse_expr()
        if rel == "<":
            stop = bound
        elif rel == "<=":
            stop = ast.BinOp("+", bound, ast.Num(1))
        elif rel == ">":
            stop = bound
        elif rel == ">=":
            stop = ast.BinOp("-", bound, ast.Num(1))
        else:
            self.error("unsupported for-loop condition")
        self.expect(";")
        # update: i++ | i-- | i += e | i = i + e
        uvar = self.expect_ident()
        if uvar != var:
            self.error("for-loop update must modify the loop variable")
        if self.accept("++"):
            step: ast.Expr = ast.Num(1)
        elif self.accept("--"):
            step = ast.Num(-1)
        elif self.accept("+="):
            step = self.parse_expr()
        elif self.accept("="):
            lhs = self.parse_expr()
            if (isinstance(lhs, ast.BinOp) and lhs.op == "+"
                    and isinstance(lhs.left, ast.Name)
                    and lhs.left.ident == var):
                step = lhs.right
            else:
                self.error("unsupported for-loop update")
        else:
            self.error("unsupported for-loop update")
        self.expect(")")
        body = self.parse_block() if self.cur.text == "{" \
            else (self.parse_stmt(),)
        return ast.ForStmt(var, start, stop, step, body)

    def parse_stream_ref(self) -> tuple[str, tuple[ast.Expr, ...]]:
        name = self.expect_ident()
        args: tuple[ast.Expr, ...] = ()
        if self.cur.text == "(":
            args = self.parse_arg_list()
        return name, args

    def parse_arg_list(self) -> tuple[ast.Expr, ...]:
        self.expect("(")
        args = []
        while not self.accept(")"):
            args.append(self.parse_expr())
            if self.cur.text != ")":
                self.expect(",")
        return tuple(args)

    # -- expressions ------------------------------------------------------
    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            right = self.parse_expr(level + 1)
            left = ast.BinOp(op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.accept("-"):
            return ast.UnOp("-", self.parse_unary())
        if self.accept("!"):
            return ast.UnOp("!", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.cur.text == "[":
            if not isinstance(expr, ast.Name):
                self.error("only plain arrays can be indexed")
            self.advance()
            index = self.parse_expr()
            self.expect("]")
            expr = ast.IndexExpr(expr.ident, index)
        return expr

    def parse_primary(self) -> ast.Expr:
        t = self.cur
        if t.kind == "int":
            self.advance()
            return ast.Num(int(t.text))
        if t.kind == "float":
            self.advance()
            return ast.Num(float(t.text))
        if t.text == "pi":
            self.advance()
            import math

            return ast.Num(math.pi)
        if t.text == "true":
            self.advance()
            return ast.Num(1)
        if t.text == "false":
            self.advance()
            return ast.Num(0)
        if t.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if t.text == "peek":
            self.advance()
            self.expect("(")
            index = self.parse_expr()
            self.expect(")")
            return ast.PeekExpr(index)
        if t.text == "pop":
            self.advance()
            self.expect("(")
            self.expect(")")
            return ast.PopExpr()
        if t.kind == "ident":
            name = self.advance().text
            if self.cur.text == "(":
                args = self.parse_arg_list()
                return ast.CallExpr(name, args)
            return ast.Name(name)
        self.error("expected an expression")

    # -- composites ---------------------------------------------------------
    def parse_composite_body(self, kind, name, params) -> ast.CompositeDecl:
        body = self.parse_block()
        return ast.CompositeDecl(kind, name, params, body)


def parse(source: str) -> ast.Program:
    """Parse DSL source text into a Program AST."""
    return Parser(source).parse_program()
