"""Recursive-descent parser for the mini-StreamIt DSL.

Built around an efilter-style :class:`TokenStream` (``accept`` /
``expect`` / ``reject`` / ``peek``) with panic-mode error recovery: a
syntax error records a structured :class:`~repro.errors.Diagnostic` and
resynchronizes at the nearest ``;`` or ``}`` (or the next stream
declaration), so a single parse reports *every* error in the program.
Missing semicolons use insertion recovery — the diagnostic points at
the gap and parsing continues as if the ``;`` were present.

Source spans from the lexer are threaded onto every AST node, so later
phases (elaboration) can point their own errors at source text.
"""

from __future__ import annotations

import math

from ..errors import Diagnostic, DSLError, SourceSpan
from . import ast
from .lexer import Lexer, Token

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}

_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_TYPES = ("float", "int", "void", "boolean")
_STREAM_KINDS = ("filter", "pipeline", "splitjoin", "feedbackloop")

#: stop reporting after this many diagnostics — a garbage input should
#: not produce a thousand-line error cascade
MAX_ERRORS = 25


class _Recover(Exception):
    """Internal: unwind to the nearest recovery point."""


class _TooManyErrors(Exception):
    """Internal: abandon the parse once MAX_ERRORS is reached."""


class TokenStream:
    """Cursor over a token list with efilter-style combinators.

    ``accept`` consumes a matching token (recording it as ``matched``)
    and returns it, or returns ``None`` without consuming; ``expect``
    is ``accept`` or error; ``reject`` is an error *if* the token
    matches.  ``peek`` looks ahead without consuming.
    """

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.matched: Token | None = None

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    @property
    def prev(self) -> Token:
        return self.tokens[max(self.pos - 1, 0)]

    def at_end(self) -> bool:
        return self.cur.kind == "eof"

    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        t = self.cur
        if t.kind != "eof":
            self.pos += 1
        self.matched = t
        return t

    def accept(self, *texts: str) -> Token | None:
        """Consume the current token if it is one of ``texts``
        (operator or keyword); returns it, else ``None``."""
        t = self.cur
        if t.kind in ("op", "keyword") and t.text in texts:
            return self.advance()
        return None

    def accept_kind(self, kind: str) -> Token | None:
        if self.cur.kind == kind:
            return self.advance()
        return None


class Parser:
    def __init__(self, source: str):
        self.source = source
        lexer = Lexer(source)
        self.stream = TokenStream(lexer.scan())
        self.diagnostics: list[Diagnostic] = list(lexer.diagnostics)
        if len(self.diagnostics) > MAX_ERRORS:
            del self.diagnostics[MAX_ERRORS:]

    # -- token helpers ------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.stream.cur

    def advance(self) -> Token:
        return self.stream.advance()

    def accept(self, *texts: str) -> Token | None:
        return self.stream.accept(*texts)

    # -- diagnostics --------------------------------------------------
    def diagnose(self, code: str, message: str,
                 span: SourceSpan | None = None,
                 hint: str | None = None) -> None:
        """Record a diagnostic without unwinding (caller continues)."""
        if len(self.diagnostics) >= MAX_ERRORS:
            raise _TooManyErrors
        if span is None:
            span = self.cur.span
        self.diagnostics.append(Diagnostic(code, message, span, hint))

    def error(self, code: str, message: str,
              span: SourceSpan | None = None,
              hint: str | None = None):
        """Record a diagnostic describing the found token and unwind
        to the nearest recovery point."""
        t = self.cur
        found = "end of input" if t.kind == "eof" \
            else f"{t.kind} {t.text!r}"
        self.diagnose(code, f"{message} (found {found})", span, hint)
        raise _Recover

    def expect(self, text: str, code: str = "dsl-expected") -> Token:
        tok = self.accept(text)
        if tok is None:
            self.error(code, f"expected {text!r}")
        return tok

    def expect_semi(self) -> None:
        """Expect ``;`` with insertion recovery: on a missing semicolon
        the diagnostic points at the gap after the previous token and
        parsing continues as if it were present."""
        if self.accept(";"):
            return
        prev = self.stream.prev
        span = SourceSpan(prev.end_line, prev.end_col,
                          prev.end_line, prev.end_col)
        self.diagnose("dsl-expected", "expected ';' after statement", span)

    def expect_ident(self) -> Token:
        tok = self.stream.accept_kind("ident")
        if tok is None:
            self.error("dsl-expected-ident", "expected identifier")
        return tok

    def reject(self, *texts: str) -> None:
        if self.cur.kind in ("op", "keyword") and self.cur.text in texts:
            self.error("dsl-unexpected",
                       f"unexpected {self.cur.text!r}")

    # -- recovery -----------------------------------------------------
    def _sync_stmt(self) -> None:
        """Panic-mode resync after a bad statement: skip to just past
        the next ``;`` or to the enclosing ``}`` (left unconsumed),
        tracking nested braces."""
        depth = 0
        while not self.stream.at_end():
            t = self.cur
            if t.kind == "op":
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    if depth == 0:
                        return
                    depth -= 1
                elif t.text == ";" and depth == 0:
                    self.advance()
                    return
            self.advance()

    def _sync_decl(self) -> None:
        """Resync after a bad stream declaration: skip to the next
        plausible declaration start (a type name at brace depth 0)."""
        depth = 0
        first = True
        while not self.stream.at_end():
            t = self.cur
            if depth == 0 and not first and t.kind == "keyword" \
                    and t.text in _TYPES:
                return
            if t.kind == "op":
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth = max(depth - 1, 0)
            self.advance()
            first = False

    # -- program --------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(source=self.source)
        try:
            while not self.stream.at_end():
                try:
                    decl = self.parse_stream_decl()
                except _Recover:
                    self._sync_decl()
                    continue
                if decl.name in program.decls:
                    self.diagnose(
                        "dsl-duplicate-stream",
                        f"duplicate stream {decl.name!r}", decl.span)
                    continue
                program.decls[decl.name] = decl
                program.order.append(decl.name)
        except _TooManyErrors:
            pass
        if self.diagnostics:
            raise DSLError(diagnostics=self.diagnostics, source=self.source)
        return program

    def parse_type(self) -> tuple[str, ast.Expr | None]:
        if self.cur.text not in _TYPES or self.cur.kind != "keyword":
            self.error("dsl-expected-type", "expected a type")
        ty = self.advance().text
        size = None
        if self.accept("["):
            size = self.parse_expr()
            self.expect("]")
        return ty, size

    def parse_stream_decl(self):
        self.parse_type()  # input type (unchecked beyond syntax)
        self.expect("->")
        self.parse_type()  # output type
        kind = self.cur.text
        if kind not in _STREAM_KINDS or self.cur.kind != "keyword":
            self.error("dsl-expected-stream-kind",
                       "expected filter/pipeline/splitjoin/feedbackloop")
        self.advance()
        name_tok = self.expect_ident()
        params = self.parse_params()
        if kind == "filter":
            return self.parse_filter_body(name_tok, params)
        return self.parse_composite_body(kind, name_tok, params)

    def parse_params(self) -> tuple[ast.Param, ...]:
        params = []
        if self.accept("("):
            while not self.accept(")"):
                if self.stream.at_end():
                    self.error("dsl-unclosed", "unclosed parameter list")
                ty, size = self.parse_type()
                pname = self.expect_ident()
                params.append(ast.Param(ty, size, pname.text,
                                        span=pname.span))
                if self.cur.text != ")":
                    self.expect(",")
        return tuple(params)

    # -- filters ----------------------------------------------------------
    def parse_filter_body(self, name_tok: Token, params) -> ast.FilterDecl:
        name = name_tok.text
        self.expect("{")
        fields: list[ast.FieldDecl] = []
        init: tuple[ast.Stmt, ...] = ()
        works: list[ast.WorkDecl] = []
        while not self.accept("}"):
            if self.stream.at_end():
                self.error("dsl-unclosed",
                           f"unclosed body of filter {name!r}")
            try:
                if self.cur.text == "init":
                    self.advance()
                    init = self.parse_block()
                elif self.cur.text in ("work", "prework"):
                    works.append(self.parse_work())
                elif self.cur.text in ("float", "int", "boolean"):
                    ty, size = self.parse_type()
                    fname = self.expect_ident()
                    finit = self.parse_expr() if self.accept("=") else None
                    self.expect_semi()
                    fields.append(ast.FieldDecl(ty, size, fname.text, finit,
                                                span=fname.span))
                else:
                    self.error("dsl-expected-member",
                               "expected field, init, work or prework")
            except _Recover:
                self._sync_stmt()
        if not works:
            self.diagnose("dsl-no-work",
                          f"filter {name!r} has no work function",
                          name_tok.span)
        return ast.FilterDecl(name, params, tuple(fields), init,
                              tuple(works), span=name_tok.span)

    def parse_work(self) -> ast.WorkDecl:
        head = self.advance()
        peek = pop = push = None
        while self.cur.text in ("push", "pop", "peek") \
                and self.cur.kind == "keyword":
            which = self.advance().text
            rate = self.parse_unary()
            if which == "push":
                push = rate
            elif which == "pop":
                pop = rate
            else:
                peek = rate
        body = self.parse_block()
        return ast.WorkDecl(head.text, peek, pop, push, body,
                            span=head.span)

    # -- statements -------------------------------------------------------
    def parse_block(self) -> tuple[ast.Stmt, ...]:
        self.expect("{")
        stmts = []
        while not self.accept("}"):
            if self.stream.at_end():
                self.error("dsl-unclosed", "unclosed block")
            try:
                stmts.append(self.parse_stmt())
            except _Recover:
                self._sync_stmt()
        return tuple(stmts)

    def parse_stmt(self) -> ast.Stmt:
        t = self.cur
        self.reject("else")
        if t.text in ("float", "int", "boolean") and t.kind == "keyword":
            ty, size = self.parse_type()
            name = self.expect_ident()
            init = self.parse_expr() if self.accept("=") else None
            self.expect_semi()
            return ast.VarDecl("int" if ty == "boolean" else ty,
                               size, name.text, init, span=name.span)
        if t.text == "push":
            self.advance()
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            self.expect_semi()
            return ast.PushStmt(value, span=t.span)
        if t.text == "pop":
            self.advance()
            self.expect("(")
            self.expect(")")
            self.expect_semi()
            return ast.PopStmt(span=t.span)
        if t.text == "if":
            return self.parse_if()
        if t.text == "for":
            return self.parse_for()
        if t.text == "add":
            self.advance()
            stream, args, span = self.parse_stream_ref()
            self.expect_semi()
            return ast.AddStmt(stream, args, span=span)
        if t.text == "split":
            self.advance()
            if self.accept("duplicate"):
                decl = ast.SplitDecl("duplicate", (), span=t.span)
            else:
                self.expect("roundrobin", "dsl-expected-splitter")
                decl = ast.SplitDecl("roundrobin", self.parse_arg_list(),
                                     span=t.span)
            self.expect_semi()
            return decl
        if t.text == "join":
            self.advance()
            self.expect("roundrobin", "dsl-expected-joiner")
            weights = self.parse_arg_list()
            self.expect_semi()
            return ast.JoinDecl(weights, span=t.span)
        if t.text == "body":
            self.advance()
            stream, args, span = self.parse_stream_ref()
            self.expect_semi()
            return ast.BodyDecl(stream, args, span=span)
        if t.text == "loop":
            self.advance()
            stream, args, span = self.parse_stream_ref()
            self.expect_semi()
            return ast.LoopDecl(stream, args, span=span)
        if t.text == "enqueue":
            self.advance()
            value = self.parse_expr()
            self.expect_semi()
            return ast.EnqueueStmt(value, span=t.span)
        # assignment or bare expression
        expr = self.parse_expr()
        if self.cur.text in _ASSIGN_OPS and self.cur.kind == "op":
            op = self.advance().text
            if not isinstance(expr, (ast.Name, ast.IndexExpr)):
                self.error("dsl-bad-assign-target",
                           "invalid assignment target", expr.span)
            value = self.parse_expr()
            self.expect_semi()
            return ast.AssignStmt(expr, op, value, span=expr.span)
        if self.cur.text in ("++", "--"):
            op = self.advance().text
            if not isinstance(expr, (ast.Name, ast.IndexExpr)):
                self.error("dsl-bad-assign-target",
                           "invalid increment target", expr.span)
            self.expect_semi()
            delta = ast.Num(1) if op == "++" else ast.Num(-1)
            return ast.AssignStmt(expr, "+=", delta, span=expr.span)
        self.expect_semi()
        return ast.ExprStmt(expr, span=expr.span)

    def parse_if(self) -> ast.IfStmt:
        head = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block() if self.cur.text == "{" \
            else (self.parse_stmt(),)
        orelse: tuple[ast.Stmt, ...] = ()
        if self.accept("else"):
            orelse = self.parse_block() if self.cur.text == "{" \
                else (self.parse_stmt(),)
        return ast.IfStmt(cond, then, orelse, span=head.span)

    def parse_for(self) -> ast.ForStmt:
        head = self.expect("for")
        self.expect("(")
        # init: 'int i = e' or 'i = e'
        if self.cur.text == "int":
            self.advance()
        var = self.expect_ident()
        self.expect("=")
        start = self.parse_expr()
        self.expect(";")
        # cond: i < e | i <= e | i > e | i >= e
        cvar = self.expect_ident()
        if cvar.text != var.text:
            self.error("dsl-bad-for",
                       "for-loop condition must test the loop variable",
                       cvar.span)
        rel_tok = self.advance()
        rel = rel_tok.text
        bound = self.parse_expr()
        if rel == "<":
            stop = bound
        elif rel == "<=":
            stop = ast.BinOp("+", bound, ast.Num(1), span=bound.span)
        elif rel == ">":
            stop = bound
        elif rel == ">=":
            stop = ast.BinOp("-", bound, ast.Num(1), span=bound.span)
        else:
            self.error("dsl-bad-for", "unsupported for-loop condition",
                       rel_tok.span)
        self.expect(";")
        # update: i++ | i-- | i += e | i = i + e
        uvar = self.expect_ident()
        if uvar.text != var.text:
            self.error("dsl-bad-for",
                       "for-loop update must modify the loop variable",
                       uvar.span)
        if self.accept("++"):
            step: ast.Expr = ast.Num(1)
        elif self.accept("--"):
            step = ast.Num(-1)
        elif self.accept("+="):
            step = self.parse_expr()
        elif self.accept("="):
            lhs = self.parse_expr()
            if (isinstance(lhs, ast.BinOp) and lhs.op == "+"
                    and isinstance(lhs.left, ast.Name)
                    and lhs.left.ident == var.text):
                step = lhs.right
            else:
                self.error("dsl-bad-for", "unsupported for-loop update",
                           uvar.span)
        else:
            self.error("dsl-bad-for", "unsupported for-loop update")
        self.expect(")")
        body = self.parse_block() if self.cur.text == "{" \
            else (self.parse_stmt(),)
        return ast.ForStmt(var.text, start, stop, step, body,
                           span=head.span)

    def parse_stream_ref(self) -> tuple[str, tuple[ast.Expr, ...],
                                        SourceSpan]:
        name = self.expect_ident()
        args: tuple[ast.Expr, ...] = ()
        span = name.span
        if self.cur.text == "(":
            args = self.parse_arg_list()
            span = span.merge(self.stream.prev.span)
        return name.text, args, span

    def parse_arg_list(self) -> tuple[ast.Expr, ...]:
        self.expect("(")
        args = []
        while not self.accept(")"):
            if self.stream.at_end():
                self.error("dsl-unclosed", "unclosed argument list")
            args.append(self.parse_expr())
            if self.cur.text != ")":
                self.expect(",")
        return tuple(args)

    # -- expressions ------------------------------------------------------
    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            right = self.parse_expr(level + 1)
            left = ast.BinOp(op, left, right,
                             span=_merge(left.span, right.span))
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.accept("-", "!")
        if tok is not None:
            operand = self.parse_unary()
            return ast.UnOp(tok.text, operand,
                            span=tok.span.merge(operand.span))
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.cur.text == "[":
            if not isinstance(expr, ast.Name):
                self.error("dsl-bad-index",
                           "only plain arrays can be indexed", expr.span)
            self.advance()
            index = self.parse_expr()
            close = self.expect("]")
            expr = ast.IndexExpr(expr.ident, index,
                                 span=_merge(expr.span, close.span))
        return expr

    def parse_primary(self) -> ast.Expr:
        t = self.cur
        if t.kind == "int":
            self.advance()
            return ast.Num(int(t.text), span=t.span)
        if t.kind == "float":
            self.advance()
            return ast.Num(float(t.text), span=t.span)
        if t.text == "pi":
            self.advance()
            return ast.Num(math.pi, span=t.span)
        if t.text == "true":
            self.advance()
            return ast.Num(1, span=t.span)
        if t.text == "false":
            self.advance()
            return ast.Num(0, span=t.span)
        if t.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if t.text == "peek":
            self.advance()
            self.expect("(")
            index = self.parse_expr()
            close = self.expect(")")
            return ast.PeekExpr(index, span=t.span.merge(close.span))
        if t.text == "pop":
            self.advance()
            self.expect("(")
            close = self.expect(")")
            return ast.PopExpr(span=t.span.merge(close.span))
        if t.kind == "ident":
            name = self.advance()
            if self.cur.text == "(":
                args = self.parse_arg_list()
                return ast.CallExpr(
                    name.text, args,
                    span=name.span.merge(self.stream.prev.span))
            return ast.Name(name.text, span=name.span)
        self.error("dsl-expected-expr", "expected an expression")

    # -- composites ---------------------------------------------------------
    def parse_composite_body(self, kind, name_tok: Token,
                             params) -> ast.CompositeDecl:
        body = self.parse_block()
        return ast.CompositeDecl(kind, name_tok.text, params, body,
                                 span=name_tok.span)


def _merge(a: SourceSpan | None, b: SourceSpan | None) -> SourceSpan | None:
    if a is None:
        return b
    return a.merge(b)


def parse(source: str) -> ast.Program:
    """Parse DSL source text into a Program AST.

    Raises :class:`DSLError` carrying *all* diagnostics (lexical and
    syntactic) found during a single recovering pass.
    """
    return Parser(source).parse_program()
