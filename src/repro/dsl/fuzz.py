"""Grammar-driven differential fuzzer for the DSL frontend.

Generates random-but-valid DSL programs straight from the grammar —
filters with randomized rates and bodies, pipelines, rate-consistent
splitjoins (duplicate and roundrobin), and echo-template feedback
loops — then runs every program through all three backends and demands
the frontend contract:

* **interp** and **compiled** outputs are bitwise identical (both
  scalar-evaluate the same elaborated IR);
* **plan** agrees to 1e-9 (batched kernels may reassociate float sums).

Two design rules keep the differential sound rather than flaky:

* *Rate consistency by construction.*  Every generated stream carries
  its reduced steady-state ``(pop, push)`` signature.  Duplicate-split
  joiner weights are ``w_i = (lcm(pop_*) / pop_i) * push_i``; roundrobin
  splitters use ``(pop_i, push_i)`` directly.  The rate simulator never
  sees an unschedulable program, so any failure is a backend bug, not a
  generator bug.
* *Continuity at branch points.*  Nonlinear bodies only use constructs
  that are continuous where they branch (clips, ``abs``, ``atan``,
  ``min``/``max``): a 1-ulp upstream difference between the scalar and
  batched paths can flip a comparison, but never produce an O(1) output
  divergence.  Discontinuous quantizers would make 1e-9 unfalsifiable.

CLI::

    python -m repro.dsl.fuzz --count 200 --seed 0

exits non-zero on the first mismatch, printing the offending program's
source so it can be replayed as a regression test.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..graph.streams import Pipeline, Stream
from ..numeric import DTYPE_CHOICES, resolve_policy
from ..runtime import run_graph
from ..runtime.builtins import Collector
from .elaborator import compile_source

__all__ = ["FuzzProgram", "Mismatch", "generate", "check_program",
           "run_fuzz", "main"]

TOP = "FuzzProgram"
PLAN_RTOL = 1e-9
PLAN_ATOL = 1e-9


@dataclass
class FuzzProgram:
    """One generated program: source text plus its provenance."""
    seed: int
    source: str
    top: str = TOP
    #: reduced steady-state signature of the float->float body
    pop: int = 1
    push: int = 1
    #: construct census, e.g. {"filter": 4, "splitjoin": 1}
    census: dict = field(default_factory=dict)


@dataclass
class Mismatch:
    """A differential failure, with enough context to replay it."""
    program: FuzzProgram
    kind: str      # "elaborate" | "run:<backend>" | "diverge:<backend>"
    detail: str

    def render(self) -> str:
        return (f"seed {self.program.seed}: {self.kind}\n{self.detail}\n"
                f"--- program ---\n{self.program.source}")


def _reduce(pop: int, push: int) -> tuple[int, int]:
    g = math.gcd(pop, push)
    return (pop // g, push // g) if g > 1 else (pop, push)


def _compose(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Steady-state signature of ``a`` feeding ``b``."""
    (p1, q1), (p2, q2) = a, b
    m = math.lcm(q1, p2)
    return _reduce(p1 * (m // q1), q2 * (m // p2))


class _Gen:
    """Emits declarations bottom-up; every method returns
    ``(name, pop, push)`` for the stream it declared."""

    def __init__(self, rng: random.Random, max_depth: int):
        self.rng = rng
        self.max_depth = max_depth
        self.decls: list[str] = []
        self.uid = 0
        self.census: dict[str, int] = {}

    def _fresh(self, prefix: str) -> str:
        self.uid += 1
        return f"{prefix}{self.uid}"

    def _count(self, kind: str) -> None:
        self.census[kind] = self.census.get(kind, 0) + 1

    def _lit(self, x: float) -> str:
        return f"{x:.6f}"

    # ------------------------------------------------------------------
    # leaf filters (float -> float)
    # ------------------------------------------------------------------

    def _fir(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Fir")
        taps = rng.randint(2, 6)
        dec = rng.choice((0, 0, 1, 2))
        pop = 1 + dec
        freq = self._lit(rng.uniform(0.3, 1.2))
        phase = self._lit(rng.uniform(0.0, 3.0))
        self.decls.append(f"""\
float->float filter {name} {{
    float[{taps}] h;
    init {{
        for (int i = 0; i < {taps}; i++) {{
            h[i] = sin({freq} * i + {phase}) / {taps};
        }}
    }}
    work peek {max(taps, pop)} pop {pop} push 1 {{
        float sum = 0.0;
        for (int i = 0; i < {taps}; i++) {{
            sum = sum + h[i] * peek(i);
        }}
        push(sum);
        for (int i = 0; i < {pop}; i++) {{
            pop();
        }}
    }}
}}
""")
        self._count("filter")
        return name, pop, 1

    def _map(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Map")
        k = rng.randint(1, 3)
        pops = "\n".join(f"        float x{i} = pop();" for i in range(k))
        pushes = []
        for i in range(k):
            a = self._lit(rng.uniform(-1.0, 1.0))
            b = self._lit(rng.uniform(-0.5, 0.5))
            j = rng.randrange(k)
            if j != i and rng.random() < 0.5:
                pushes.append(f"        push({a} * x{i} - {b} * x{j});")
            else:
                pushes.append(f"        push({a} * x{i} + {b});")
        body = "\n".join(pushes)
        self.decls.append(f"""\
float->float filter {name} {{
    work peek {k} pop {k} push {k} {{
{pops}
{body}
    }}
}}
""")
        self._count("filter")
        return name, k, k

    def _expander(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Expand")
        n = rng.randint(2, 3)
        gain = self._lit(rng.uniform(0.2, 0.8))
        self.decls.append(f"""\
float->float filter {name} {{
    work peek 1 pop 1 push {n} {{
        float x = pop();
        push(x);
        for (int i = 0; i < {n - 1}; i++) {{
            push({gain} * x);
        }}
    }}
}}
""")
        self._count("filter")
        return name, 1, n

    def _compressor(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Compress")
        n = rng.randint(2, 3)
        self.decls.append(f"""\
float->float filter {name} {{
    work peek {n} pop {n} push 1 {{
        float sum = 0.0;
        for (int i = 0; i < {n}; i++) {{
            sum = sum + peek(i);
        }}
        push(sum / {n}.0);
        for (int i = 0; i < {n}; i++) {{
            pop();
        }}
    }}
}}
""")
        self._count("filter")
        return name, n, 1

    def _nonlinear(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Shape")
        t = self._lit(rng.uniform(0.5, 4.0))
        g = self._lit(rng.uniform(0.2, 0.9))
        # Continuous at every branch point — see module docstring.
        variant = rng.randrange(4)
        if variant == 0:
            body = f"""\
        float x = pop();
        if (x > {t}) {{
            push({t});
        }} else {{
            push(x);
        }}"""
        elif variant == 1:
            body = f"""\
        float x = pop();
        push(atan({g} * x));"""
        elif variant == 2:
            body = f"""\
        float x = pop();
        push(abs(x) - {t});"""
        else:
            body = f"""\
        float x = pop();
        push(min(max(x, 0.0 - {t}), {t}));"""
        self.decls.append(f"""\
float->float filter {name} {{
    work peek 1 pop 1 push 1 {{
{body}
    }}
}}
""")
        self._count("filter")
        return name, 1, 1

    def _stateful(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Leaky")
        a = self._lit(rng.uniform(0.3, 0.9))
        self.decls.append(f"""\
float->float filter {name} {{
    float s;
    work peek 1 pop 1 push 1 {{
        s = {a} * s + pop();
        push(s);
    }}
}}
""")
        self._count("filter")
        return name, 1, 1

    def _delay(self) -> tuple[str, int, int]:
        name = self._fresh("Lag")
        self.decls.append(f"""\
float->float filter {name} {{
    prework push 1 {{
        push(0.0);
    }}
    work peek 1 pop 1 push 1 {{
        push(pop());
    }}
}}
""")
        self._count("filter")
        return name, 1, 1

    def _leaf(self) -> tuple[str, int, int]:
        return self.rng.choice((
            self._fir, self._map, self._map, self._expander,
            self._compressor, self._nonlinear, self._stateful,
            self._delay))()

    # ------------------------------------------------------------------
    # composites
    # ------------------------------------------------------------------

    def _pipeline(self, depth: int) -> tuple[str, int, int]:
        name = self._fresh("Pipe")
        rates = (1, 1)
        adds = []
        for _ in range(self.rng.randint(2, 3)):
            child, p, q = self._stream(depth - 1)
            adds.append(f"    add {child}();")
            rates = _compose(rates, (p, q))
            if max(rates) > 24:
                break
        body = "\n".join(adds)
        self.decls.append(
            f"float->float pipeline {name} {{\n{body}\n}}\n")
        self._count("pipeline")
        return name, *rates

    def _splitjoin(self, depth: int) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Split")
        duplicate = rng.random() < 0.6
        children: list[tuple[str, int, int]] = []
        for _ in range(6):  # draw until the steady state stays small
            children = [self._stream(depth - 1)
                        for _ in range(rng.randint(2, 3))]
            if duplicate:
                big = math.lcm(*(p for _, p, _ in children)) > 12
            else:
                big = sum(p for _, p, _ in children) > 12
            if not big:
                break
        else:
            children = [self._map() for _ in range(2)]
        adds = "\n".join(f"    add {c}();" for c, _, _ in children)
        if duplicate:
            lcm = math.lcm(*(p for _, p, _ in children))
            weights = [q * (lcm // p) for _, p, q in children]
            pop, push = lcm, sum(weights)
            split = "split duplicate;"
        else:
            weights = [q for _, _, q in children]
            pop, push = (sum(p for _, p, _ in children), sum(weights))
            split = ("split roundrobin("
                     + ", ".join(str(p) for _, p, _ in children) + ");")
        join = "join roundrobin(" + ", ".join(map(str, weights)) + ");"
        self.decls.append(
            f"float->float splitjoin {name} {{\n    {split}\n{adds}\n"
            f"    {join}\n}}\n")
        self._count("splitjoin")
        return name, *_reduce(pop, push)

    def _feedback(self) -> tuple[str, int, int]:
        rng = self.rng
        name = self._fresh("Loop")
        mix, _, _ = self._map_mixer()
        damp, _, _ = self._damp()
        delay = rng.randint(1, 6)
        enq = "\n".join(
            f"    enqueue {self._lit(rng.uniform(-0.5, 0.5))};"
            for _ in range(delay))
        self.decls.append(f"""\
float->float feedbackloop {name} {{
    join roundrobin(1, 1);
    body {mix}();
    loop {damp}();
    split roundrobin(1, 1);
{enq}
}}
""")
        self._count("feedbackloop")
        return name, 1, 1

    def _map_mixer(self) -> tuple[str, int, int]:
        name = self._fresh("Mix")
        self.decls.append(f"""\
float->float filter {name} {{
    work peek 2 pop 2 push 2 {{
        float x = pop();
        float fb = pop();
        float y = x + fb;
        push(y);
        push(y);
    }}
}}
""")
        self._count("filter")
        return name, 2, 2

    def _damp(self) -> tuple[str, int, int]:
        g = self._lit(self.rng.uniform(0.1, 0.6)
                      * self.rng.choice((-1.0, 1.0)))
        name = self._fresh("Damp")
        self.decls.append(f"""\
float->float filter {name} {{
    work peek 1 pop 1 push 1 {{
        push({g} * pop());
    }}
}}
""")
        self._count("filter")
        return name, 1, 1

    def _stream(self, depth: int) -> tuple[str, int, int]:
        if depth <= 0:
            return self._leaf()
        roll = self.rng.random()
        if roll < 0.40:
            return self._leaf()
        if roll < 0.70:
            return self._pipeline(depth)
        if roll < 0.90:
            return self._splitjoin(depth)
        return self._feedback()

    def _source(self) -> str:
        rng = self.rng
        name = self._fresh("Src")
        if rng.random() < 0.5:
            period = rng.randint(3, 12)
            amp = self._lit(rng.uniform(0.5, 2.0))
            self.decls.append(f"""\
void->float filter {name} {{
    float[{period}] table;
    int idx;
    init {{
        for (int i = 0; i < {period}; i++) {{
            table[i] = {amp} * sin(0.9 * i);
        }}
    }}
    work push 1 {{
        push(table[idx]);
        idx = (idx + 1) % {period};
    }}
}}
""")
        else:
            w = self._lit(rng.uniform(0.05, 0.9))
            self.decls.append(f"""\
void->float filter {name} {{
    int n;
    work push 1 {{
        push(cos({w} * n));
        n = n + 1;
    }}
}}
""")
        self._count("filter")
        return name


def generate(seed: int, max_depth: int = 3) -> FuzzProgram:
    """Deterministically generate one program from ``seed``."""
    rng = random.Random(seed)
    gen = _Gen(rng, max_depth)
    src = gen._source()
    body, pop, push = gen._stream(max_depth)
    gen.decls.append(
        f"void->float pipeline {TOP} {{\n    add {src}();\n"
        f"    add {body}();\n}}\n")
    return FuzzProgram(seed=seed, source="\n".join(gen.decls),
                       pop=pop, push=push, census=dict(gen.census))


def _wrap(program: FuzzProgram) -> Pipeline:
    graph = compile_source(program.source, program.top)
    return Pipeline(list(graph.children) + [Collector("FuzzSink")],
                    name=graph.name)


def _run(program: FuzzProgram, n_outputs: int, backend: str,
         optimize: str = "none") -> list[float]:
    return run_graph(_wrap(program), n_outputs, backend=backend,
                     optimize=optimize)


def _run_typed(program: FuzzProgram, n_outputs: int, optimize: str,
               policy) -> np.ndarray:
    """Plan-backend run under a non-default numeric policy."""
    from ..session import StreamSession

    session = StreamSession(_wrap(program), backend="plan",
                            optimize=optimize, dtype=policy,
                            _program_mode=True)
    try:
        return np.asarray(session._advance_raw(n_outputs),
                          dtype=policy.dtype)
    finally:
        session.close()


def _run_workers(program: FuzzProgram, n_outputs: int, optimize: str,
                 workers: int) -> np.ndarray:
    """Plan-backend run on the parallel engine (``workers`` processes)."""
    from ..session import StreamSession

    session = StreamSession(_wrap(program), backend="plan",
                            optimize=optimize, workers=workers,
                            _program_mode=True)
    try:
        return np.asarray(session._advance_raw(n_outputs),
                          dtype=np.float64)
    finally:
        session.close()


def check_program(program: FuzzProgram, n_outputs: int = 64,
                  optimize: str = "none", dtype=None,
                  workers: int = 1) -> Mismatch | None:
    """Run one program through all three backends; ``None`` means OK.

    ``optimize`` additionally reruns the plan backend with that rewrite
    pipeline (at the same 1e-9 tolerance) when not ``"none"``.

    ``dtype`` additionally runs the plan backend under that numeric
    policy and compares against the float64 interp reference at the
    policy's documented tolerances (``policy.rtol``/``policy.atol``) —
    the differential contract of reduced-precision execution.

    ``workers`` > 1 additionally runs every plan mode on the parallel
    engine and holds it to the same 1e-9 contract against the interp
    reference (region scheduling and data-parallel fission must not
    change observable outputs).
    """
    policy = resolve_policy(dtype)
    try:
        reference = _run(program, n_outputs, "interp")
    except Exception:
        return Mismatch(program, "run:interp", traceback.format_exc())

    try:
        compiled = _run(program, n_outputs, "compiled")
    except Exception:
        return Mismatch(program, "run:compiled", traceback.format_exc())
    if compiled != reference:
        delta = max(abs(a - b) for a, b in zip(reference, compiled))
        return Mismatch(program, "diverge:compiled",
                        f"interp vs compiled max|delta| = {delta!r}")

    plan_modes = ["none"] + ([optimize] if optimize != "none" else [])
    for mode in plan_modes:
        try:
            plan = _run(program, n_outputs, "plan", optimize=mode)
        except Exception:
            return Mismatch(program, f"run:plan/{mode}",
                            traceback.format_exc())
        if not np.allclose(plan, reference,
                           rtol=PLAN_RTOL, atol=PLAN_ATOL):
            delta = float(np.max(np.abs(np.asarray(plan)
                                        - np.asarray(reference))))
            return Mismatch(program, f"diverge:plan/{mode}",
                            f"interp vs plan max|delta| = {delta!r}")
        if workers > 1:
            try:
                par = _run_workers(program, n_outputs, mode, workers)
            except Exception:
                return Mismatch(program,
                                f"run:plan/{mode}/workers{workers}",
                                traceback.format_exc())
            ref = np.asarray(reference, dtype=np.float64)
            if not np.allclose(par, ref, rtol=PLAN_RTOL, atol=PLAN_ATOL):
                delta = float(np.max(np.abs(par - ref)))
                return Mismatch(
                    program, f"diverge:plan/{mode}/workers{workers}",
                    f"interp vs plan(workers={workers}) "
                    f"max|delta| = {delta!r}")
        if not policy.is_default:
            try:
                typed = _run_typed(program, n_outputs, mode, policy)
            except Exception:
                return Mismatch(program, f"run:plan/{mode}/{policy.name}",
                                traceback.format_exc())
            ref = np.asarray(reference, dtype=np.float64)
            if not np.allclose(typed.astype(np.complex128
                                            if policy.is_complex
                                            else np.float64), ref,
                               rtol=policy.rtol, atol=policy.atol):
                delta = float(np.max(np.abs(typed - ref)))
                return Mismatch(
                    program, f"diverge:plan/{mode}/{policy.name}",
                    f"interp(f64) vs plan({policy.name}) "
                    f"max|delta| = {delta!r} "
                    f"(rtol={policy.rtol}, atol={policy.atol})")
    return None


def run_fuzz(count: int, seed: int = 0, max_depth: int = 3,
             n_outputs: int = 64, optimize: str = "none",
             dtype=None, workers: int = 1, stop_on_first: bool = True,
             progress=None) -> list[Mismatch]:
    """Fuzz ``count`` programs; return every mismatch found."""
    mismatches: list[Mismatch] = []
    for i in range(count):
        program = generate(seed * 1_000_003 + i, max_depth=max_depth)
        bad = check_program(program, n_outputs=n_outputs,
                            optimize=optimize, dtype=dtype,
                            workers=workers)
        if bad is not None:
            mismatches.append(bad)
            if stop_on_first:
                break
        if progress is not None:
            progress(i + 1, program)
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dsl.fuzz",
        description="Differentially fuzz the DSL frontend across the "
                    "interp, compiled and plan backends.")
    parser.add_argument("--count", type=int, default=200,
                        help="programs to generate (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (default 0)")
    parser.add_argument("--max-depth", type=int, default=3,
                        help="composite nesting bound (default 3)")
    parser.add_argument("--outputs", type=int, default=64,
                        help="samples to collect per program (default 64)")
    parser.add_argument("--optimize", default="none",
                        choices=("none", "linear", "freq", "auto"),
                        help="also differentially test this rewrite "
                             "pipeline under the plan backend")
    parser.add_argument("--dtype", default=None, choices=DTYPE_CHOICES,
                        help="also run the plan backend under this "
                             "numeric policy, compared to the float64 "
                             "interp reference at the policy's "
                             "tolerances (real policies only: the "
                             "fuzzer's nonlinear constructs — atan, "
                             "clips — are undefined on complex samples; "
                             "complex policies are covered by the "
                             "linear-app differential suite)")
    parser.add_argument("--workers", type=int, default=1,
                        help="also run every plan mode on the parallel "
                             "engine with this many worker processes, "
                             "held to the same 1e-9 differential "
                             "contract (default 1: skip)")
    parser.add_argument("--keep-going", action="store_true",
                        help="report every mismatch instead of stopping "
                             "at the first")
    parser.add_argument("--print-source", action="store_true",
                        help="dump each generated program to stdout")
    args = parser.parse_args(argv)
    if args.dtype is not None and resolve_policy(args.dtype).is_complex:
        parser.error("--dtype must be a real policy (f32/f64): the "
                     "fuzzer generates nonlinear real-valued programs")
    if args.workers < 1:
        parser.error("--workers must be a positive integer")

    census: dict[str, int] = {}

    def progress(done: int, program: FuzzProgram) -> None:
        for kind, n in program.census.items():
            census[kind] = census.get(kind, 0) + n
        if args.print_source:
            print(f"// ---- seed {program.seed} ----")
            print(program.source)
        if done % 50 == 0 or done == args.count:
            print(f"[fuzz] {done}/{args.count} programs OK")

    mismatches = run_fuzz(args.count, seed=args.seed,
                          max_depth=args.max_depth,
                          n_outputs=args.outputs,
                          optimize=args.optimize,
                          dtype=args.dtype,
                          workers=args.workers,
                          stop_on_first=not args.keep_going,
                          progress=progress)
    if mismatches:
        for bad in mismatches:
            print(bad.render(), file=sys.stderr)
        print(f"[fuzz] FAILED: {len(mismatches)} mismatch(es)",
              file=sys.stderr)
        return 1
    shape = ", ".join(f"{n} {kind}" for kind, n in sorted(census.items()))
    print(f"[fuzz] OK: {args.count} programs, 0 mismatches ({shape})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
