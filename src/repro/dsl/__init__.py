"""Textual mini-StreamIt front end: lexer, parser, elaborator, loader.

This is the canonical program representation: source text parses (with
panic-mode error recovery reporting every syntax error as a structured
:class:`~repro.errors.Diagnostic`), elaborates into a stream graph, and
flows into the plan cache keyed by its source fingerprint.  The
benchmark apps under ``repro.apps`` are themselves ``.str`` programs
loaded through :func:`load_source`.
"""

from .elaborator import Elaborator, compile_source
from .lexer import Lexer, Token, tokenize
from .loader import clear_source_cache, load_source, source_digest
from .parser import Parser, TokenStream, parse

__all__ = ["tokenize", "Token", "Lexer", "parse", "Parser", "TokenStream",
           "Elaborator", "compile_source", "load_source", "source_digest",
           "clear_source_cache"]
