"""Textual mini-StreamIt front end: lexer, parser, elaborator."""

from .elaborator import Elaborator, compile_source
from .lexer import Token, tokenize
from .parser import parse

__all__ = ["tokenize", "Token", "parse", "Elaborator", "compile_source"]
