"""Elaboration: DSL AST -> stream graphs with IR work functions.

Filters instantiate with concrete parameter values: field initializers and
``init`` blocks run in the concrete interpreter (exactly how StreamIt
resolves coefficients at compile time), work-function bodies lower to the
IR, and I/O rates are constant-folded.  Composite bodies (pipelines,
splitjoins, feedbackloops) are structural programs over constants: ``add``
statements, ``for`` loops, and ``if`` over parameters execute at
elaboration time.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import Diagnostic, DSLError, SourceSpan
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             RoundRobin, SplitJoin, Stream)
from ..ir import nodes as N
from ..ir.interp import Interpreter
from ..runtime.channels import Channel
from ..profiling import NullProfiler
from . import ast
from .parser import parse

_INTRINSICS = {"sin", "cos", "tan", "atan", "atan2", "exp", "log", "sqrt",
               "abs", "floor", "ceil", "pow", "min", "max", "round"}

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}


def _err(code: str, message: str, span: SourceSpan | None = None,
         hint: str | None = None):
    """Raise a DSLError carrying one coded, source-located diagnostic."""
    raise DSLError(diagnostics=(Diagnostic(code, message, span, hint),))


def _const_eval(expr: ast.Expr, env: dict) -> float | int:
    """Evaluate a structural/rate expression over constants."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Name):
        if expr.ident in env:
            v = env[expr.ident]
            if isinstance(v, (int, float)):
                return v
        _err("elab-not-constant",
             f"{expr.ident!r} is not a constant here", expr.span,
             hint="only parameters and loop indices are usable here")
    if isinstance(expr, ast.BinOp):
        a = _const_eval(expr.left, env)
        b = _const_eval(expr.right, env)
        if expr.op == "/" and isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        table = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "/": lambda: a / b, "%": lambda: a % b,
            "==": lambda: int(a == b), "!=": lambda: int(a != b),
            "<": lambda: int(a < b), "<=": lambda: int(a <= b),
            ">": lambda: int(a > b), ">=": lambda: int(a >= b),
            "&&": lambda: int(bool(a) and bool(b)),
            "||": lambda: int(bool(a) or bool(b)),
            "&": lambda: int(a) & int(b), "|": lambda: int(a) | int(b),
            "^": lambda: int(a) ^ int(b), "<<": lambda: int(a) << int(b),
            ">>": lambda: int(a) >> int(b),
        }
        return table[expr.op]()
    if isinstance(expr, ast.UnOp):
        v = _const_eval(expr.operand, env)
        return -v if expr.op == "-" else int(not v)
    if isinstance(expr, ast.CallExpr):
        if expr.fn not in _INTRINSICS:
            _err("elab-unknown-function",
                 f"unknown function {expr.fn!r}", expr.span)
        args = [_const_eval(a, env) for a in expr.args]
        return getattr(math, expr.fn, {"abs": abs, "pow": pow, "min": min,
                                       "max": max, "round": round
                                       }.get(expr.fn))(*args)
    if isinstance(expr, ast.IndexExpr):
        arr = env.get(expr.base)
        if arr is None:
            _err("elab-unknown-array",
                 f"unknown array {expr.base!r}", expr.span)
        return arr[int(_const_eval(expr.index, env))]
    _err("elab-not-constant",
         f"{type(expr).__name__} expression is not constant", expr.span)


def _fold_bin(op: str, a, b):
    """Fold a binary op over constants with the interpreter's semantics
    (C-truncating int division/remainder, int-valued comparisons)."""
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        return a / b
    if op == "%":
        if isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            return a - q * b
        return math.fmod(a, b)
    table = {
        "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
        "==": lambda: int(a == b), "!=": lambda: int(a != b),
        "<": lambda: int(a < b), "<=": lambda: int(a <= b),
        ">": lambda: int(a > b), ">=": lambda: int(a >= b),
        "&&": lambda: int(bool(a) and bool(b)),
        "||": lambda: int(bool(a) or bool(b)),
        "&": lambda: int(a) & int(b), "|": lambda: int(a) | int(b),
        "^": lambda: int(a) ^ int(b), "<<": lambda: int(a) << int(b),
        ">>": lambda: int(a) >> int(b),
    }
    return table[op]()


def _call_intrinsic(fn: str, args):
    return getattr(math, fn, {"abs": abs, "pow": pow, "min": min,
                              "max": max, "round": round}.get(fn))(*args)


def _lower_expr(expr: ast.Expr, consts: dict) -> N.Expr:
    """Lower a work-body expression to IR, folding parameter names.

    Operations whose operands are all constants fold at elaboration
    time (exactly as the Python graph builders precompute them), so
    e.g. a ``2 * dec`` loop bound costs nothing at run time and the
    FLOP accounting matches a hand-built graph op for op.
    """
    if isinstance(expr, ast.Num):
        return N.Const(expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident in consts:
            return N.Const(consts[expr.ident])
        return N.Var(expr.ident)
    if isinstance(expr, ast.BinOp):
        left = _lower_expr(expr.left, consts)
        right = _lower_expr(expr.right, consts)
        if isinstance(left, N.Const) and isinstance(right, N.Const):
            return N.Const(_fold_bin(expr.op, left.value, right.value))
        return N.Bin(expr.op, left, right)
    if isinstance(expr, ast.UnOp):
        operand = _lower_expr(expr.operand, consts)
        if isinstance(operand, N.Const):
            return N.Const(-operand.value if expr.op == "-"
                           else int(not operand.value))
        return N.Un(expr.op, operand)
    if isinstance(expr, ast.CallExpr):
        if expr.fn not in _INTRINSICS:
            _err("elab-unknown-function",
                 f"unknown function {expr.fn!r} in work body", expr.span)
        args = tuple(_lower_expr(a, consts) for a in expr.args)
        if all(isinstance(a, N.Const) for a in args):
            return N.Const(_call_intrinsic(expr.fn,
                                           [a.value for a in args]))
        return N.Call(expr.fn, args)
    if isinstance(expr, ast.IndexExpr):
        return N.Index(expr.base, _lower_expr(expr.index, consts))
    if isinstance(expr, ast.PeekExpr):
        return N.Peek(_lower_expr(expr.index, consts))
    if isinstance(expr, ast.PopExpr):
        return N.Pop()
    _err("elab-bad-expr",
         f"cannot lower {type(expr).__name__} expression", expr.span)


def _lower_stmt(stmt: ast.Stmt, consts: dict) -> N.Stmt:
    if isinstance(stmt, ast.VarDecl):
        size = None
        if stmt.size is not None:
            size = int(_const_eval(stmt.size, consts))
        init = _lower_expr(stmt.init, consts) if stmt.init is not None \
            else None
        return N.Decl(stmt.name, stmt.ty, size, init)
    if isinstance(stmt, ast.AssignStmt):
        target = _lower_expr(stmt.target, consts)
        if not isinstance(target, (N.Var, N.Index)):
            _err("elab-bad-assign", "assignment to a constant parameter",
                 stmt.span)
        value = _lower_expr(stmt.value, consts)
        if stmt.op != "=":
            value = N.Bin(_COMPOUND_OPS[stmt.op], target, value)
        return N.Assign(target, value)
    if isinstance(stmt, ast.PushStmt):
        return N.PushS(_lower_expr(stmt.value, consts))
    if isinstance(stmt, ast.PopStmt):
        return N.PopS()
    if isinstance(stmt, ast.ExprStmt):
        expr = _lower_expr(stmt.expr, consts)
        if isinstance(expr, N.Pop):
            return N.PopS()
        _err("elab-bad-stmt",
             "expression statements other than pop() are side-effect free",
             stmt.span)
    if isinstance(stmt, ast.IfStmt):
        return N.If(_lower_expr(stmt.cond, consts),
                    tuple(_lower_stmt(s, consts) for s in stmt.then),
                    tuple(_lower_stmt(s, consts) for s in stmt.orelse))
    if isinstance(stmt, ast.ForStmt):
        return N.For(stmt.var,
                     _lower_expr(stmt.start, consts),
                     _lower_expr(stmt.stop, consts),
                     tuple(_lower_stmt(s, consts) for s in stmt.body),
                     _lower_expr(stmt.step, consts))
    _err("elab-bad-stmt",
         f"statement {type(stmt).__name__} not allowed in a work body",
         stmt.span)


class _VoidChannel(Channel):
    def push(self, v):
        _err("elab-init-io", "init blocks cannot push")

    def pop(self):
        _err("elab-init-io", "init blocks cannot pop")

    def peek(self, i):
        _err("elab-init-io", "init blocks cannot peek")


class Elaborator:
    """Instantiates streams from a parsed Program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self._gensym = 0

    def instantiate(self, name: str, *args) -> Stream:
        decl = self.program.decls.get(name)
        if decl is None:
            known = ", ".join(self.program.order) or "none"
            _err("elab-unknown-stream", f"unknown stream {name!r}",
                 hint=f"declared streams: {known}")
        params = decl.params
        if len(args) != len(params):
            _err("elab-arity",
                 f"{name} expects {len(params)} argument(s), "
                 f"got {len(args)}", decl.span,
                 hint="(" + ", ".join(
                     f"{p.ty} {p.name}" for p in params) + ")")
        env = {}
        for param, arg in zip(params, args):
            if param.size is not None or isinstance(arg, (list, np.ndarray)):
                env[param.name] = np.asarray(arg, dtype=float)
            elif param.ty == "int":
                env[param.name] = int(arg)
            else:
                env[param.name] = float(arg)
        if isinstance(decl, ast.FilterDecl):
            return self._elaborate_filter(decl, env)
        return self._elaborate_composite(decl, env)

    # -- filters ------------------------------------------------------
    def _elaborate_filter(self, decl: ast.FilterDecl, env: dict) -> Filter:
        # 1. build the field store and run init in the interpreter
        fields: dict = {}
        scalar_consts = {k: v for k, v in env.items()
                         if isinstance(v, (int, float))}
        for fd in decl.fields:
            if fd.size is not None:
                size = int(_const_eval(fd.size, scalar_consts))
                fields[fd.name] = (np.zeros(size) if fd.ty == "float"
                                   else np.zeros(size, dtype=int))
            elif fd.init is not None:
                v = _const_eval(fd.init, {**scalar_consts, **fields})
                fields[fd.name] = float(v) if fd.ty == "float" else int(v)
            else:
                fields[fd.name] = 0.0 if fd.ty == "float" else 0
        # array parameters become coefficient fields
        for k, v in env.items():
            if isinstance(v, np.ndarray):
                fields[k] = v.copy()
        if decl.init:
            init_ir = tuple(_lower_stmt(s, scalar_consts)
                            for s in decl.init)
            interp = Interpreter(fields, NullProfiler())
            wf = N.WorkFunction(0, 0, 0, init_ir)
            interp.run(wf, _VoidChannel(), _VoidChannel())
        # 2. lower work functions
        work = prework = None
        for wd in decl.works:
            rates = {}
            for which, expr in (("peek", wd.peek), ("pop", wd.pop),
                                ("push", wd.push)):
                if expr is None:
                    rates[which] = 0
                    continue
                value = _const_eval(expr, scalar_consts)
                if value != int(value) or int(value) < 0:
                    _err("elab-bad-rate",
                         f"{which} rate of filter {decl.name!r} must be "
                         f"a non-negative integer, got {value!r}",
                         expr.span)
                rates[which] = int(value)
            if wd.peek is None:
                rates["peek"] = rates["pop"]
            body = tuple(_lower_stmt(s, scalar_consts) for s in wd.body)
            wf = N.WorkFunction(max(rates["peek"], rates["pop"]),
                                rates["pop"], rates["push"], body)
            if wd.kind == "work":
                work = wf
            else:
                prework = wf
        if work is None:
            _err("elab-no-work",
                 f"filter {decl.name} has no steady work", decl.span)
        mutable = N.assigned_names(work.body) & set(fields)
        if prework is not None:
            mutable |= N.assigned_names(prework.body) & set(fields)
        return Filter(decl.name, work, prework, fields,
                      frozenset(mutable))

    # -- composites -----------------------------------------------------
    def _elaborate_composite(self, decl: ast.CompositeDecl,
                             env: dict) -> Stream:
        children: list[Stream] = []
        splitter = None
        join_weights = None
        body_stream = None
        loop_stream = None
        enqueued: list[float] = []
        scalars = dict(env)

        def run_body(stmts):
            nonlocal splitter, join_weights, body_stream, loop_stream
            for stmt in stmts:
                if isinstance(stmt, ast.AddStmt):
                    args = [_const_eval(a, scalars) for a in stmt.args]
                    children.append(self.instantiate(stmt.stream, *args))
                elif isinstance(stmt, ast.SplitDecl):
                    if stmt.kind == "duplicate":
                        splitter = Duplicate()
                    else:
                        splitter = RoundRobin(
                            _weights(stmt, scalars, "split"))
                elif isinstance(stmt, ast.JoinDecl):
                    join_weights = _weights(stmt, scalars, "join")
                elif isinstance(stmt, ast.BodyDecl):
                    args = [_const_eval(a, scalars) for a in stmt.args]
                    body_stream = self.instantiate(stmt.stream, *args)
                elif isinstance(stmt, ast.LoopDecl):
                    args = [_const_eval(a, scalars) for a in stmt.args]
                    loop_stream = self.instantiate(stmt.stream, *args)
                elif isinstance(stmt, ast.EnqueueStmt):
                    enqueued.append(float(_const_eval(stmt.value, scalars)))
                elif isinstance(stmt, ast.ForStmt):
                    i = _const_eval(stmt.start, scalars)
                    step = _const_eval(stmt.step, scalars)
                    while (i < _const_eval(stmt.stop, scalars)
                           if step > 0 else
                           i > _const_eval(stmt.stop, scalars)):
                        scalars[stmt.var] = i
                        run_body(stmt.body)
                        i = scalars[stmt.var] + step
                    scalars[stmt.var] = i
                elif isinstance(stmt, ast.IfStmt):
                    if _const_eval(stmt.cond, scalars):
                        run_body(stmt.then)
                    else:
                        run_body(stmt.orelse)
                elif isinstance(stmt, ast.VarDecl):
                    v = _const_eval(stmt.init, scalars) \
                        if stmt.init is not None else 0
                    scalars[stmt.name] = int(v) if stmt.ty == "int" \
                        else float(v)
                elif isinstance(stmt, ast.AssignStmt):
                    if not isinstance(stmt.target, ast.Name):
                        _err("elab-bad-stmt",
                             "structural assignment must be to a scalar",
                             stmt.span)
                    v = _const_eval(stmt.value, scalars)
                    if stmt.op != "=":
                        base = scalars[stmt.target.ident]
                        v = _const_eval(
                            ast.BinOp(_COMPOUND_OPS[stmt.op],
                                      ast.Num(base), ast.Num(v)), {})
                    scalars[stmt.target.ident] = v
                else:
                    _err("elab-bad-stmt",
                         f"{type(stmt).__name__} not allowed in a "
                         f"{decl.kind} body", stmt.span)

        run_body(decl.body)

        if decl.kind == "pipeline":
            if not children:
                _err("elab-empty-pipeline",
                     f"pipeline {decl.name} adds no streams", decl.span)
            return Pipeline(children, name=decl.name)
        if decl.kind == "splitjoin":
            if splitter is None or join_weights is None:
                _err("elab-missing-split-join",
                     f"splitjoin {decl.name} needs split and join",
                     decl.span)
            if len(join_weights) == 1 and len(children) > 1:
                join_weights = tuple([join_weights[0]] * len(children))
            if isinstance(splitter, RoundRobin) and \
                    len(splitter.weights) == 1 and len(children) > 1:
                splitter = RoundRobin(
                    tuple([splitter.weights[0]] * len(children)))
            return SplitJoin(splitter, children, RoundRobin(join_weights),
                             name=decl.name)
        # feedbackloop
        if body_stream is None or loop_stream is None or \
                join_weights is None or splitter is None:
            _err("elab-missing-split-join",
                 f"feedbackloop {decl.name} needs join, body, "
                 f"loop and split", decl.span)
        if isinstance(splitter, Duplicate):
            _err("elab-bad-splitter",
                 "feedbackloop splitter must be roundrobin", decl.span)
        return FeedbackLoop(body_stream, loop_stream,
                            RoundRobin(join_weights),
                            RoundRobin(splitter.weights), enqueued,
                            name=decl.name)


def _weights(stmt, scalars, which: str) -> tuple[int, ...]:
    """Const-eval roundrobin weights, validating positive integers."""
    out = []
    for w in stmt.weights:
        value = _const_eval(w, scalars)
        if value != int(value) or int(value) < 0:
            _err("elab-bad-rate",
                 f"{which} roundrobin weight must be a non-negative "
                 f"integer, got {value!r}", w.span)
        out.append(int(value))
    return tuple(out) or (1,)


def compile_source(source: str, top: str | None = None, *args) -> Stream:
    """Parse + elaborate DSL source; instantiate ``top`` (or the last
    declared stream) with ``args``.

    Elaboration errors surface as :class:`DSLError` with the source
    text attached, so ``e.render()`` shows caret snippets.
    """
    program = parse(source)
    if not program.order:
        raise DSLError(diagnostics=(
            Diagnostic("elab-empty-program",
                       "no stream declarations found"),), source=source)
    elab = Elaborator(program)
    try:
        return elab.instantiate(
            top if top is not None else program.order[-1], *args)
    except DSLError as e:
        if e.source is None:
            e.source = source
        raise
