"""Elaboration: DSL AST -> stream graphs with IR work functions.

Filters instantiate with concrete parameter values: field initializers and
``init`` blocks run in the concrete interpreter (exactly how StreamIt
resolves coefficients at compile time), work-function bodies lower to the
IR, and I/O rates are constant-folded.  Composite bodies (pipelines,
splitjoins, feedbackloops) are structural programs over constants: ``add``
statements, ``for`` loops, and ``if`` over parameters execute at
elaboration time.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DSLError
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             RoundRobin, SplitJoin, Stream)
from ..ir import nodes as N
from ..ir.interp import Interpreter
from ..runtime.channels import Channel
from ..profiling import NullProfiler
from . import ast
from .parser import parse

_INTRINSICS = {"sin", "cos", "tan", "atan", "atan2", "exp", "log", "sqrt",
               "abs", "floor", "ceil", "pow", "min", "max", "round"}

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}


def _const_eval(expr: ast.Expr, env: dict) -> float | int:
    """Evaluate a structural/rate expression over constants."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Name):
        if expr.ident in env:
            v = env[expr.ident]
            if isinstance(v, (int, float)):
                return v
        raise DSLError(f"{expr.ident!r} is not a constant here")
    if isinstance(expr, ast.BinOp):
        a = _const_eval(expr.left, env)
        b = _const_eval(expr.right, env)
        if expr.op == "/" and isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        table = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "/": lambda: a / b, "%": lambda: a % b,
            "==": lambda: int(a == b), "!=": lambda: int(a != b),
            "<": lambda: int(a < b), "<=": lambda: int(a <= b),
            ">": lambda: int(a > b), ">=": lambda: int(a >= b),
            "&&": lambda: int(bool(a) and bool(b)),
            "||": lambda: int(bool(a) or bool(b)),
            "&": lambda: int(a) & int(b), "|": lambda: int(a) | int(b),
            "^": lambda: int(a) ^ int(b), "<<": lambda: int(a) << int(b),
            ">>": lambda: int(a) >> int(b),
        }
        return table[expr.op]()
    if isinstance(expr, ast.UnOp):
        v = _const_eval(expr.operand, env)
        return -v if expr.op == "-" else int(not v)
    if isinstance(expr, ast.CallExpr):
        if expr.fn not in _INTRINSICS:
            raise DSLError(f"unknown function {expr.fn!r}")
        args = [_const_eval(a, env) for a in expr.args]
        return getattr(math, expr.fn, {"abs": abs, "pow": pow, "min": min,
                                       "max": max, "round": round
                                       }.get(expr.fn))(*args)
    if isinstance(expr, ast.IndexExpr):
        arr = env.get(expr.base)
        if arr is None:
            raise DSLError(f"unknown array {expr.base!r}")
        return arr[int(_const_eval(expr.index, env))]
    raise DSLError(f"expression is not constant: {expr!r}")


def _lower_expr(expr: ast.Expr, consts: dict) -> N.Expr:
    """Lower a work-body expression to IR, folding parameter names."""
    if isinstance(expr, ast.Num):
        return N.Const(expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident in consts:
            return N.Const(consts[expr.ident])
        return N.Var(expr.ident)
    if isinstance(expr, ast.BinOp):
        return N.Bin(expr.op, _lower_expr(expr.left, consts),
                     _lower_expr(expr.right, consts))
    if isinstance(expr, ast.UnOp):
        if expr.op == "-":
            return N.Un("-", _lower_expr(expr.operand, consts))
        return N.Un("!", _lower_expr(expr.operand, consts))
    if isinstance(expr, ast.CallExpr):
        if expr.fn not in _INTRINSICS:
            raise DSLError(f"unknown function {expr.fn!r} in work body")
        return N.Call(expr.fn,
                      tuple(_lower_expr(a, consts) for a in expr.args))
    if isinstance(expr, ast.IndexExpr):
        return N.Index(expr.base, _lower_expr(expr.index, consts))
    if isinstance(expr, ast.PeekExpr):
        return N.Peek(_lower_expr(expr.index, consts))
    if isinstance(expr, ast.PopExpr):
        return N.Pop()
    raise DSLError(f"cannot lower expression {expr!r}")


def _lower_stmt(stmt: ast.Stmt, consts: dict) -> N.Stmt:
    if isinstance(stmt, ast.VarDecl):
        size = None
        if stmt.size is not None:
            size = int(_const_eval(stmt.size, consts))
        init = _lower_expr(stmt.init, consts) if stmt.init is not None \
            else None
        return N.Decl(stmt.name, stmt.ty, size, init)
    if isinstance(stmt, ast.AssignStmt):
        target = _lower_expr(stmt.target, consts)
        if not isinstance(target, (N.Var, N.Index)):
            raise DSLError("assignment to a constant parameter")
        value = _lower_expr(stmt.value, consts)
        if stmt.op != "=":
            value = N.Bin(_COMPOUND_OPS[stmt.op], target, value)
        return N.Assign(target, value)
    if isinstance(stmt, ast.PushStmt):
        return N.PushS(_lower_expr(stmt.value, consts))
    if isinstance(stmt, ast.PopStmt):
        return N.PopS()
    if isinstance(stmt, ast.ExprStmt):
        expr = _lower_expr(stmt.expr, consts)
        if isinstance(expr, N.Pop):
            return N.PopS()
        raise DSLError("expression statements other than pop() are "
                       "side-effect free")
    if isinstance(stmt, ast.IfStmt):
        return N.If(_lower_expr(stmt.cond, consts),
                    tuple(_lower_stmt(s, consts) for s in stmt.then),
                    tuple(_lower_stmt(s, consts) for s in stmt.orelse))
    if isinstance(stmt, ast.ForStmt):
        return N.For(stmt.var,
                     _lower_expr(stmt.start, consts),
                     _lower_expr(stmt.stop, consts),
                     tuple(_lower_stmt(s, consts) for s in stmt.body),
                     _lower_expr(stmt.step, consts))
    raise DSLError(f"statement {type(stmt).__name__} not allowed in a "
                   f"work body")


class _VoidChannel(Channel):
    def push(self, v):
        raise DSLError("init blocks cannot push")

    def pop(self):
        raise DSLError("init blocks cannot pop")

    def peek(self, i):
        raise DSLError("init blocks cannot peek")


class Elaborator:
    """Instantiates streams from a parsed Program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self._gensym = 0

    def instantiate(self, name: str, *args) -> Stream:
        decl = self.program.decls.get(name)
        if decl is None:
            raise DSLError(f"unknown stream {name!r}")
        params = decl.params
        if len(args) != len(params):
            raise DSLError(
                f"{name} expects {len(params)} arguments, got {len(args)}")
        env = {}
        for param, arg in zip(params, args):
            if param.size is not None or isinstance(arg, (list, np.ndarray)):
                env[param.name] = np.asarray(arg, dtype=float)
            elif param.ty == "int":
                env[param.name] = int(arg)
            else:
                env[param.name] = float(arg)
        if isinstance(decl, ast.FilterDecl):
            return self._elaborate_filter(decl, env)
        return self._elaborate_composite(decl, env)

    # -- filters ------------------------------------------------------
    def _elaborate_filter(self, decl: ast.FilterDecl, env: dict) -> Filter:
        # 1. build the field store and run init in the interpreter
        fields: dict = {}
        scalar_consts = {k: v for k, v in env.items()
                         if isinstance(v, (int, float))}
        for fd in decl.fields:
            if fd.size is not None:
                size = int(_const_eval(fd.size, scalar_consts))
                fields[fd.name] = (np.zeros(size) if fd.ty == "float"
                                   else np.zeros(size, dtype=int))
            elif fd.init is not None:
                v = _const_eval(fd.init, {**scalar_consts, **fields})
                fields[fd.name] = float(v) if fd.ty == "float" else int(v)
            else:
                fields[fd.name] = 0.0 if fd.ty == "float" else 0
        # array parameters become coefficient fields
        for k, v in env.items():
            if isinstance(v, np.ndarray):
                fields[k] = v.copy()
        if decl.init:
            init_ir = tuple(_lower_stmt(s, scalar_consts)
                            for s in decl.init)
            interp = Interpreter(fields, NullProfiler())
            wf = N.WorkFunction(0, 0, 0, init_ir)
            interp.run(wf, _VoidChannel(), _VoidChannel())
        # 2. lower work functions
        work = prework = None
        for wd in decl.works:
            rates = {}
            for which, expr in (("peek", wd.peek), ("pop", wd.pop),
                                ("push", wd.push)):
                rates[which] = 0 if expr is None else \
                    int(_const_eval(expr, scalar_consts))
            if wd.peek is None:
                rates["peek"] = rates["pop"]
            body = tuple(_lower_stmt(s, scalar_consts) for s in wd.body)
            wf = N.WorkFunction(max(rates["peek"], rates["pop"]),
                                rates["pop"], rates["push"], body)
            if wd.kind == "work":
                work = wf
            else:
                prework = wf
        if work is None:
            raise DSLError(f"filter {decl.name} has no steady work")
        mutable = N.assigned_names(work.body) & set(fields)
        if prework is not None:
            mutable |= N.assigned_names(prework.body) & set(fields)
        return Filter(decl.name, work, prework, fields,
                      frozenset(mutable))

    # -- composites -----------------------------------------------------
    def _elaborate_composite(self, decl: ast.CompositeDecl,
                             env: dict) -> Stream:
        children: list[Stream] = []
        splitter = None
        join_weights = None
        body_stream = None
        loop_stream = None
        enqueued: list[float] = []
        scalars = dict(env)

        def run_body(stmts):
            nonlocal splitter, join_weights, body_stream, loop_stream
            for stmt in stmts:
                if isinstance(stmt, ast.AddStmt):
                    args = [_const_eval(a, scalars) for a in stmt.args]
                    children.append(self.instantiate(stmt.stream, *args))
                elif isinstance(stmt, ast.SplitDecl):
                    if stmt.kind == "duplicate":
                        splitter = Duplicate()
                    else:
                        splitter = RoundRobin(tuple(
                            int(_const_eval(w, scalars))
                            for w in stmt.weights) or (1,))
                elif isinstance(stmt, ast.JoinDecl):
                    join_weights = tuple(int(_const_eval(w, scalars))
                                         for w in stmt.weights) or (1,)
                elif isinstance(stmt, ast.BodyDecl):
                    args = [_const_eval(a, scalars) for a in stmt.args]
                    body_stream = self.instantiate(stmt.stream, *args)
                elif isinstance(stmt, ast.LoopDecl):
                    args = [_const_eval(a, scalars) for a in stmt.args]
                    loop_stream = self.instantiate(stmt.stream, *args)
                elif isinstance(stmt, ast.EnqueueStmt):
                    enqueued.append(float(_const_eval(stmt.value, scalars)))
                elif isinstance(stmt, ast.ForStmt):
                    i = _const_eval(stmt.start, scalars)
                    step = _const_eval(stmt.step, scalars)
                    while (i < _const_eval(stmt.stop, scalars)
                           if step > 0 else
                           i > _const_eval(stmt.stop, scalars)):
                        scalars[stmt.var] = i
                        run_body(stmt.body)
                        i = scalars[stmt.var] + step
                    scalars[stmt.var] = i
                elif isinstance(stmt, ast.IfStmt):
                    if _const_eval(stmt.cond, scalars):
                        run_body(stmt.then)
                    else:
                        run_body(stmt.orelse)
                elif isinstance(stmt, ast.VarDecl):
                    v = _const_eval(stmt.init, scalars) \
                        if stmt.init is not None else 0
                    scalars[stmt.name] = int(v) if stmt.ty == "int" \
                        else float(v)
                elif isinstance(stmt, ast.AssignStmt):
                    if not isinstance(stmt.target, ast.Name):
                        raise DSLError("structural assignment must be to a "
                                       "scalar")
                    v = _const_eval(stmt.value, scalars)
                    if stmt.op != "=":
                        base = scalars[stmt.target.ident]
                        v = _const_eval(
                            ast.BinOp(_COMPOUND_OPS[stmt.op],
                                      ast.Num(base), ast.Num(v)), {})
                    scalars[stmt.target.ident] = v
                else:
                    raise DSLError(
                        f"{type(stmt).__name__} not allowed in a "
                        f"{decl.kind} body")

        run_body(decl.body)

        if decl.kind == "pipeline":
            if not children:
                raise DSLError(f"pipeline {decl.name} adds no streams")
            return Pipeline(children, name=decl.name)
        if decl.kind == "splitjoin":
            if splitter is None or join_weights is None:
                raise DSLError(
                    f"splitjoin {decl.name} needs split and join")
            if len(join_weights) == 1 and len(children) > 1:
                join_weights = tuple([join_weights[0]] * len(children))
            if isinstance(splitter, RoundRobin) and \
                    len(splitter.weights) == 1 and len(children) > 1:
                splitter = RoundRobin(
                    tuple([splitter.weights[0]] * len(children)))
            return SplitJoin(splitter, children, RoundRobin(join_weights),
                             name=decl.name)
        # feedbackloop
        if body_stream is None or loop_stream is None or \
                join_weights is None or splitter is None:
            raise DSLError(f"feedbackloop {decl.name} needs join, body, "
                           f"loop and split")
        if isinstance(splitter, Duplicate):
            raise DSLError("feedbackloop splitter must be roundrobin")
        return FeedbackLoop(body_stream, loop_stream,
                            RoundRobin(join_weights),
                            RoundRobin(splitter.weights), enqueued,
                            name=decl.name)


def compile_source(source: str, top: str | None = None, *args) -> Stream:
    """Parse + elaborate DSL source; instantiate ``top`` (or the last
    declared stream) with ``args``."""
    program = parse(source)
    if not program.order:
        raise DSLError("no stream declarations found")
    elab = Elaborator(program)
    return elab.instantiate(top if top is not None else program.order[-1],
                            *args)
