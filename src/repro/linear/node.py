"""The linear node representation (thesis §3.1, Definition 1).

A linear node ``Λ = {A, b, e, o, u}`` abstracts a stream block computing the
affine map ``y = x·A + b`` where

* ``x`` is an ``e``-element row vector with ``x[i] = peek(e-1-i)``,
* ``A`` is an ``e × u`` matrix, ``b`` a ``u``-element row vector,
* the ``u`` outputs are pushed starting with ``y[u-1]`` down to ``y[0]``
  (so the *j*-th ``push`` statement writes column ``u-1-j``), and
* ``o`` items are popped after pushing.

Hence entry ``A[e-1-i, u-1-j]`` is the coefficient of ``peek(i)`` in the
*j*-th output and ``b[u-1-j]`` its constant offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinearNode:
    """An affine stream block ``y = x·A + b`` with rates (peek, pop, push)."""

    A: np.ndarray
    b: np.ndarray
    peek: int
    pop: int
    push: int

    def __post_init__(self):
        A = np.asarray(self.A, dtype=float)
        b = np.asarray(self.b, dtype=float)
        object.__setattr__(self, "A", A)
        object.__setattr__(self, "b", b)
        if A.shape != (self.peek, self.push):
            raise ValueError(
                f"A has shape {A.shape}, expected ({self.peek}, {self.push})")
        if b.shape != (self.push,):
            raise ValueError(
                f"b has shape {b.shape}, expected ({self.push},)")
        if self.pop <= 0:
            raise ValueError("linear node must pop at least one item")
        if self.peek < self.pop:
            raise ValueError("peek must be >= pop")

    # ------------------------------------------------------------------
    @staticmethod
    def from_coefficients(coeffs_per_push, offsets, pop: int,
                          peek: int | None = None) -> "LinearNode":
        """Build from natural per-push coefficient lists.

        ``coeffs_per_push[j][i]`` is the coefficient of ``peek(i)`` in the
        *j*-th pushed value; ``offsets[j]`` its constant term.  This is the
        human-friendly layout; the constructor converts to the thesis'
        reversed convention.
        """
        u = len(coeffs_per_push)
        if peek is None:
            peek = max((len(c) for c in coeffs_per_push), default=pop)
            peek = max(peek, pop)
        A = np.zeros((peek, u))
        for j, coeffs in enumerate(coeffs_per_push):
            for i, c in enumerate(coeffs):
                A[peek - 1 - i, u - 1 - j] = c
        b = np.zeros(u)
        for j, off in enumerate(offsets):
            b[u - 1 - j] = off
        return LinearNode(A, b, peek, pop, u)

    # ------------------------------------------------------------------
    def coefficient(self, push_index: int, peek_index: int) -> float:
        """Coefficient of ``peek(peek_index)`` in push number ``push_index``."""
        return float(self.A[self.peek - 1 - peek_index,
                            self.push - 1 - push_index])

    def offset(self, push_index: int) -> float:
        return float(self.b[self.push - 1 - push_index])

    def apply(self, window: np.ndarray) -> np.ndarray:
        """One firing: ``window`` is ``[peek(0), ..., peek(e-1)]``.

        Returns outputs in push order ``[y_0, ..., y_{u-1}]``.
        """
        window = np.asarray(window, dtype=float)
        if window.shape != (self.peek,):
            raise ValueError(f"window must have {self.peek} items")
        x = window[::-1]  # x[i] = peek(e-1-i)
        y = x @ self.A + self.b
        return y[::-1]  # y[u-1] is pushed first

    def reference_run(self, inputs, firings: int) -> np.ndarray:
        """Run ``firings`` firings over ``inputs``; concatenated outputs.

        A straightforward oracle used by tests and the frequency/redundancy
        modules to validate optimized implementations.
        """
        inputs = np.asarray(inputs, dtype=float)
        out = []
        pos = 0
        for _ in range(firings):
            window = inputs[pos:pos + self.peek]
            if len(window) < self.peek:
                raise ValueError("not enough input for requested firings")
            out.append(self.apply(window))
            pos += self.pop
        return np.concatenate(out) if out else np.zeros(0)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Non-zero entries of A (drives the direct cost function)."""
        return int(np.count_nonzero(self.A))

    @property
    def nnz_b(self) -> int:
        return int(np.count_nonzero(self.b))

    def column_spans(self) -> list[tuple[int, int]]:
        """Per column (first_nonzero, last_nonzero+1); (0, 0) if all-zero.

        The direct matrix-multiply code generator skips leading/trailing
        zeros in each column (thesis §5.4, Figure 5-7).
        """
        spans = []
        for j in range(self.push):
            nz = np.nonzero(self.A[:, j])[0]
            if len(nz) == 0:
                spans.append((0, 0))
            else:
                spans.append((int(nz[0]), int(nz[-1]) + 1))
        return spans

    def is_convolution_compatible(self) -> bool:
        """True if the frequency transformation applies (always, via the
        pretend-pop-1 + decimator trick), kept for cost-model gating."""
        return self.peek >= 1

    def __str__(self):
        return (f"LinearNode(e={self.peek}, o={self.pop}, u={self.push}, "
                f"nnz={self.nnz})")
