"""Runtime filters implementing collapsed linear nodes.

``LinearFilter`` replaces a (sub)graph with a single matrix-multiply leaf —
what the paper calls *linear replacement*.  It carries its ``LinearNode``
so later passes (further combination, frequency replacement, the DP
selector) can keep reasoning about it.
"""

from __future__ import annotations

import numpy as np

from ..graph.streams import PrimitiveFilter
from .matmul import make_kernel
from .node import LinearNode


class LinearFilter(PrimitiveFilter):
    """A leaf filter executing ``y = x·A + b`` once per firing."""

    def __init__(self, node: LinearNode, name: str = "Linear",
                 backend: str = "direct"):
        self.linear_node = node
        self.name = name
        self.backend = backend
        self.peek = node.peek
        self.pop = node.pop
        self.push = node.push

    def make_runner(self, profiler):
        node = self.linear_node
        kernel = make_kernel(node, self.backend)
        counts = kernel.counts
        name = self.name

        class _Runner:
            def fire(self, ch_in, ch_out):
                window = ch_in.peek_block(node.peek)
                y = kernel.fire_window(window)
                ch_out.push_array(y)
                ch_in.pop_block(node.pop)
                profiler.add_counts(counts, filter_name=name)

        return _Runner()


class ConstantSourceFilter(PrimitiveFilter):
    """Pushes a fixed vector each firing (a linear node with e = o = 0).

    Used when an entire subgraph folds to constants; kept for completeness
    of the replacement machinery.
    """

    pop = 0
    peek = 0

    def __init__(self, values, name: str = "ConstSource"):
        self.values = np.asarray(values, dtype=float)
        self.push = len(self.values)
        self.name = name

    def make_runner(self, profiler):
        values = self.values

        class _Runner:
            def fire(self, ch_in, ch_out):
                ch_out.push_array(values)

        return _Runner()
