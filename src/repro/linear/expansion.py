"""Linear expansion (thesis §3.3.1, Transformation 1).

Expansion rescales a linear node to rates ``(e', o', u')`` while preserving
the input/output relationship: copies of ``A`` are placed along the
diagonal starting from the bottom-right corner, each copy offset by ``o``
rows (items popped between firings) and ``u`` columns (items pushed).
Partial copies are clipped at the matrix edges; rows that no copy reaches
stay zero (items peeked but unused).
"""

from __future__ import annotations

import math

import numpy as np

from .node import LinearNode


def expand(node: LinearNode, peek: int, pop: int, push: int) -> LinearNode:
    """Expand ``node`` to rates ``(peek, pop, push)``.

    The new node is fully interchangeable with a sequence of firings of the
    original when ``push = k*u`` and ``pop = k*o``; other rates are used as
    intermediate forms by the combination rules (which account for the
    recomputation they introduce).
    """
    e, o, u = node.peek, node.pop, node.push
    A, b = node.A, node.b
    e2, o2, u2 = peek, pop, push
    A2 = np.zeros((e2, u2))
    copies = math.ceil(u2 / u)
    for m in range(copies):
        row_off = e2 - e - m * o
        col_off = u2 - u - m * u
        # clip the copy of A to the destination bounds
        r0, r1 = max(row_off, 0), min(row_off + e, e2)
        c0, c1 = max(col_off, 0), min(col_off + u, u2)
        if r0 >= r1 or c0 >= c1:
            continue
        A2[r0:r1, c0:c1] += A[r0 - row_off:r1 - row_off,
                              c0 - col_off:c1 - col_off]
    b2 = np.empty(u2)
    for j in range(u2):
        b2[j] = b[u - 1 - ((u2 - 1 - j) % u)]
    return LinearNode(A2, b2, e2, o2, u2)


def expand_firings(node: LinearNode, k: int) -> LinearNode:
    """Expand to exactly ``k`` consecutive firings (fully interchangeable)."""
    if k < 1:
        raise ValueError("k must be positive")
    e, o, u = node.peek, node.pop, node.push
    return expand(node, e + (k - 1) * o, k * o, k * u)
