"""Splitjoin combination (thesis §3.3.3, Transformations 3 and 4).

Duplicate-splitter splitjoins of linear children collapse by (1) expanding
each child to its multiplicity in the steady state of the construct,
(2) padding all children to a common peek depth, and (3) interleaving the
children's columns in the order dictated by the roundrobin joiner.

Roundrobin-splitter splitjoins are first rewritten to duplicate splitters
by composing each child with a *decimator* linear node that keeps only the
items its branch would have received.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import CombinationError
from ..graph.streams import Duplicate, RoundRobin
from .expansion import expand
from .node import LinearNode
from .pipeline_comb import combine_pipeline_pair


def combine_duplicate_splitjoin(children: list[LinearNode],
                                join_weights: list[int]) -> LinearNode:
    """Collapse a duplicate splitjoin of linear children (Transformation 3)."""
    n = len(children)
    if n != len(join_weights):
        raise CombinationError("one joiner weight per child required")
    if any(w <= 0 for w in join_weights):
        raise CombinationError("joiner weights must be positive")

    # joinRep: joiner cycles per steady state of the splitjoin
    join_rep = 1
    for child, w in zip(children, join_weights):
        join_rep = math.lcm(join_rep, math.lcm(child.push, w) // w)
    reps = [w * join_rep // child.push
            for child, w in zip(children, join_weights)]
    for child, w, rep in zip(children, join_weights, reps):
        if rep * child.push != w * join_rep:
            raise CombinationError("child push rate does not divide evenly")

    max_peek = max(c.pop * r + c.peek - c.pop
                   for c, r in zip(children, reps))
    expanded = [expand(c, max_peek, c.pop * r, c.push * r)
                for c, r in zip(children, reps)]

    pops = {c.pop for c in expanded}
    if len(pops) != 1:
        raise CombinationError(
            f"children consume at different rates {sorted(pops)}; "
            f"the splitjoin admits no steady-state schedule")

    w_total = sum(join_weights)
    w_prefix = np.concatenate([[0], np.cumsum(join_weights)])
    u_out = join_rep * w_total

    A = np.zeros((max_peek, u_out))
    b = np.zeros(u_out)
    for k, (node, w) in enumerate(zip(expanded, join_weights)):
        for p in range(node.push):
            cycle, offset = divmod(p, w)
            position = cycle * w_total + int(w_prefix[k]) + offset
            A[:, u_out - 1 - position] = node.A[:, node.push - 1 - p]
            b[u_out - 1 - position] = node.b[node.push - 1 - p]
    return LinearNode(A, b, max_peek, expanded[0].pop, u_out)


def decimator_node(split_weights: list[int], k: int) -> LinearNode:
    """The decimator for branch ``k`` of a roundrobin splitter.

    Consumes one full splitter cycle (``vTot`` items) and re-emits only the
    ``v_k`` items destined for branch ``k`` (Transformation 4).
    """
    v_total = sum(split_weights)
    v_prefix = [0]
    for w in split_weights:
        v_prefix.append(v_prefix[-1] + w)
    vk = split_weights[k]
    if vk <= 0:
        raise CombinationError("splitter weights must be positive")
    A = np.zeros((v_total, vk))
    # pushed item p (0-based) copies peek(vSum_k + p); column vk-1-p.
    for p in range(vk):
        peek_pos = v_prefix[k] + p
        A[v_total - 1 - peek_pos, vk - 1 - p] = 1.0
    return LinearNode(A, np.zeros(vk), v_total, v_total, vk)


def roundrobin_to_duplicate(children: list[LinearNode],
                            split_weights: list[int]) -> list[LinearNode]:
    """Rewrite roundrobin-splitter children for a duplicate splitter.

    Each child is prefixed with its branch decimator via pipeline
    combination (Transformation 4).
    """
    if len(children) != len(split_weights):
        raise CombinationError("one splitter weight per child required")
    return [combine_pipeline_pair(decimator_node(split_weights, k), child)
            for k, child in enumerate(children)]


def combine_splitjoin(splitter, children: list[LinearNode],
                      joiner: RoundRobin) -> LinearNode:
    """Collapse any linear splitjoin into a single linear node."""
    weights = list(joiner.weights)
    if isinstance(splitter, Duplicate):
        return combine_duplicate_splitjoin(children, weights)
    rewritten = roundrobin_to_duplicate(children, list(splitter.weights))
    return combine_duplicate_splitjoin(rewritten, weights)
