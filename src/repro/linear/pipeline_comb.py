"""Pipeline combination (thesis §3.3.2, Transformation 2).

Two adjacent linear nodes Λ1 → Λ2 collapse into one node with
``A' = A1ᵉ·A2ᵉ`` and ``b' = b1ᵉ·A2ᵉ + b2ᵉ`` after expanding both sides so
the intermediate channel rates match:

* ``chanPop  = lcm(u1, o2)`` — items crossing the channel per combined
  firing (any common multiple is legal; the lcm keeps matrices small),
* ``chanPeek = chanPop + e2 - o2`` — extra items Λ2 peeks are *recomputed*
  by the expanded Λ1 (overlapping outputs), trading computation for the
  inter-filter buffer a linear node cannot hold.
"""

from __future__ import annotations

import math

from ..errors import CombinationError
from .expansion import expand
from .node import LinearNode


def combine_pipeline_pair(n1: LinearNode, n2: LinearNode,
                          chan_pop: int | None = None) -> LinearNode:
    """Collapse two linear nodes connected in a pipeline."""
    u1, o1, e1 = n1.push, n1.pop, n1.peek
    u2, o2, e2 = n2.push, n2.pop, n2.peek
    if chan_pop is None:
        chan_pop = math.lcm(u1, o2)
    else:
        if chan_pop % u1 or chan_pop % o2:
            raise CombinationError(
                f"chanPop={chan_pop} must be a common multiple of "
                f"u1={u1} and o2={o2}")
    chan_peek = chan_pop + e2 - o2

    # Expand Λ1 to produce chanPeek items (the extra e2-o2 items Λ2 peeks
    # are regenerated each firing); it pops the inputs for chanPop outputs.
    firings_needed = math.ceil(chan_peek / u1)
    e1_exp = (firings_needed - 1) * o1 + e1
    o1_exp = (chan_pop // u1) * o1
    n1e = expand(n1, e1_exp, o1_exp, chan_peek)

    # Expand Λ2 to consume chanPeek (peeking) / chanPop (popping).
    u2_exp = (chan_pop // o2) * u2
    n2e = expand(n2, chan_peek, chan_pop, u2_exp)

    A = n1e.A @ n2e.A
    b = n1e.b @ n2e.A + n2e.b
    return LinearNode(A, b, n1e.peek, n1e.pop, n2e.push)


def combine_pipeline(nodes: list[LinearNode]) -> LinearNode:
    """Collapse a whole pipeline of linear nodes, left to right."""
    if not nodes:
        raise CombinationError("empty pipeline")
    acc = nodes[0]
    for node in nodes[1:]:
        acc = combine_pipeline_pair(acc, node)
    return acc
