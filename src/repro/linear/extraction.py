"""Linear extraction: dataflow analysis over work-function IR.

Implements the thesis' Algorithms 1 and 2 (§3.2): a flow-sensitive forward
symbolic execution that tracks, for every program variable, a linear form
``(v, c)`` meaning *value = x·v + c* in terms of the input items.  All loop
iterations are executed symbolically (loop bounds in filter work functions
are small compile-time constants); branches on non-constant conditions are
executed on both sides and joined with the confluence operator.

Deviations from the thesis pseudocode, both conservative:

* Branch conditions that evaluate to constants take the known side only
  (strictly more precise, identical soundness).
* Filter fields that ``work`` never writes are treated as compile-time
  constants (the values computed by ``init``); fields written in ``work``
  are persistent state and evaluate to ⊤, exactly as the thesis requires.

On success, extraction yields the filter's :class:`LinearNode`; on failure
it records a human-readable reason (`ExtractionResult.reason`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import NonLinearError
from ..graph.streams import Filter, PrimitiveFilter, Stream
from ..ir import nodes as N
from .lattice import BOTTOM, TOP, LinearForm, join, join_env
from .node import LinearNode

_MAX_SYMBOLIC_ITERS = 1_000_000

_FOLDABLE = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan, "atan": math.atan,
    "atan2": math.atan2, "exp": math.exp, "log": math.log,
    "sqrt": math.sqrt, "abs": abs, "floor": math.floor,
    "ceil": math.ceil, "pow": pow, "min": min, "max": max, "round": round,
}


@dataclass
class _State:
    """Mutable symbolic execution state (Algorithm 2's tuple)."""

    env: dict  # variable -> LinearForm | TOP | array (list of values)
    A: list  # peek x push entries, LinearForm coefficients or BOTTOM/TOP
    b: list
    popcount: int
    pushcount: int

    def copy(self) -> "_State":
        env = {}
        for k, v in self.env.items():
            env[k] = list(v) if isinstance(v, list) else v
        return _State(env, [col[:] for col in self.A], self.b[:],
                      self.popcount, self.pushcount)


class _Extractor:
    def __init__(self, filt: Filter):
        self.filt = filt
        wf = filt.work
        self.peek_rate = wf.peek
        self.pop_rate = wf.pop
        self.push_rate = wf.push
        #: length of every LinearForm vector; the stateful extractor
        #: appends one extra component per scalar of persistent state
        self.vec_dim = wf.peek
        self.iters = 0

    # -- helpers -----------------------------------------------------------
    def fail(self, reason: str):
        raise NonLinearError(reason)

    def const(self, c) -> LinearForm:
        return LinearForm.constant(c, self.vec_dim)

    def _input_coeff(self, pos: int) -> LinearForm:
        """Coefficient 1 for input item ``peek(pos)`` (x-convention)."""
        v = np.zeros(self.vec_dim)
        v[self.peek_rate - 1 - pos] = 1.0
        return LinearForm(v, 0)

    def _field_value(self, name: str):
        """Constant fields fold to their values; mutable fields are ⊤."""
        if name in self.filt.mutable_fields:
            return TOP
        return self.filt.fields.get(name, None)

    # -- expression evaluation (Algorithm 2's cases) -----------------------
    def eval(self, e: N.Expr, st: _State):
        if isinstance(e, N.Const):
            return self.const(e.value)
        if isinstance(e, N.Var):
            if e.name in st.env:
                return st.env[e.name]
            fv = self._field_value(e.name)
            if fv is TOP:
                return TOP
            if fv is None:
                self.fail(f"undefined variable {e.name!r}")
            if isinstance(fv, np.ndarray):
                self.fail(f"array {e.name!r} used as a scalar")
            return self.const(fv)
        if isinstance(e, N.Index):
            idx = self._const_int(self.eval(e.index, st),
                                  f"index into {e.base!r}")
            if idx is None:
                return TOP
            if e.base in st.env:
                arr = st.env[e.base]
                if not isinstance(arr, list):
                    self.fail(f"{e.base!r} is not an array")
                if not 0 <= idx < len(arr):
                    self.fail(f"{e.base}[{idx}] out of bounds")
                return arr[idx]
            fv = self._field_value(e.base)
            if fv is TOP:
                return TOP
            if isinstance(fv, np.ndarray):
                if not 0 <= idx < len(fv):
                    self.fail(f"{e.base}[{idx}] out of bounds")
                v = fv[idx]
                return self.const(float(v) if fv.dtype.kind == "f" else int(v))
            self.fail(f"unknown array {e.base!r}")
        if isinstance(e, N.Peek):
            idx = self._const_int(self.eval(e.index, st), "peek index")
            if idx is None:
                return TOP
            pos = st.popcount + idx
            if not 0 <= pos < self.peek_rate:
                self.fail(f"peek({idx}) after {st.popcount} pops is outside "
                          f"the declared peek window of {self.peek_rate}")
            return self._input_coeff(pos)
        if isinstance(e, N.Pop):
            if st.popcount >= self.pop_rate and \
                    st.popcount >= self.peek_rate:
                self.fail("pop beyond declared rates")
            lf = self._input_coeff(st.popcount)
            st.popcount += 1
            return lf
        if isinstance(e, N.Un):
            v = self.eval(e.operand, st)
            if e.op == "-":
                return TOP if v is TOP else v.scale(-1)
            if v is TOP:
                return TOP
            if v.is_constant:
                return self.const(int(not v.c))
            return TOP
        if isinstance(e, N.Call):
            args = [self.eval(a, st) for a in e.args]
            if any(a is TOP for a in args):
                return TOP
            if all(a.is_constant for a in args):
                return self.const(_FOLDABLE[e.fn](*(a.c for a in args)))
            if e.fn == "abs":
                return TOP  # |linear| is not linear
            return TOP
        if isinstance(e, N.Bin):
            return self._eval_bin(e, st)
        self.fail(f"unsupported expression {e!r}")  # pragma: no cover

    def _const_int(self, v, what: str):
        if v is TOP or v is BOTTOM:
            return None
        if not v.is_constant:
            return None
        return int(v.c)

    def _eval_bin(self, e: N.Bin, st: _State):
        op = e.op
        a = self.eval(e.left, st)
        b = self.eval(e.right, st)
        if a is TOP or b is TOP:
            # addition of TOP to anything taints; comparisons on TOP taint
            return TOP
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            if a.is_constant:
                return b.scale(a.c)
            if b.is_constant:
                return a.scale(b.c)
            return TOP
        if op == "/":
            if b.is_constant and b.c != 0:
                if a.is_constant and isinstance(a.c, int) \
                        and isinstance(b.c, int):
                    q = abs(a.c) // abs(b.c)
                    return self.const(
                        q if (a.c >= 0) == (b.c >= 0) else -q)
                return a.scale(1.0 / b.c)
            return TOP
        # remaining ops are linear only when both operands are constants
        if a.is_constant and b.is_constant:
            x, y = a.c, b.c
            if op == "%":
                if y == 0:
                    self.fail("modulo by zero")
                if isinstance(x, int) and isinstance(y, int):
                    q = abs(x) // abs(y)
                    q = q if (x >= 0) == (y >= 0) else -q
                    return self.const(x - q * y)
                return self.const(math.fmod(x, y))
            table = {
                "==": lambda: int(x == y), "!=": lambda: int(x != y),
                "<": lambda: int(x < y), "<=": lambda: int(x <= y),
                ">": lambda: int(x > y), ">=": lambda: int(x >= y),
                "&&": lambda: int(bool(x) and bool(y)),
                "||": lambda: int(bool(x) or bool(y)),
                "&": lambda: int(x) & int(y), "|": lambda: int(x) | int(y),
                "^": lambda: int(x) ^ int(y),
                "<<": lambda: int(x) << int(y),
                ">>": lambda: int(x) >> int(y),
            }
            return self.const(table[op]())
        return TOP

    # -- statements ---------------------------------------------------------
    def exec_block(self, stmts, st: _State):
        for s in stmts:
            self.exec_stmt(s, st)

    def exec_stmt(self, s: N.Stmt, st: _State):
        self.iters += 1
        if self.iters > _MAX_SYMBOLIC_ITERS:
            self.fail("symbolic execution budget exceeded")
        if isinstance(s, N.Assign):
            v = self.eval(s.value, st)
            self._store(s.target, v, st)
        elif isinstance(s, N.PushS):
            v = self.eval(s.value, st)
            if st.pushcount >= self.push_rate:
                self.fail("more pushes than the declared push rate")
            col = self.push_rate - 1 - st.pushcount
            if v is TOP:
                self.fail(f"push #{st.pushcount} is not an affine function "
                          f"of the input")
            for i in range(self.vec_dim):
                st.A[i][col] = v.v[i]
            st.b[col] = v.c
            st.pushcount += 1
        elif isinstance(s, N.PopS):
            if st.popcount >= self.peek_rate:
                self.fail("pop beyond the declared peek window")
            st.popcount += 1
        elif isinstance(s, N.Decl):
            if s.size is not None:
                zero = self.const(0.0 if s.ty == "float" else 0)
                st.env[s.name] = [zero] * s.size
            elif s.init is not None:
                st.env[s.name] = self.eval(s.init, st)
            else:
                st.env[s.name] = self.const(0.0 if s.ty == "float" else 0)
        elif isinstance(s, N.For):
            self._exec_for(s, st)
        elif isinstance(s, N.If):
            self._exec_if(s, st)
        else:  # pragma: no cover
            self.fail(f"unsupported statement {s!r}")

    def _store(self, target, v, st: _State):
        if isinstance(target, N.Var):
            name = target.name
            if name in self.filt.fields and name not in st.env:
                # a write to a field: persistent state => the filter may
                # still be linear only if nothing TOP is pushed; reads of
                # mutable fields are already TOP.
                return
            st.env[name] = v
        else:
            idx = self._const_int(self.eval(target.index, st),
                                  f"store index into {target.base!r}")
            if idx is None:
                self.fail(f"array store to {target.base!r} with a "
                          f"non-constant index")
            if target.base in self.filt.fields and target.base not in st.env:
                return  # persistent array state; reads are TOP already
            arr = st.env.get(target.base)
            if not isinstance(arr, list):
                self.fail(f"store to unknown array {target.base!r}")
            if not 0 <= idx < len(arr):
                self.fail(f"{target.base}[{idx}] out of bounds")
            arr[idx] = v

    def _exec_for(self, s: N.For, st: _State):
        start = self._const_int(self.eval(s.start, st), "loop start")
        step = self._const_int(self.eval(s.step, st), "loop step")
        if start is None or step is None or step == 0:
            self.fail(f"loop over {s.var!r} has unresolvable bounds")
        i = start
        while True:
            stop = self._const_int(self.eval(s.stop, st), "loop stop")
            if stop is None:
                self.fail(f"loop over {s.var!r} has a non-constant bound")
            if not ((i < stop) if step > 0 else (i > stop)):
                break
            st.env[s.var] = self.const(i)
            self.exec_block(s.body, st)
            after = st.env.get(s.var)
            if isinstance(after, LinearForm) and after.is_constant:
                i = int(after.c) + step
            else:
                self.fail(f"loop variable {s.var!r} became non-constant")
        st.env[s.var] = self.const(i)

    def _exec_if(self, s: N.If, st: _State):
        cond = self.eval(s.cond, st)
        if cond is not TOP and cond.is_constant:
            # constant condition: take the known side (precision refinement)
            self.exec_block(s.then if cond.c else s.orelse, st)
            return
        st2 = st.copy()
        self.exec_block(s.then, st)
        self.exec_block(s.orelse, st2)
        if st.popcount != st2.popcount or st.pushcount != st2.pushcount:
            self.fail("branches push/pop different amounts")
        st.env = join_env(st.env, st2.env)
        for col in range(self.push_rate):
            if st.b[col] is not BOTTOM or st2.b[col] is not BOTTOM:
                joined_b = join(self._as_lf(st.b[col]),
                                self._as_lf(st2.b[col]))
                if joined_b is TOP:
                    self.fail("branches push different constants")
                st.b[col] = joined_b.c if isinstance(joined_b, LinearForm) \
                    else joined_b
            for i in range(self.vec_dim):
                a1, a2 = st.A[i][col], st2.A[i][col]
                if a1 is BOTTOM and a2 is BOTTOM:
                    continue
                if (a1 is BOTTOM) != (a2 is BOTTOM) or a1 != a2:
                    self.fail("branches push different coefficients")

    def _as_lf(self, v):
        if v is BOTTOM or v is TOP:
            return v
        return self.const(v)

    def _seed_state(self, st: _State) -> None:
        """Hook: the stateful extractor injects symbolic state here."""

    # -- toplevel (Algorithm 1) ---------------------------------------------
    def _run_symbolic(self) -> tuple[np.ndarray, np.ndarray, _State]:
        """Execute work symbolically; ``(vec_dim, u)`` matrix, offsets,
        and the final state (for the stateful extractor's field rows)."""
        if self.push_rate == 0:
            self.fail("sink filters (push 0) have no linear node")
        if self.pop_rate == 0:
            self.fail("source filters (pop 0) have no linear node")
        st = _State(
            env={},
            A=[[BOTTOM] * self.push_rate for _ in range(self.vec_dim)],
            b=[BOTTOM] * self.push_rate,
            popcount=0,
            pushcount=0,
        )
        self._seed_state(st)
        self.exec_block(self.filt.work.body, st)
        if st.pushcount != self.push_rate:
            self.fail(f"work pushed {st.pushcount} of {self.push_rate} items")
        A = np.zeros((self.vec_dim, self.push_rate))
        b = np.zeros(self.push_rate)
        for col in range(self.push_rate):
            if st.b[col] is BOTTOM or st.b[col] is TOP:
                self.fail(f"output column {col} never written")
            b[col] = st.b[col]
            for i in range(self.vec_dim):
                entry = st.A[i][col]
                if entry is BOTTOM or entry is TOP:
                    self.fail(f"matrix entry [{i},{col}] unresolved")
                A[i, col] = entry
        return A, b, st

    def run(self) -> LinearNode:
        A, b, _ = self._run_symbolic()
        return LinearNode(A, b, self.peek_rate, self.pop_rate, self.push_rate)


class _StatefulExtractor(_Extractor):
    """Extraction over the extended vector (input window, state).

    Persistent fields are not ⊤ here: each scalar of mutable state is a
    symbolic component ``s_j`` appended to the linear-form vector, seeded
    into the environment before execution.  Pushes then yield rows of
    ``[Ax | As] + bx`` and the fields' final values rows of
    ``[Cx | Cs] + bs`` — the state-space node of §7.1.
    """

    def __init__(self, filt: Filter):
        super().__init__(filt)
        #: (field name, array length | None for scalars), sorted by name —
        #: the canonical state ordering of the extracted node
        self.state_fields: list[tuple[str, int | None]] = []
        s0: list[float] = []
        for name in sorted(filt.mutable_fields):
            init = filt.fields.get(name)
            if isinstance(init, np.ndarray):
                if init.ndim != 1:
                    raise NonLinearError(
                        f"state array {name!r} is not one-dimensional")
                self.state_fields.append((name, len(init)))
                s0.extend(float(v) for v in init)
            elif isinstance(init, (bool, int, float)):
                self.state_fields.append((name, None))
                s0.append(float(init))
            else:
                raise NonLinearError(
                    f"state field {name!r} has no numeric initial value")
        self.s0 = np.asarray(s0)
        self.state_dim = len(s0)
        self.vec_dim = self.peek_rate + self.state_dim

    def _state_coeff(self, slot: int) -> LinearForm:
        v = np.zeros(self.vec_dim)
        v[self.peek_rate + slot] = 1.0
        return LinearForm(v, 0)

    def _seed_state(self, st: _State) -> None:
        slot = 0
        for name, size in self.state_fields:
            if size is None:
                st.env[name] = self._state_coeff(slot)
                slot += 1
            else:
                st.env[name] = [self._state_coeff(slot + i)
                                for i in range(size)]
                slot += size

    def run(self):
        from .state import StatefulLinearNode

        A, bx, st = self._run_symbolic()  # A stacks [Ax | As] rows
        e, u, k = self.peek_rate, self.push_rate, self.state_dim
        Cx = np.zeros((e, k))
        Cs = np.zeros((k, k))
        bs = np.zeros(k)
        slot = 0
        for name, size in self.state_fields:
            vals = st.env.get(name)
            vals = [vals] if size is None else vals
            if not isinstance(vals, list) or \
                    (size is not None and len(vals) != size):
                self.fail(f"state field {name!r} lost its shape")
            for v in vals:
                if not isinstance(v, LinearForm):
                    self.fail(f"state field {name!r} update is not an "
                              "affine function of the input and state")
                Cx[:, slot] = v.v[:e]
                Cs[:, slot] = v.v[e:]
                bs[slot] = v.c
                slot += 1
        return StatefulLinearNode(
            Ax=A[:e], As=A[e:], bx=bx, Cx=Cx, Cs=Cs, bs=bs,
            s0=self.s0, peek=e, pop=self.pop_rate, push=u)


@dataclass
class ExtractionResult:
    """Outcome of linear extraction for one filter."""

    node: LinearNode | None
    reason: str | None = None

    @property
    def is_linear(self) -> bool:
        return self.node is not None


@dataclass
class StatefulExtractionResult:
    """Outcome of state-space linear extraction for one filter."""

    node: object | None  # StatefulLinearNode
    reason: str | None = None

    @property
    def is_linear(self) -> bool:
        return self.node is not None


def _prework_gate(filt: Filter) -> str | None:
    """Why prework makes steady-``work`` extraction unsound (None = sound).

    A prework that writes fields leaves steady state differing from the
    ``init`` values extraction folds as constants; one that pops or
    pushes shifts the steady tape alignment.  A pure peek-prologue
    (waiting for lookahead to accumulate) does neither.
    """
    if filt.prework is None:
        return None
    mutated = sorted(N.assigned_names(filt.prework.body) & set(filt.fields))
    if mutated:
        return "prework mutates state fields: " + ", ".join(mutated)
    if filt.prework.pop or filt.prework.push:
        return ("prework pops or pushes items (init rates differ from "
                "steady work)")
    return None


def extract_filter(filt: Stream) -> ExtractionResult:
    """Run linear extraction on a leaf filter.

    Primitive filters advertise their own linearity via a ``linear_node``
    attribute (e.g. the matrix filter produced by an earlier combination).
    """
    if isinstance(filt, PrimitiveFilter):
        node = getattr(filt, "linear_node", None)
        if node is not None:
            return ExtractionResult(node)
        return ExtractionResult(None, "primitive filter without linear form")
    if not isinstance(filt, Filter):
        return ExtractionResult(None, f"{filt!r} is not a leaf filter")
    reason = _prework_gate(filt)
    if reason is not None:
        return ExtractionResult(None, reason)
    try:
        return ExtractionResult(_Extractor(filt).run())
    except NonLinearError as exc:
        return ExtractionResult(None, exc.reason)


def extract_stateful_filter(filt: Stream) -> StatefulExtractionResult:
    """Run state-space linear extraction on a leaf filter.

    Succeeds when every push and every mutable-field update is an affine
    function of the input window and the prior field values, yielding
    the filter's :class:`~repro.linear.state.StatefulLinearNode`
    (``y = x·Ax + s·As + bx``, ``s' = x·Cx + s·Cs + bs``).  Stateless
    filters extract too (``k = 0``); primitives advertise themselves via
    a ``stateful_node`` or ``linear_node`` attribute.
    """
    from .state import from_stateless

    if isinstance(filt, PrimitiveFilter):
        snode = getattr(filt, "stateful_node", None)
        if snode is not None:
            return StatefulExtractionResult(snode)
        node = getattr(filt, "linear_node", None)
        if node is not None:
            return StatefulExtractionResult(from_stateless(node))
        return StatefulExtractionResult(
            None, "primitive filter without (stateful) linear form")
    if not isinstance(filt, Filter):
        return StatefulExtractionResult(None,
                                        f"{filt!r} is not a leaf filter")
    reason = _prework_gate(filt)
    if reason is not None:
        return StatefulExtractionResult(None, reason)
    try:
        return StatefulExtractionResult(_StatefulExtractor(filt).run())
    except NonLinearError as exc:
        return StatefulExtractionResult(None, exc.reason)
