"""Linear analysis: nodes, extraction, expansion, combination, replacement."""

from .combine import LinearityMap, analyze, maximal_linear_replacement
from .expansion import expand, expand_firings
from .extraction import (ExtractionResult, StatefulExtractionResult,
                         extract_filter, extract_stateful_filter)
from .filters import LinearFilter
from .node import LinearNode
from .state import StatefulLinearFilter, StatefulLinearNode
from .pipeline_comb import combine_pipeline, combine_pipeline_pair
from .splitjoin_comb import (combine_duplicate_splitjoin, combine_splitjoin,
                             decimator_node, roundrobin_to_duplicate)

__all__ = [
    "LinearNode", "extract_filter", "ExtractionResult",
    "extract_stateful_filter", "StatefulExtractionResult",
    "StatefulLinearNode", "StatefulLinearFilter",
    "expand", "expand_firings",
    "combine_pipeline_pair", "combine_pipeline",
    "combine_duplicate_splitjoin", "combine_splitjoin",
    "decimator_node", "roundrobin_to_duplicate",
    "analyze", "LinearityMap", "maximal_linear_replacement", "LinearFilter",
]
