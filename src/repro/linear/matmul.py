"""Matrix-multiply backends for collapsed linear filters.

The paper generates C code for collapsed linear nodes in two flavours:
unrolled expressions for small nodes and an indexed loop nest that skips
the zero runs at the top and bottom of each column for large nodes
(Figure 5-7); it also experiments with calling ATLAS (§5.4).  We mirror
this with two backends:

* ``direct`` — a per-column dot over the non-zero span, vectorized with
  numpy but FLOP-accounted exactly like the scalar loop nest;
* ``blas``   — a dense ``window @ A`` (numpy's BLAS), our ATLAS stand-in;
  FLOP accounting reflects the dense product a BLAS kernel performs.
"""

from __future__ import annotations

import numpy as np

from ..profiling import Counts
from .node import LinearNode


def direct_cost_counts(node: LinearNode) -> Counts:
    """Float ops of one firing of the direct (zero-span-skipping) kernel.

    Per column: one multiply per non-zero-span entry, span-1 adds to reduce,
    plus one add when b is non-zero.
    """
    c = Counts()
    spans = node.column_spans()
    for j, (lo, hi) in enumerate(spans):
        span = hi - lo
        c.fmul += span
        c.fadd += max(span - 1, 0)
        if node.b[j] != 0.0:
            c.fadd += 1
    return c


def blas_cost_counts(node: LinearNode) -> Counts:
    """Float ops of one dense matrix-vector product (e mults+adds per col)."""
    c = Counts()
    c.fmul = node.peek * node.push
    c.fadd = node.peek * node.push  # multiply-accumulate pairs + b add
    return c


class _DirectKernel:
    """Column-span matrix multiply (the paper's generated loop nest)."""

    def __init__(self, node: LinearNode):
        self.node = node
        self.spans = node.column_spans()
        # Pre-slice columns; window is reversed so x[i] = peek(e-1-i).
        self.cols = [node.A[lo:hi, j] for j, (lo, hi) in enumerate(self.spans)]
        self.counts = direct_cost_counts(node)

    def fire_window(self, window: np.ndarray) -> np.ndarray:
        """window = [peek(0), ..., peek(e-1)] -> outputs in push order."""
        x = window[::-1]
        node = self.node
        y = np.empty(node.push)
        for j, ((lo, hi), col) in enumerate(zip(self.spans, self.cols)):
            y[j] = x[lo:hi] @ col if hi > lo else 0.0
        y += node.b
        return y[::-1]


class _BlasKernel:
    """Dense matrix multiply (the ATLAS stand-in)."""

    def __init__(self, node: LinearNode):
        self.node = node
        self.counts = blas_cost_counts(node)

    def fire_window(self, window: np.ndarray) -> np.ndarray:
        y = window[::-1] @ self.node.A + self.node.b
        return y[::-1]


def make_kernel(node: LinearNode, backend: str = "direct"):
    if backend == "direct":
        return _DirectKernel(node)
    if backend == "blas":
        return _BlasKernel(node)
    raise ValueError(f"unknown matmul backend {backend!r}")
