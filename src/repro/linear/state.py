"""Stateful linear nodes — the thesis' §7.1 future-work extension.

A *stateful* linear node carries a state vector ``s`` across firings:

    y    = x·Ax + s·As + bx          (outputs, as in Definition 1)
    s'   = x·Cx + s·Cs + bs          (next state)

with ``x`` the input window in the standard reversed convention.  This
represents IIR filters and the computation inside feedbackloops, which
the stateless framework cannot express.

Provided here:

* :class:`StatefulLinearNode` — the representation plus a reference
  simulator;
* :func:`from_difference_equation` — build the node for a direct-form
  IIR filter ``y[n] = sum b_k x[n-k] + sum a_k y[n-k]``;
* :func:`expand_stateful` — Transformation 1 lifted to state: ``n``
  firings compose into one block operator (the state update is a monoid
  action, so the lifted matrices stack powers of ``Cs`` against the
  input window — Hou et al.'s state-monoid composition);
* :func:`combine_stateful_pipeline` — composition of two stateful nodes
  in sequence; rate-changing pairs reduce to the matched case via
  expansion (with recomputation columns when the downstream node peeks
  ahead, mirroring the stateless combination rules);
* :func:`stateful_cost_counts` — exact per-firing FLOP counts of the
  runtime leaf (the backend-independent accounting contract);
* :class:`StatefulLinearFilter` — a runtime leaf executing the node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CombinationError
from ..graph.streams import PrimitiveFilter
from ..profiling import Counts


@dataclass(frozen=True)
class StatefulLinearNode:
    """An affine stream block with persistent state.

    Shapes: ``Ax (e,u)``, ``As (k,u)``, ``bx (u,)``, ``Cx (e,k)``,
    ``Cs (k,k)``, ``bs (k,)``, initial state ``s0 (k,)``.
    """

    Ax: np.ndarray
    As: np.ndarray
    bx: np.ndarray
    Cx: np.ndarray
    Cs: np.ndarray
    bs: np.ndarray
    s0: np.ndarray
    peek: int
    pop: int
    push: int

    def __post_init__(self):
        e, u = self.peek, self.push
        k = len(self.s0)
        object.__setattr__(self, "Ax", np.asarray(self.Ax, dtype=float))
        object.__setattr__(self, "As", np.asarray(self.As, dtype=float))
        object.__setattr__(self, "bx", np.asarray(self.bx, dtype=float))
        object.__setattr__(self, "Cx", np.asarray(self.Cx, dtype=float))
        object.__setattr__(self, "Cs", np.asarray(self.Cs, dtype=float))
        object.__setattr__(self, "bs", np.asarray(self.bs, dtype=float))
        object.__setattr__(self, "s0", np.asarray(self.s0, dtype=float))
        if self.Ax.shape != (e, u):
            raise ValueError(f"Ax shape {self.Ax.shape} != ({e},{u})")
        if self.As.shape != (k, u):
            raise ValueError(f"As shape {self.As.shape} != ({k},{u})")
        if self.Cx.shape != (e, k):
            raise ValueError(f"Cx shape {self.Cx.shape} != ({e},{k})")
        if self.Cs.shape != (k, k):
            raise ValueError(f"Cs shape {self.Cs.shape} != ({k},{k})")
        if self.bx.shape != (u,) or self.bs.shape != (k,):
            raise ValueError("offset vector shapes do not match rates")

    @property
    def state_dim(self) -> int:
        return len(self.s0)

    # ------------------------------------------------------------------
    def simulate(self, inputs, firings: int) -> np.ndarray:
        """Reference execution: concatenated outputs of ``firings`` firings."""
        inputs = np.asarray(inputs, dtype=float)
        s = self.s0.copy()
        out = []
        pos = 0
        for _ in range(firings):
            window = inputs[pos:pos + self.peek]
            if len(window) < self.peek:
                raise ValueError("not enough input")
            x = window[::-1]
            y = x @ self.Ax + s @ self.As + self.bx
            s = x @ self.Cx + s @ self.Cs + self.bs
            out.append(y[::-1])
            pos += self.pop
        return np.concatenate(out) if out else np.zeros(0)

    def is_stable(self) -> bool:
        """Spectral radius of Cs < 1 (BIBO stability of the state part)."""
        if self.state_dim == 0:
            return True
        return bool(np.max(np.abs(np.linalg.eigvals(self.Cs))) < 1.0)


def from_difference_equation(b_coeffs, a_coeffs) -> StatefulLinearNode:
    """Direct-form II transposed IIR: ``y[n] = Σ b_k·x[n-k] + Σ a_k·y[n-k]``.

    ``b_coeffs = [b0, b1, ..., bM]`` (feed-forward), ``a_coeffs =
    [a1, ..., aN]`` (feedback, note the paper-style positive-sum sign
    convention).  The node fires per input sample (e = o = u = 1), with
    state holding the delayed partial sums.
    """
    b = np.asarray(b_coeffs, dtype=float)
    a = np.asarray(a_coeffs, dtype=float)
    k = max(len(b) - 1, len(a))
    b_pad = np.zeros(k + 1)
    b_pad[:len(b)] = b
    a_pad = np.zeros(k)
    a_pad[:len(a)] = a
    # state s[i] = w_{i+1}: y = b0*x + s[0]
    # s'[i] = b_{i+1}*x + a_{i+1}*y + s[i+1]
    Ax = np.array([[b_pad[0]]])
    As = np.zeros((k, 1))
    if k:
        As[0, 0] = 1.0
    Cx = np.zeros((1, k))
    Cs = np.zeros((k, k))
    for i in range(k):
        # y = x*b0 + s[0]: expand a_{i+1}*y into x and s contributions
        Cx[0, i] = b_pad[i + 1] + a_pad[i] * b_pad[0]
        Cs[0, i] += a_pad[i]  # a_{i+1} * s[0] term
        if i + 1 < k:
            Cs[i + 1, i] += 1.0  # shift: s[i+1] feeds s'[i]
    return StatefulLinearNode(
        Ax=Ax, As=As, bx=np.zeros(1), Cx=Cx, Cs=Cs, bs=np.zeros(k),
        s0=np.zeros(k), peek=1, pop=1, push=1)


def from_stateless(node) -> StatefulLinearNode:
    """Embed a stateless LinearNode as a stateful node with k = 0."""
    return StatefulLinearNode(
        Ax=node.A, As=np.zeros((0, node.push)), bx=node.b,
        Cx=np.zeros((node.peek, 0)), Cs=np.zeros((0, 0)), bs=np.zeros(0),
        s0=np.zeros(0), peek=node.peek, pop=node.pop, push=node.push)


def expand_stateful(node: StatefulLinearNode, firings: int,
                    advance: int | None = None) -> StatefulLinearNode:
    """Lift ``firings`` consecutive firings into one block operator.

    The state update ``s' = x·Cx + s·Cs + bs`` is a monoid action on
    affine maps, so ``n`` firings compose exactly: the lifted ``As``
    stacks ``As·Cs^t`` blocks, the lifted ``Ax`` threads the input
    window through the same powers, and the lifted state update is the
    ``n``-fold composition.  The expanded node is fully interchangeable
    with ``firings`` firings of the original.

    ``advance`` (default ``firings``) caps how many firings the *state*
    (and the pop rate) actually advances: with ``advance < firings`` the
    trailing firings are recomputation — their outputs are produced from
    the deterministic state trajectory but re-derived on the next firing
    (the stateful analogue of the overlap columns stateless expansion
    introduces), which is what rate-changing pipeline combination needs
    when the downstream node peeks ahead.
    """
    if firings < 1:
        raise ValueError("firings must be positive")
    if advance is None:
        advance = firings
    if not 0 <= advance <= firings:
        raise ValueError("advance must lie in [0, firings]")
    e, o, u = node.peek, node.pop, node.push
    k = node.state_dim
    E = e + (firings - 1) * o
    U = firings * u
    Ax2 = np.zeros((E, U))
    As2 = np.zeros((k, U))
    bx2 = np.zeros(U)
    # affine state trackers: before firing t, s_t = x'·G + s0·H + c
    G = np.zeros((E, k))
    H = np.eye(k)
    c = np.zeros(k)
    Cx2, Cs2, bs2 = G.copy(), H.copy(), c.copy()  # advance == 0 case
    for t in range(firings):
        # firing t reads x' rows [off, off+e): x_t[i] = peek(t*o + e-1-i)
        off = E - e - t * o
        cols = slice(U - (t + 1) * u, U - t * u)
        Ax2[:, cols] = G @ node.As
        Ax2[off:off + e, cols] += node.Ax
        As2[:, cols] = H @ node.As
        bx2[cols] = node.bx + c @ node.As
        G = G @ node.Cs
        G[off:off + e, :] += node.Cx
        H = H @ node.Cs
        c = c @ node.Cs + node.bs
        if t + 1 == advance:
            Cx2, Cs2, bs2 = G.copy(), H.copy(), c.copy()
    return StatefulLinearNode(
        Ax=Ax2, As=As2, bx=bx2, Cx=Cx2, Cs=Cs2, bs=bs2, s0=node.s0,
        peek=E, pop=advance * o, push=U)


def _combine_matched(n1: StatefulLinearNode, n2: StatefulLinearNode,
                     window: int) -> StatefulLinearNode:
    """Compose with Λ2 reading the oldest ``window`` of Λ1's ``u1``
    outputs per firing (``window == e2 == o2·(combined firings)``).

    The combined state is the concatenation (s1, s2); Λ2 sees Λ1's
    output ``y1 = x·Ax1 + s1·As1 + bx1`` as its input window (reversal
    conventions cancel because both sides use the same ordering).  When
    ``u1 > window`` the surplus columns are recomputation — they exist
    only to advance Λ1's state consistently and are sliced away here.
    """
    u1 = n1.push
    lo = u1 - window  # oldest `window` stream items are y1[lo:]
    k1, k2 = n1.state_dim, n2.state_dim
    Axs, Ass, bxs = n1.Ax[:, lo:], n1.As[:, lo:], n1.bx[lo:]
    Ax = Axs @ n2.Ax
    As = np.vstack([Ass @ n2.Ax, n2.As])
    bx = bxs @ n2.Ax + n2.bx
    # state updates: s1' as in Λ1; s2' = y1·Cx2 + s2·Cs2 + bs2
    Cx = np.hstack([n1.Cx, Axs @ n2.Cx])
    Cs = np.zeros((k1 + k2, k1 + k2))
    Cs[:k1, :k1] = n1.Cs
    Cs[:k1, k1:] = Ass @ n2.Cx
    Cs[k1:, k1:] = n2.Cs
    bs = np.concatenate([n1.bs, bxs @ n2.Cx + n2.bs])
    return StatefulLinearNode(
        Ax=Ax, As=As, bx=bx, Cx=Cx, Cs=Cs, bs=bs,
        s0=np.concatenate([n1.s0, n2.s0]),
        peek=n1.peek, pop=n1.pop, push=n2.push)


def combine_stateful_pipeline(n1: StatefulLinearNode,
                              n2: StatefulLinearNode) -> StatefulLinearNode:
    """Compose two stateful nodes in sequence (``Λ1 ; Λ2``).

    Rate-matched pairs (``u1 == e2 == o2``, the IIR-cascade case)
    compose directly; rate-changing pairs are first expanded to a common
    block — ``lcm(u1, o2)`` items per combined firing — and when Λ2
    peeks ahead (``e2 > o2``) Λ1 gains recomputation firings so the
    lookahead window is covered without over-advancing its state.
    """
    if n1.push < 1 or n2.pop < 1:
        raise CombinationError(
            "stateful combination requires data flow (u1 >= 1, o2 >= 1)")
    if n1.push == n2.peek and n2.peek == n2.pop:
        return _combine_matched(n1, n2, n2.peek)
    block = math.lcm(n1.push, n2.pop)
    k1 = block // n1.push  # upstream firings actually advanced
    k2 = block // n2.pop  # downstream firings per combined firing
    n2x = expand_stateful(n2, k2)
    # Λ1 must exhibit e2' outputs per combined firing while only
    # advancing k1: any surplus firings are recomputation columns.
    total = max(k1, -(-n2x.peek // n1.push))  # ceil(e2' / u1)
    n1x = expand_stateful(n1, total, advance=k1)
    return _combine_matched(n1x, n2x, n2x.peek)


def stateful_cost_counts(node: StatefulLinearNode) -> Counts:
    """Exact float ops of one firing, per output/state component.

    Mirrors :func:`~repro.linear.matmul.direct_cost_counts`'s convention
    (the interp ground truth for the equivalent scalar expression): each
    component ``y_j`` / ``s'_j`` costs one multiply per nonzero term, one
    add per term beyond the first, and one add for a nonzero offset —
    *not* one add per multiply, which over-counts single-term rows and
    misses nonzero biases.
    """
    c = Counts()
    for A, B, bias in ((node.Ax, node.As, node.bx),
                       (node.Cx, node.Cs, node.bs)):
        for j in range(A.shape[1]):
            terms = (int(np.count_nonzero(A[:, j]))
                     + int(np.count_nonzero(B[:, j])))
            c.fmul += terms
            c.fadd += max(terms - 1, 0)
            if bias[j] != 0.0:
                c.fadd += 1
    return c


class StatefulLinearFilter(PrimitiveFilter):
    """Runtime leaf executing a stateful linear node."""

    def __init__(self, node: StatefulLinearNode,
                 name: str = "StatefulLinear"):
        self.stateful_node = node
        self.name = name
        self.peek = node.peek
        self.pop = node.pop
        self.push = node.push

    def make_runner(self, profiler):
        node = self.stateful_node
        counts = stateful_cost_counts(node)
        name = self.name

        class _Runner:
            def __init__(self):
                self.s = node.s0.copy()

            def fire(self, ch_in, ch_out):
                window = ch_in.peek_block(node.peek)
                x = window[::-1]
                y = x @ node.Ax + self.s @ node.As + node.bx
                self.s = x @ node.Cx + self.s @ node.Cs + node.bs
                ch_out.push_array(y[::-1])
                ch_in.pop_block(node.pop)
                profiler.add_counts(counts, filter_name=name)

        return _Runner()
