"""Stateful linear nodes — the thesis' §7.1 future-work extension.

A *stateful* linear node carries a state vector ``s`` across firings:

    y    = x·Ax + s·As + bx          (outputs, as in Definition 1)
    s'   = x·Cx + s·Cs + bs          (next state)

with ``x`` the input window in the standard reversed convention.  This
represents IIR filters and the computation inside feedbackloops, which
the stateless framework cannot express.

Provided here:

* :class:`StatefulLinearNode` — the representation plus a reference
  simulator;
* :func:`from_difference_equation` — build the node for a direct-form
  IIR filter ``y[n] = sum b_k x[n-k] + sum a_k y[n-k]``;
* :func:`combine_stateful_pipeline` — composition of two stateful nodes
  in sequence (rates must match 1:1; the general rate-changing case
  reduces to it via expansion of the stateless parts);
* :class:`StatefulLinearFilter` — a runtime leaf executing the node.

This is deliberately scoped to pop = 1 per firing on the stateless-input
side — exactly the IIR/feedback use cases the thesis names (control
systems and IIR filters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.streams import PrimitiveFilter
from ..profiling import Counts


@dataclass(frozen=True)
class StatefulLinearNode:
    """An affine stream block with persistent state.

    Shapes: ``Ax (e,u)``, ``As (k,u)``, ``bx (u,)``, ``Cx (e,k)``,
    ``Cs (k,k)``, ``bs (k,)``, initial state ``s0 (k,)``.
    """

    Ax: np.ndarray
    As: np.ndarray
    bx: np.ndarray
    Cx: np.ndarray
    Cs: np.ndarray
    bs: np.ndarray
    s0: np.ndarray
    peek: int
    pop: int
    push: int

    def __post_init__(self):
        e, u = self.peek, self.push
        k = len(self.s0)
        object.__setattr__(self, "Ax", np.asarray(self.Ax, dtype=float))
        object.__setattr__(self, "As", np.asarray(self.As, dtype=float))
        object.__setattr__(self, "bx", np.asarray(self.bx, dtype=float))
        object.__setattr__(self, "Cx", np.asarray(self.Cx, dtype=float))
        object.__setattr__(self, "Cs", np.asarray(self.Cs, dtype=float))
        object.__setattr__(self, "bs", np.asarray(self.bs, dtype=float))
        object.__setattr__(self, "s0", np.asarray(self.s0, dtype=float))
        if self.Ax.shape != (e, u):
            raise ValueError(f"Ax shape {self.Ax.shape} != ({e},{u})")
        if self.As.shape != (k, u):
            raise ValueError(f"As shape {self.As.shape} != ({k},{u})")
        if self.Cx.shape != (e, k):
            raise ValueError(f"Cx shape {self.Cx.shape} != ({e},{k})")
        if self.Cs.shape != (k, k):
            raise ValueError(f"Cs shape {self.Cs.shape} != ({k},{k})")
        if self.bx.shape != (u,) or self.bs.shape != (k,):
            raise ValueError("offset vector shapes do not match rates")

    @property
    def state_dim(self) -> int:
        return len(self.s0)

    # ------------------------------------------------------------------
    def simulate(self, inputs, firings: int) -> np.ndarray:
        """Reference execution: concatenated outputs of ``firings`` firings."""
        inputs = np.asarray(inputs, dtype=float)
        s = self.s0.copy()
        out = []
        pos = 0
        for _ in range(firings):
            window = inputs[pos:pos + self.peek]
            if len(window) < self.peek:
                raise ValueError("not enough input")
            x = window[::-1]
            y = x @ self.Ax + s @ self.As + self.bx
            s = x @ self.Cx + s @ self.Cs + self.bs
            out.append(y[::-1])
            pos += self.pop
        return np.concatenate(out) if out else np.zeros(0)

    def is_stable(self) -> bool:
        """Spectral radius of Cs < 1 (BIBO stability of the state part)."""
        if self.state_dim == 0:
            return True
        return bool(np.max(np.abs(np.linalg.eigvals(self.Cs))) < 1.0)


def from_difference_equation(b_coeffs, a_coeffs) -> StatefulLinearNode:
    """Direct-form II transposed IIR: ``y[n] = Σ b_k·x[n-k] + Σ a_k·y[n-k]``.

    ``b_coeffs = [b0, b1, ..., bM]`` (feed-forward), ``a_coeffs =
    [a1, ..., aN]`` (feedback, note the paper-style positive-sum sign
    convention).  The node fires per input sample (e = o = u = 1), with
    state holding the delayed partial sums.
    """
    b = np.asarray(b_coeffs, dtype=float)
    a = np.asarray(a_coeffs, dtype=float)
    k = max(len(b) - 1, len(a))
    b_pad = np.zeros(k + 1)
    b_pad[:len(b)] = b
    a_pad = np.zeros(k)
    a_pad[:len(a)] = a
    # state s[i] = w_{i+1}: y = b0*x + s[0]
    # s'[i] = b_{i+1}*x + a_{i+1}*y + s[i+1]
    Ax = np.array([[b_pad[0]]])
    As = np.zeros((k, 1))
    if k:
        As[0, 0] = 1.0
    Cx = np.zeros((1, k))
    Cs = np.zeros((k, k))
    for i in range(k):
        # y = x*b0 + s[0]: expand a_{i+1}*y into x and s contributions
        Cx[0, i] = b_pad[i + 1] + a_pad[i] * b_pad[0]
        Cs[0, i] += a_pad[i]  # a_{i+1} * s[0] term
        if i + 1 < k:
            Cs[i + 1, i] += 1.0  # shift: s[i+1] feeds s'[i]
    return StatefulLinearNode(
        Ax=Ax, As=As, bx=np.zeros(1), Cx=Cx, Cs=Cs, bs=np.zeros(k),
        s0=np.zeros(k), peek=1, pop=1, push=1)


def from_stateless(node) -> StatefulLinearNode:
    """Embed a stateless LinearNode as a stateful node with k = 0."""
    return StatefulLinearNode(
        Ax=node.A, As=np.zeros((0, node.push)), bx=node.b,
        Cx=np.zeros((node.peek, 0)), Cs=np.zeros((0, 0)), bs=np.zeros(0),
        s0=np.zeros(0), peek=node.peek, pop=node.pop, push=node.push)


def combine_stateful_pipeline(n1: StatefulLinearNode,
                              n2: StatefulLinearNode) -> StatefulLinearNode:
    """Compose two rate-matched stateful nodes in sequence.

    Requires ``u1 == e2 == o2`` (each firing of Λ1 feeds exactly one
    firing of Λ2 — the IIR cascade case).  The combined state is the
    concatenation (s1, s2); Λ2 sees Λ1's output ``y1 = x·Ax1 + s1·As1 +
    bx1`` as its input window (reversal conventions cancel because both
    sides use the same ordering).
    """
    if n1.push != n2.peek or n2.peek != n2.pop:
        raise ValueError(
            "stateful combination requires u1 == e2 == o2; expand first")
    k1, k2 = n1.state_dim, n2.state_dim
    u2 = n2.push
    # y2 = y1·Ax2 + s2·As2 + bx2, with y1 row-vector in x2-convention:
    # x2 = reverse(outputs) and outputs = reverse(y1-vector) => x2 = y1.
    Ax = n1.Ax @ n2.Ax
    As = np.vstack([n1.As @ n2.Ax, n2.As])
    bx = n1.bx @ n2.Ax + n2.bx
    # state updates: s1' as before; s2' = y1·Cx2 + s2·Cs2 + bs2
    Cx = np.hstack([n1.Cx, n1.Ax @ n2.Cx])
    Cs = np.zeros((k1 + k2, k1 + k2))
    Cs[:k1, :k1] = n1.Cs
    Cs[:k1, k1:] = n1.As @ n2.Cx
    Cs[k1:, k1:] = n2.Cs
    bs = np.concatenate([n1.bs, n1.bx @ n2.Cx + n2.bs])
    return StatefulLinearNode(
        Ax=Ax, As=As, bx=bx, Cx=Cx, Cs=Cs, bs=bs,
        s0=np.concatenate([n1.s0, n2.s0]),
        peek=n1.peek, pop=n1.pop, push=u2)


class StatefulLinearFilter(PrimitiveFilter):
    """Runtime leaf executing a stateful linear node."""

    def __init__(self, node: StatefulLinearNode,
                 name: str = "StatefulLinear"):
        self.stateful_node = node
        self.name = name
        self.peek = node.peek
        self.pop = node.pop
        self.push = node.push

    def make_runner(self, profiler):
        node = self.stateful_node
        counts = Counts()
        counts.fmul = (int(np.count_nonzero(node.Ax))
                       + int(np.count_nonzero(node.As))
                       + int(np.count_nonzero(node.Cx))
                       + int(np.count_nonzero(node.Cs)))
        counts.fadd = counts.fmul  # multiply-accumulate pairs
        name = self.name

        class _Runner:
            def __init__(self):
                self.s = node.s0.copy()

            def fire(self, ch_in, ch_out):
                window = ch_in.peek_block(node.peek)
                x = window[::-1]
                y = x @ node.Ax + self.s @ node.As + node.bx
                self.s = x @ node.Cx + self.s @ node.Cs + node.bs
                ch_out.push_array(y[::-1])
                ch_in.pop_block(node.pop)
                profiler.add_counts(counts, filter_name=name)

        return _Runner()
