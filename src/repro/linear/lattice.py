"""Abstract values for linear extraction (thesis §3.2, Figure 3-2).

Every program value is tracked as a *linear form* ``(v, c)``: at runtime
the value equals ``x·v + c`` where ``x`` is the input vector and ``v`` a
``peek``-length column vector.  Values that cannot be expressed this way
are TOP (⊤); join of unequal values is TOP.  BOTTOM (⊥) marks matrix/
vector entries not yet written.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class _Top:
    """⊤ — value not expressible as an affine function of the input."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "⊤"


class _Bottom:
    """⊥ — not yet defined."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "⊥"


TOP = _Top()
BOTTOM = _Bottom()


@dataclass(frozen=True)
class LinearForm:
    """``value = x · v + c``; a pure constant has an all-zero ``v``.

    ``c`` may be an int or float — int-ness is preserved so that loop
    bounds, array indices and peek offsets stay resolvable.
    """

    v: np.ndarray
    c: float | int

    @staticmethod
    def constant(c, peek: int) -> "LinearForm":
        return LinearForm(np.zeros(peek), c)

    @property
    def is_constant(self) -> bool:
        return not self.v.any()

    def __add__(self, other: "LinearForm") -> "LinearForm":
        return LinearForm(self.v + other.v, self.c + other.c)

    def __sub__(self, other: "LinearForm") -> "LinearForm":
        return LinearForm(self.v - other.v, self.c - other.c)

    def scale(self, k) -> "LinearForm":
        return LinearForm(self.v * k, self.c * k)

    def __eq__(self, other):
        if not isinstance(other, LinearForm):
            return NotImplemented
        return (self.c == other.c and self.v.shape == other.v.shape
                and bool(np.array_equal(self.v, other.v)))

    def __hash__(self):  # pragma: no cover - not used as dict key
        return hash((self.c, self.v.tobytes()))

    def __repr__(self):
        if self.is_constant:
            return f"LF(const {self.c})"
        taps = {i: x for i, x in enumerate(self.v) if x}
        return f"LF(v={taps}, c={self.c})"


def join(a, b):
    """The confluence operator ⊔ on abstract values (branch merge)."""
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    if isinstance(a, LinearForm) and isinstance(b, LinearForm):
        return a if a == b else TOP
    return a if a == b else TOP


def join_env(env1: dict, env2: dict) -> dict:
    """Pointwise join of two variable environments."""
    out = {}
    for k in env1.keys() | env2.keys():
        out[k] = join(env1.get(k, BOTTOM), env2.get(k, BOTTOM))
    return out
