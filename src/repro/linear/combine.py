"""Whole-graph linear analysis and maximal combination.

Mirrors the paper's linear-analysis pass (§4.4): walk the hierarchical
stream graph bottom-up, compute a linear node for every stream where the
combination rules apply, and optionally *replace* maximal linear regions
with collapsed :class:`LinearFilter` leaves ("maximal linear replacement").

Within a pipeline whose children are only partially linear, maximal
*contiguous runs* of linear children are collapsed (the paper wraps such
runs in their own pipeline before replacing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CombinationError
from ..graph.streams import (Duplicate, FeedbackLoop, Filter, Pipeline,
                             PrimitiveFilter, RoundRobin, SplitJoin, Stream)
from .extraction import extract_filter, extract_stateful_filter
from .filters import LinearFilter
from .node import LinearNode
from .pipeline_comb import combine_pipeline_pair
from .splitjoin_comb import combine_splitjoin
from .state import (StatefulLinearFilter, StatefulLinearNode,
                    combine_stateful_pipeline, from_stateless)


@dataclass
class LinearityMap:
    """Maps stream objects (by id) to their linear nodes, with reasons.

    ``stateful`` holds the §7.1 state-space nodes of leaves that are not
    (stateless) linear but whose fields update affinely — IIR sections,
    DC blockers — so the rewrites can collapse them too.
    """

    nodes: dict[int, LinearNode] = field(default_factory=dict)
    reasons: dict[int, str] = field(default_factory=dict)
    stateful: dict[int, StatefulLinearNode] = field(default_factory=dict)

    def node_for(self, stream: Stream) -> LinearNode | None:
        return self.nodes.get(id(stream))

    def is_linear(self, stream: Stream) -> bool:
        return id(stream) in self.nodes

    def stateful_node_for(self, stream: Stream) -> StatefulLinearNode | None:
        return self.stateful.get(id(stream))

    def is_stateful_linear(self, stream: Stream) -> bool:
        return id(stream) in self.stateful

    def any_node_for(self, stream: Stream) -> StatefulLinearNode | None:
        """The stream's state-space node: its stateful node, or its
        stateless node embedded with ``k = 0``."""
        node = self.nodes.get(id(stream))
        if node is not None:
            return from_stateless(node)
        return self.stateful.get(id(stream))

    def reason_for(self, stream: Stream) -> str | None:
        return self.reasons.get(id(stream))


def analyze(stream: Stream, max_matrix_elems: int = 4_000_000) -> LinearityMap:
    """Compute linear nodes for every stream in the hierarchy.

    ``max_matrix_elems`` bounds the size of combined matrices — beyond it
    a container is treated as non-linear (prevents pathological blowup,
    mirroring the paper's practical limits on the Radar benchmark).
    """
    lmap = LinearityMap()

    def visit(s: Stream) -> LinearNode | None:
        if isinstance(s, (Filter, PrimitiveFilter)):
            result = extract_filter(s)
            if result.is_linear:
                lmap.nodes[id(s)] = result.node
            else:
                lmap.reasons[id(s)] = result.reason or "not linear"
                # second (state-space) extraction only where it can
                # succeed: IR filters with persistent fields, primitives
                # advertising a stateful node — without mutable fields
                # the stateful extractor fails identically
                candidate = (s.mutable_fields if isinstance(s, Filter)
                             else getattr(s, "stateful_node", None)
                             is not None)
                if candidate:
                    sresult = extract_stateful_filter(s)
                    if sresult.is_linear:
                        lmap.stateful[id(s)] = sresult.node
            return lmap.nodes.get(id(s))
        if isinstance(s, Pipeline):
            child_nodes = [visit(c) for c in s.children]
            if all(n is not None for n in child_nodes):
                try:
                    acc = child_nodes[0]
                    for n in child_nodes[1:]:
                        acc = combine_pipeline_pair(acc, n)
                        if acc.peek * acc.push > max_matrix_elems:
                            raise CombinationError("combined matrix too large")
                    lmap.nodes[id(s)] = acc
                    return acc
                except CombinationError as exc:
                    lmap.reasons[id(s)] = str(exc)
                    return None
            lmap.reasons[id(s)] = "non-linear child"
            return None
        if isinstance(s, SplitJoin):
            child_nodes = [visit(c) for c in s.children]
            if all(n is not None for n in child_nodes):
                try:
                    node = combine_splitjoin(s.splitter, child_nodes, s.joiner)
                    if node.peek * node.push > max_matrix_elems:
                        raise CombinationError("combined matrix too large")
                    lmap.nodes[id(s)] = node
                    return node
                except CombinationError as exc:
                    lmap.reasons[id(s)] = str(exc)
                    return None
            lmap.reasons[id(s)] = "non-linear child"
            return None
        if isinstance(s, FeedbackLoop):
            visit(s.body)
            visit(s.loop)
            lmap.reasons[id(s)] = "feedbackloops require linear state"
            return None
        raise TypeError(f"unknown stream {s!r}")

    visit(stream)
    return lmap


def _rate_preserving_run(nodes: list) -> bool:
    """True when collapsing this pipeline run cannot deadlock a cycle:
    lookahead-free children (peek == pop) firing once each per combined
    firing (adjacent push == pop) leave the input demand unchanged."""
    if any(n.peek != n.pop for n in nodes):
        return False
    return all(a.push == b.pop for a, b in zip(nodes, nodes[1:]))


def combine_stateful_run(lmap: LinearityMap, children: list[Stream],
                         max_matrix_elems: int = 4_000_000) \
        -> StatefulLinearNode | None:
    """State-space node of a pipeline run of stateful/stateless-linear
    children, or None when combination fails or blows up."""
    nodes = [lmap.any_node_for(c) for c in children]
    if any(n is None for n in nodes):
        return None
    try:
        acc = nodes[0]
        for n in nodes[1:]:
            acc = combine_stateful_pipeline(acc, n)
            size = (acc.peek + acc.state_dim) * (acc.push + acc.state_dim)
            if size > max_matrix_elems:
                raise CombinationError("combined stateful matrix too large")
    except (CombinationError, ValueError):
        return None
    return acc


def _replace(s: Stream, lmap: LinearityMap, backend: str,
             make_leaf, in_feedback: bool = False,
             combine: bool = True, make_stateful_leaf=None) -> Stream:
    node = lmap.node_for(s)
    is_leaf = isinstance(s, (Filter, PrimitiveFilter))
    if node is not None and (combine or is_leaf) and not (
            in_feedback and not is_leaf):
        # Inside a feedbackloop only leaf (rate-preserving) replacement is
        # safe: coarsening granularity can deadlock the cycle.  With
        # combination disabled only leaves are replaced.
        leaf = make_leaf(node, s, in_feedback)
        if leaf is not None:
            return leaf
    if is_leaf and make_stateful_leaf is not None and \
            lmap.is_stateful_linear(s):
        leaf = make_stateful_leaf(lmap.stateful_node_for(s), s, in_feedback)
        if leaf is not None:
            return leaf
    if is_leaf:
        return s

    def recurse(child, feedback=in_feedback, comb=combine):
        return _replace(child, lmap, backend, make_leaf, feedback, comb,
                        make_stateful_leaf)

    if isinstance(s, Pipeline):
        new_children = []
        run: list[Stream] = []

        def run_member(child) -> bool:
            if lmap.is_linear(child):
                return True
            return (make_stateful_leaf is not None
                    and lmap.is_stateful_linear(child))

        def flush_run():
            if not run:
                return
            nodes = [lmap.any_node_for(c) for c in run]
            has_state = any(lmap.is_stateful_linear(c) for c in run)
            collapse = combine and len(run) > 1 and (
                not in_feedback or _rate_preserving_run(nodes))
            leaf = None
            if collapse:
                sub = Pipeline(run, name=f"{s.name}.linear_run")
                if has_state:
                    snode = combine_stateful_run(lmap, run)
                    if snode is not None:
                        leaf = make_stateful_leaf(snode, sub, in_feedback)
                else:
                    acc = lmap.node_for(run[0])
                    try:
                        for child in run[1:]:
                            acc = combine_pipeline_pair(
                                acc, lmap.node_for(child))
                        leaf = make_leaf(acc, sub, in_feedback)
                    except CombinationError:
                        leaf = None
            if leaf is not None:
                new_children.append(leaf)
            else:
                new_children.extend(recurse(c) for c in run)
            run.clear()

        for child in s.children:
            if run_member(child):
                run.append(child)
            else:
                flush_run()
                new_children.append(recurse(child))
        flush_run()
        if len(new_children) == 1:
            return new_children[0]
        return Pipeline(new_children, name=s.name)
    if isinstance(s, SplitJoin):
        return SplitJoin(s.splitter,
                         [recurse(c) for c in s.children],
                         s.joiner, name=s.name)
    if isinstance(s, FeedbackLoop):
        return FeedbackLoop(
            recurse(s.body, feedback=True),
            recurse(s.loop, feedback=True),
            s.joiner, s.splitter, s.enqueued, name=s.name)
    raise TypeError(f"unknown stream {s!r}")


def make_stateful_linear_leaf(snode: StatefulLinearNode, s: Stream,
                              in_feedback: bool) -> StatefulLinearFilter:
    """Default stateful leaf factory for the replacement passes."""
    return StatefulLinearFilter(snode, name=f"StatefulLinear[{s.name}]")


def maximal_linear_replacement(stream: Stream, backend: str = "direct",
                               lmap: LinearityMap | None = None,
                               combine: bool = True,
                               stateful: bool = False) -> Stream:
    """Replace every maximal linear region with a single LinearFilter.

    This is the paper's "linear replacement" configuration (§5.2).  With
    ``stateful=True`` (the plan pipeline's ``optimize="linear"``), leaves
    and contiguous pipeline runs that are *state-space* linear collapse
    to :class:`~repro.linear.state.StatefulLinearFilter` leaves as well —
    the §7.1 extension; the paper's configurations keep the default so
    the thesis figures measure exactly the thesis transformations.
    """
    if lmap is None:
        lmap = analyze(stream)

    def make_leaf(node: LinearNode, s: Stream, in_feedback: bool):
        return LinearFilter(node, name=f"Linear[{s.name}]", backend=backend)

    return _replace(stream, lmap, backend, make_leaf, combine=combine,
                    make_stateful_leaf=(make_stateful_linear_leaf
                                        if stateful else None))


def replace_with(stream: Stream, make_leaf,
                 lmap: LinearityMap | None = None,
                 combine: bool = True, make_stateful_leaf=None) -> Stream:
    """Generic maximal replacement with a caller-supplied leaf factory.

    ``make_leaf(node, stream, in_feedback)`` returns the replacement
    stream or ``None`` to leave the region untouched (used by frequency
    replacement, which declines regions where the transform does not
    apply).  ``in_feedback`` is True inside feedbackloops, where only
    rate-preserving leaf replacements are safe.  ``make_stateful_leaf``
    (optional) receives state-space nodes for stateful-linear leaves and
    runs; None leaves stateful filters untouched.
    """
    if lmap is None:
        lmap = analyze(stream)
    return _replace(stream, lmap, "direct", make_leaf, combine=combine,
                    make_stateful_leaf=make_stateful_leaf)
