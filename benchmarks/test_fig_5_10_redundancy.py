"""Figure 5-10: redundancy elimination on the FIR benchmark as a function
of size.

Top graph: multiplications remaining (%) — about half for the symmetric
low-pass kernel, with the even/odd zig-zag (odd sizes keep the center
tap).  Bottom graph: speedup — negative, because the caching overhead
outweighs the removed multiplications (the paper's conclusion §5.6).
"""

from __future__ import annotations

import pytest

from conftest import once, report
from repro.apps import fir
from repro.bench import format_table, measure, speedup_percent

SIZES = [5, 6, 7, 8, 9, 10, 11, 12, 16, 17, 24, 25, 32, 33, 48, 64]
N_OUT = 256


def compute_rows():
    rows = []
    for n in SIZES:
        program = fir.build(taps=n)
        base = measure(program, "original", N_OUT)
        red = measure(program, "redund", N_OUT)
        remaining = 100.0 * red.mults_per_output / base.mults_per_output
        rows.append([
            n,
            remaining,
            speedup_percent(base.seconds_per_output,
                            red.seconds_per_output),
        ])
    return rows


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


def test_redundancy_benchmark(benchmark):
    from repro.bench import build_config
    from repro.profiling import NullProfiler
    from repro.runtime import run_graph

    stream = build_config(fir.build(taps=32), "redund")
    benchmark.pedantic(lambda: run_graph(stream, 128, NullProfiler()),
                       rounds=2, iterations=1, warmup_rounds=1)


def test_fig_5_10(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-10: redundancy elimination vs FIR size",
        ["taps", "mults remaining %", "speedup %"], rows, width=20)
    report("fig_5_10_redundancy", table)
    by_n = {r[0]: r for r in rows}
    # roughly half the multiplications remain for symmetric kernels
    assert 40.0 < by_n[32][1] < 75.0


def test_zigzag_shape(benchmark, rows):
    once(benchmark)
    """Odd sizes retain the center tap: N odd leaves more mults than
    N+1 even (per-firing), §5.6's saw-tooth."""
    by_n = {r[0]: r for r in rows}
    for odd, even in ((7, 8), (9, 10), (11, 12)):
        mults_odd = by_n[odd][1] * odd  # % x taps ~ absolute per firing
        mults_even = by_n[even][1] * even
        # absolute remaining mults: N odd -> (N+1)/2 + ceil, N even -> N/2
        assert mults_even <= mults_odd + 1e-6 * mults_odd + 100.0


def test_overhead_can_outweigh_savings(benchmark, rows):
    once(benchmark)
    """§5.6: caching halves multiplications, yet the program does not get
    correspondingly faster — overhead eats the benefit.  We assert the
    weaker, substrate-independent form: measured speedup stays far below
    the ~100% a naive mults-halved model would predict."""
    speedups = [r[2] for r in rows]
    assert min(speedups) < 30.0
