"""Shared, cached measurements for the benchmark harness.

Figures 5-1/5-2/5-3 (and 5-4/5-5) report different views of the same
runs, so measurements are computed once per (benchmark, configuration)
and memoized for the whole pytest session.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps import BENCHMARKS
from repro.bench import DEFAULT_OUTPUTS, Measurement, measure

#: Paper-scale parameters (defaults of each app module).
BENCH_NAMES = ["FIR", "RateConvert", "TargetDetect", "FMRadio", "Radar",
               "FilterBank", "Vocoder", "Oversampler", "DToA"]


@lru_cache(maxsize=None)
def build(name: str):
    return BENCHMARKS[name]()


@lru_cache(maxsize=None)
def measured(name: str, config: str) -> Measurement:
    return measure(build(name), config, DEFAULT_OUTPUTS[name])


def run_config_in_benchmark(benchmark, name: str, config: str):
    """Hook a representative run into pytest-benchmark's timing table."""
    from repro.bench import build_config
    from repro.profiling import NullProfiler
    from repro.runtime import run_graph

    stream = build_config(build(name), config)
    n = max(16, DEFAULT_OUTPUTS[name] // 8)
    benchmark.pedantic(lambda: run_graph(stream, n, NullProfiler()),
                       rounds=2, iterations=1, warmup_rounds=1)
    return measured(name, config)
