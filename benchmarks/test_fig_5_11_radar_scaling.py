"""Figure 5-11: multiplication reduction of maximal linear replacement on
the Radar benchmark as a function of problem size (channels x beams).

Expected shape (§5.7): linear replacement degrades as the configuration
grows, and growing the number of beams hurts much more than growing the
number of channels (each extra beam duplicates the combined
Beamform+FIR work under the duplicate splitter).
"""

from __future__ import annotations

import pytest

from conftest import once, report
from repro.apps import radar
from repro.bench import format_table, measure, removal_percent

CHANNELS = [4, 8, 12]
BEAMS = [1, 2, 4]
N_OUT = 48


def compute_grid():
    grid = {}
    for ch in CHANNELS:
        for b in BEAMS:
            program = radar.build(channels=ch, beams=b)
            base = measure(program, "original", N_OUT * b)
            lin = measure(program, "linear", N_OUT * b)
            grid[(ch, b)] = removal_percent(base.mults_per_output,
                                            lin.mults_per_output)
    return grid


@pytest.fixture(scope="module")
def grid():
    return compute_grid()


def test_radar_scaling_benchmark(benchmark):
    from repro.profiling import NullProfiler
    from repro.runtime import run_graph

    program = radar.build(channels=4, beams=2)
    benchmark.pedantic(lambda: run_graph(program, 32, NullProfiler()),
                       rounds=2, iterations=1, warmup_rounds=1)


def test_fig_5_11(benchmark, grid):
    once(benchmark)
    rows = [[f"ch={ch}"] + [grid[(ch, b)] for b in BEAMS]
            for ch in CHANNELS]
    table = format_table(
        "Figure 5-11: Radar multiplication reduction (%) under maximal "
        "linear replacement",
        ["channels\\beams"] + [f"beams={b}" for b in BEAMS],
        rows, width=16)
    report("fig_5_11_radar_scaling", table)
    # growing beams degrades the reduction for every channel count
    for ch in CHANNELS:
        assert grid[(ch, BEAMS[0])] > grid[(ch, BEAMS[-1])], \
            [(b, grid[(ch, b)]) for b in BEAMS]


def test_beams_hurt_more_than_channels(benchmark, grid):
    once(benchmark)
    """§5.7: 'degradation due to increasing Beams is much more pronounced
    than increasing Channels.'"""
    beam_drop = grid[(CHANNELS[0], BEAMS[0])] - grid[(CHANNELS[0],
                                                      BEAMS[-1])]
    chan_drop = grid[(CHANNELS[0], BEAMS[0])] - grid[(CHANNELS[-1],
                                                      BEAMS[0])]
    assert beam_drop > chan_drop
