"""Figure 5-3: execution speedup for maximal linear replacement, maximal
frequency replacement, and automatic selection.

Speedup is the paper's metric: % decrease in execution time per output
((t_orig / t_opt - 1) * 100).  Our substrate substitution (interpreted
IR vs vectorized numpy kernels) inflates absolute numbers — see
EXPERIMENTS.md — but the shape holds: every benchmark speeds up under
autosel, and Radar only benefits under autosel.
"""

from __future__ import annotations

import pytest

from bench_common import BENCH_NAMES, measured, run_config_in_benchmark
from conftest import once, report
from repro.bench import format_table, speedup_percent


def compute_rows():
    rows = []
    for name in BENCH_NAMES:
        base = measured(name, "original").seconds_per_output
        row = [name]
        for config in ("linear", "freq", "autosel"):
            after = measured(name, config).seconds_per_output
            row.append(speedup_percent(base, after))
        rows.append(row)
    avg = ["average"] + [
        sum(r[i] for r in rows) / len(rows) for i in (1, 2, 3)]
    return rows + [avg]


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


@pytest.mark.parametrize("name", ["RateConvert", "Radar"])
def test_speedup_benchmark(benchmark, name):
    run_config_in_benchmark(benchmark, name, "autosel")


def test_fig_5_3(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-3: execution speedup (% decrease in time/output)",
        ["Benchmark", "linear", "freq", "autosel"], rows)
    report("fig_5_3_speedup", table)
    by_name = {r[0]: r for r in rows}
    # the paper's headline: large average speedup under autosel
    assert by_name["average"][3] > 100.0
    # every benchmark gets faster (or at worst stays even) under autosel
    for name in BENCH_NAMES:
        assert by_name[name][3] > -10.0, (name, by_name[name])
