"""Streaming sessions vs one-shot wrappers: steady-state throughput.

Sessions are the compile-once surface of the plan pipeline: one
``repro.compile`` builds the plan, then ``run``/``push`` advance it
incrementally.  The sweep times three strategies per app:

* ``us/out (batch)``   — a fresh session per run, one ``run(n)`` pull
  (the one-shot wrapper's cost, minus plan setup, which ``compile``
  pays outside the timer);
* ``us/out (chunked)`` — a push session fed fixed-size ndarray chunks
  (``bench --chunked``): the app's source/Collector harness is
  replaced by the ndarray-native ChunkSource/ArrayCollector pair;
* ``x (chk)``          — batch/chunked throughput ratio (>= 1 means
  streaming is at least as fast per output as batch).

The CI bar (mirrored in the workflow): chunked plan-backend throughput
on FIR(256) stays >= 0.9x the batch session row.
"""

from __future__ import annotations

import time

import pytest

from conftest import once, report
from repro.apps import filterbank, fir, iir
from repro.bench import (DEFAULT_CHUNK_SIZE, DEFAULT_OUTPUTS, format_table,
                         measure, measure_chunked)
from repro.exec import clear_plan_cache

CASES = [
    ("FIR(256)", fir.build, 8192),
    ("FilterBank", filterbank.build, 2000),
    ("IIR", iir.build, 20000),
]


@pytest.fixture(scope="module")
def sweep():
    clear_plan_cache()
    rows = []
    metrics = {}
    for name, build, n_outputs in CASES:
        m_batch = measure(build(), "original", n_outputs, backend="plan")
        m_chunk = measure_chunked(build(), "original", n_outputs,
                                  backend="plan",
                                  chunk_size=DEFAULT_CHUNK_SIZE)
        ratio = (m_batch.seconds_per_output
                 / max(m_chunk.seconds_per_output, 1e-12))
        rows.append([name, n_outputs, DEFAULT_CHUNK_SIZE,
                     1e6 * m_batch.seconds_per_output,
                     1e6 * m_chunk.seconds_per_output, ratio])
        metrics[name] = {"batch": m_batch, "chunked": m_chunk,
                         "ratio": ratio}
    return rows, metrics


def test_sessions_throughput_table(benchmark, sweep):
    once(benchmark)
    rows, _ = sweep
    table = format_table(
        "Streaming sessions: batch pull vs fixed-size chunked push "
        "(plan backend)\n(compile outside the timed region; chunked = "
        "ndarray push harness)",
        ["program", "outputs", "chunk", "us/out (batch)",
         "us/out (chunked)", "x (chk)"],
        rows, width=17)
    report("sessions", table)
    assert len(rows) == len(CASES)


def test_chunked_fir_meets_bar(benchmark, sweep):
    """CI bar: chunked FIR(256) throughput >= 0.9x the batch row."""
    once(benchmark)
    _, metrics = sweep
    assert metrics["FIR(256)"]["ratio"] >= 0.9


def test_chunked_flops_scale_with_outputs(benchmark, sweep):
    """The chunked run does the same work per output as batch (its
    absolute totals differ only by the harness swap and overshoot)."""
    once(benchmark)
    _, metrics = sweep
    m = metrics["FIR(256)"]
    per_out_chunk = m["chunked"].flops_per_output
    per_out_batch = m["batch"].flops_per_output
    # batch includes the app's scalar source firings; chunked feeds
    # pregenerated input, so it can only be cheaper per output
    assert per_out_chunk <= per_out_batch


def test_session_amortizes_plan_setup(benchmark):
    """Steady state: advancing a live session is much cheaper than
    rebuilding one-shot state every call at equal output totals."""
    once(benchmark)
    from repro.runtime import NullProfiler
    import repro

    clear_plan_cache()
    n, calls = 2048, 8
    session = repro.compile(fir.build(), backend="plan",
                            profiler=NullProfiler())
    session.run(256)  # warm the kernels
    t0 = time.perf_counter()
    for _ in range(calls):
        session.run(n)
    t_session = time.perf_counter() - t0

    from repro.runtime import run_graph
    run_graph(fir.build(), 256, backend="plan")  # warm the cache
    t0 = time.perf_counter()
    for _ in range(calls):
        run_graph(fir.build(), n, backend="plan")
    t_oneshot = time.perf_counter() - t0
    # every one-shot call pays graph build + fingerprint + executor
    # construction; the session pays none of that
    assert t_session < t_oneshot
