"""Figure 5-1: elimination of floating point operations by maximal linear
replacement, maximal frequency replacement, and automatic selection.

The paper reports % of FLOPs removed relative to the original program;
the expected shape: large removals everywhere except Radar, where linear
and freq *add* FLOPs and only autosel removes them.
"""

from __future__ import annotations

import pytest

from bench_common import BENCH_NAMES, measured, run_config_in_benchmark
from conftest import once, report
from repro.bench import format_table, removal_percent


def compute_rows():
    rows = []
    for name in BENCH_NAMES:
        base = measured(name, "original").flops_per_output
        row = [name]
        for config in ("linear", "freq", "autosel"):
            after = measured(name, config).flops_per_output
            row.append(removal_percent(base, after))
        rows.append(row)
    avg = ["average"] + [
        sum(r[i] for r in rows) / len(rows) for i in (1, 2, 3)]
    return rows + [avg]


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


@pytest.mark.parametrize("config", ["original", "linear", "freq", "autosel"])
def test_fir_configs_benchmark(benchmark, config):
    run_config_in_benchmark(benchmark, "FIR", config)


def test_fig_5_1(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-1: % floating point operations removed",
        ["Benchmark", "linear", "freq", "autosel"], rows)
    report("fig_5_1_flops", table)
    by_name = {r[0]: r for r in rows}
    # headline claim: autosel removes a large share of FLOPs on average
    assert by_name["average"][3] > 50.0
    # autosel never does worse than doing nothing
    for name in BENCH_NAMES:
        assert by_name[name][3] >= -1e-6


def test_autosel_at_least_as_good_as_pure_strategies(benchmark, rows):
    once(benchmark)
    """§5.2: 'Automatic selection always performs at least as well as the
    other two options' (FLOPs view, small tolerance for measurement)."""
    for row in rows[:-1]:
        assert row[3] >= max(row[1], row[2]) - 2.0, row


def test_radar_degrades_without_selection(benchmark, rows):
    once(benchmark)
    """§5.2: linear/freq hurt Radar; autosel still removes FLOPs."""
    radar = next(r for r in rows if r[0] == "Radar")
    assert radar[1] < radar[3]
    assert radar[2] < 0  # frequency replacement adds FLOPs on Radar
    assert radar[3] > 0
