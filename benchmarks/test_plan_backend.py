"""Vectorized plan backend (plain and optimizing) vs the scalar backend.

The thesis' uniprocessor backend fires filters one item at a time; the
plan backend executes the same schedule in batches.  Since PR 2 the plan
pipeline also (a) rewrites the graph first (``optimize=`` — maximal
linear/frequency replacement or the batched-cost selection DP), (b) runs
collapsed tall-peek filters as batched overlap-save FFT convolutions,
and (c) caches plans + schedule traces by graph content, so repeated
runs skip rewriting, extraction probing, and rate simulation.

Since PR 3 feedback loops execute as plan *islands* (hybrid islanding),
so the sweep includes two feedback-bearing rows (Echo, VocoderEcho).

The sweep measures wall-clock per output on FIR, FilterBank, Radar,
Vocoder, Echo and VocoderEcho under four execution strategies:

* ``us/out (c)``     — scalar compiled backend,
* ``us/out (cold)``  — the PR 1 plan backend: no cache, no rewrite,
  planning paid on every run,
* ``us/out (plan)``  — cached plan backend, ``optimize="none"``,
* ``us/out (auto)``  — cached plan backend, ``optimize="auto"``,

asserting FLOP parity (plain plan vs compiled), that the auto run's FLOP
profile equals the selection DP's predicted implementation executed on
the scalar backend, and the ISSUE speedup bars.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import once, report
from repro.apps import echo, filterbank, fir, iir, radar, vocoder
from repro.bench import format_table
from repro.exec import clear_plan_cache, plan_executor_for
from repro.profiling import NullProfiler, Profiler
from repro.runtime import run_graph
from repro.selection import select_optimizations

CASES = [
    ("FIR(64)", lambda: fir.build(taps=64), 8192),
    ("FIR(256)", lambda: fir.build(taps=256), 8192),
    ("FilterBank", filterbank.build, 2000),
    ("Radar", radar.build, 256),
    ("Vocoder", vocoder.build, 1200),
    ("Echo(1024)", echo.build, 20000),
    ("VocoderEcho", vocoder.build_feedback, 1200),
    ("IIR", iir.build, 20000),
]

#: Feedback rows: value parity is exact, but the island advances the
#: cycle in whole steady iterations, so tail-of-run FLOP counts (and
#: the DP's scalar-predicted profile) are not bit-identical.
FEEDBACK_CASES = {"Echo(1024)", "VocoderEcho"}


def _time_backend(build, n_outputs, backend, optimize="none", repeats=3):
    """Best-of-k wall clock, so one noisy sample can't fail CI."""
    run_graph(build(), min(n_outputs, 256), NullProfiler(), backend=backend,
              optimize=optimize)  # warmup (also warms the plan cache)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_graph(build(), n_outputs, NullProfiler(), backend=backend,
                  optimize=optimize)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_cold_plan(build, n_outputs, repeats=3):
    """The PR 1 plan backend: planning from scratch on every run."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        plan_executor_for(build(), NullProfiler(),
                          cache=False).run(n_outputs)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_plan_f32(build, n_outputs, repeats=3):
    """The cached plan backend under the float32 numeric policy."""
    from repro.session import StreamSession

    def run_once(n):
        session = StreamSession(build(), backend="plan", dtype="f32",
                                profiler=NullProfiler(),
                                _program_mode=True)
        try:
            session._advance_raw(n)
        finally:
            session.close()

    run_once(min(n_outputs, 256))  # warm the f32-keyed plan cache
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once(n_outputs)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def sweep():
    clear_plan_cache()
    rows = []
    metrics = {}
    for name, build, n_outputs in CASES:
        p_c, p_p, p_a = Profiler(), Profiler(), Profiler()
        out_c = run_graph(build(), n_outputs, p_c, backend="compiled")
        out_p = run_graph(build(), n_outputs, p_p, backend="plan")
        out_a = run_graph(build(), n_outputs, p_a, backend="plan",
                          optimize="auto")
        np.testing.assert_allclose(out_p, out_c, atol=1e-9)
        np.testing.assert_allclose(out_a, out_c, atol=1e-7)
        if name not in FEEDBACK_CASES:
            assert p_c.counts.flops == p_p.counts.flops
            # the auto plan's FLOP profile must equal the DP's predicted
            # implementation executed on the scalar backend
            predicted = select_optimizations(build(), cost_model="batched",
                                             stateful=True).stream
            p_pred = Profiler()
            run_graph(predicted, n_outputs, p_pred, backend="compiled")
            assert p_a.counts.flops == p_pred.counts.flops
        t_c = _time_backend(build, n_outputs, "compiled")
        t_cold = _time_cold_plan(build, n_outputs)
        t_p = _time_backend(build, n_outputs, "plan")
        t_a = _time_backend(build, n_outputs, "plan", "auto")
        t_f32 = _time_plan_f32(build, n_outputs)
        rows.append([name, n_outputs,
                     1e6 * t_c / n_outputs, 1e6 * t_cold / n_outputs,
                     1e6 * t_p / n_outputs, 1e6 * t_a / n_outputs,
                     1e6 * t_f32 / n_outputs,
                     t_c / t_p, t_c / t_a])
        metrics[name] = {"compiled": t_c, "cold": t_cold, "plan": t_p,
                         "auto": t_a, "plan_f32": t_f32,
                         "auto_flops": p_a.counts.flops,
                         "plan_flops": p_p.counts.flops}
    return rows, metrics


def test_plan_backend_speedup_table(benchmark, sweep):
    once(benchmark)
    rows, _ = sweep
    table = format_table(
        "Optimizing plan pipeline vs compiled backend: wall-clock per "
        "output\n(cold = PR 1 behavior: no plan cache, no rewrite; "
        "auto = optimize=\"auto\"; f32 = plan under the float32 policy)",
        ["program", "outputs", "us/out (c)", "us/out (cold)",
         "us/out (plan)", "us/out (auto)", "us/out (f32)",
         "x (plan)", "x (auto)"],
        rows, width=14)
    report("plan_backend", table)
    assert len(rows) == len(CASES)


def test_plan_speedup_meets_bar_on_fir(benchmark, sweep):
    """Acceptance: >= 3x over compiled on FIR at N >= 64 taps."""
    once(benchmark)
    rows, _ = sweep
    speedups = {row[0]: row[7] for row in rows}
    assert speedups["FIR(64)"] >= 3.0
    assert speedups["FIR(256)"] >= 3.0


def test_optimized_plan_beats_pr1_plan(benchmark, sweep):
    """Acceptance: optimize="auto" beats the PR 1 plan backend (cold
    planning, graph as written) on FilterBank and Radar."""
    once(benchmark)
    _, metrics = sweep
    for name in ("FilterBank", "Radar"):
        assert metrics[name]["auto"] < metrics[name]["cold"], name


def test_optimized_plan_beats_cached_plan_on_filterbank(benchmark, sweep):
    """The rewrite itself (not just caching) pays: FilterBank's collapsed
    graph beats the as-written graph under the same cached planner."""
    once(benchmark)
    _, metrics = sweep
    assert metrics["FilterBank"]["auto"] < metrics["FilterBank"]["plan"]


def test_stateful_app_meets_plan_bar(benchmark, sweep):
    """Acceptance: the stateful-linear IIR cascade advances through
    lifted StatefulLinearStep kernels — >= 10x over compiled."""
    once(benchmark)
    _, metrics = sweep
    assert metrics["IIR"]["compiled"] / metrics["IIR"]["plan"] >= 10.0


def test_feedback_apps_meet_plan_bar(benchmark, sweep):
    """Acceptance: feedback-bearing apps no longer forfeit the plan
    backend — Echo must beat compiled outright (its non-loop region and
    its linear loop body both batch), and VocoderEcho must at least
    match it despite the cycle."""
    once(benchmark)
    _, metrics = sweep
    assert metrics["Echo(1024)"]["compiled"] / \
        metrics["Echo(1024)"]["plan"] >= 1.0
    assert metrics["VocoderEcho"]["compiled"] / \
        metrics["VocoderEcho"]["plan"] >= 0.9


def test_radar_well_above_its_pr1_speedup(benchmark, sweep):
    """Acceptance: Radar was 1.5x over compiled under PR 1; the cached
    optimizing pipeline must be well above that."""
    once(benchmark)
    _, metrics = sweep
    assert metrics["Radar"]["compiled"] / metrics["Radar"]["auto"] > 2.0


def test_plan_never_slows_down(benchmark, sweep):
    """Fallback-heavy programs approach compiled speed from above; allow
    timing noise but catch real regressions."""
    once(benchmark)
    rows, _ = sweep
    assert all(row[7] > 0.8 for row in rows)


def test_float32_plan_on_par_with_compiled(benchmark, sweep):
    """The reduced-precision plan path must not forfeit the plan
    backend's advantage: float32 FIR stays at least on par with the
    scalar compiled backend (locally it matches the f64 plan row)."""
    once(benchmark)
    _, metrics = sweep
    assert metrics["FIR(256)"]["compiled"] / \
        metrics["FIR(256)"]["plan_f32"] >= 1.0
