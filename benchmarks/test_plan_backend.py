"""Vectorized plan backend vs the scalar compiled backend.

The thesis' uniprocessor backend fires filters one item at a time; the
plan backend executes the same schedule in batches, turning linear
filters into a single NumPy matrix product per chunk.  This sweep
measures wall-clock per output on FIR (the paper's canonical linear
filter, at several tap sizes), FilterBank, and Radar, asserting the
FLOP profile is untouched and the ISSUE's >= 3x speedup bar holds for
FIR at N >= 64 taps.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import once, report
from repro.apps import filterbank, fir, radar
from repro.bench import format_table
from repro.profiling import NullProfiler, Profiler
from repro.runtime import run_graph

CASES = [
    ("FIR(64)", lambda: fir.build(taps=64), 8192),
    ("FIR(256)", lambda: fir.build(taps=256), 8192),
    ("FilterBank", filterbank.build, 2000),
    ("Radar", radar.build, 256),
]


def _time_backend(build, n_outputs, backend, repeats=3):
    """Best-of-k wall clock, so one noisy sample can't fail CI."""
    run_graph(build(), min(n_outputs, 256), NullProfiler(), backend)  # warmup
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_graph(build(), n_outputs, NullProfiler(), backend)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for name, build, n_outputs in CASES:
        p_c, p_p = Profiler(), Profiler()
        out_c = run_graph(build(), n_outputs, p_c, "compiled")
        out_p = run_graph(build(), n_outputs, p_p, "plan")
        np.testing.assert_allclose(out_p, out_c, atol=1e-9)
        assert p_c.counts.flops == p_p.counts.flops
        t_c = _time_backend(build, n_outputs, "compiled")
        t_p = _time_backend(build, n_outputs, "plan")
        rows.append([name, n_outputs, 1e6 * t_c / n_outputs,
                     1e6 * t_p / n_outputs, t_c / t_p])
    return rows


def test_plan_backend_speedup_table(benchmark, sweep):
    once(benchmark)
    table = format_table(
        "Plan (vectorized) vs compiled backend: wall-clock per output",
        ["program", "outputs", "us/out (c)", "us/out (plan)", "speedup"],
        sweep, width=14)
    report("plan_backend", table)
    assert len(sweep) == len(CASES)


def test_plan_speedup_meets_bar_on_fir(benchmark, sweep):
    """Acceptance: >= 3x over compiled on FIR at N >= 64 taps."""
    once(benchmark)
    speedups = {row[0]: row[4] for row in sweep}
    assert speedups["FIR(64)"] >= 3.0
    assert speedups["FIR(256)"] >= 3.0


def test_plan_never_slows_down(benchmark, sweep):
    """Fallback-heavy programs (Radar: stateful sources, nonlinear
    magnitude/detector) approach compiled speed from above; allow timing
    noise but catch real regressions."""
    once(benchmark)
    assert all(row[4] > 0.8 for row in sweep)
