"""Ablation: the chanPop granularity knob in pipeline combination.

§3.3.2 notes that ``chanPop`` may be *any* common multiple of (u1, o2),
not just the lcm: when the downstream filter peeks (e2 > o2), the
expanded upstream node regenerates ``chanPeek - chanPop`` items per
firing, and growing chanPop shrinks that regenerated fraction.

The sweep quantifies what that means for the *collapsed* node: the
regeneration is absorbed into the matrix product, so multiplications per
output are invariant to chanPop (each output column is the same
composite kernel regardless of firing granularity), while matrix storage
(nnz) and peek depth grow linearly with the multiplier.  The lcm choice
is therefore optimal for the time-domain implementation — the
cost/benefit the paper's selector implicitly encodes by using it.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import once, report
from repro.bench import format_table
from repro.linear import LinearFilter, LinearNode
from repro.linear.pipeline_comb import combine_pipeline_pair
from repro.profiling import Profiler
from repro.runtime import run_stream

MULTIPLIERS = [1, 2, 4, 8, 16]


def make_nodes():
    rng = np.random.default_rng(7)
    n1 = LinearNode(rng.normal(size=(4, 1)), np.zeros(1), 4, 1, 1)
    # downstream peeks 12, pops 2: heavy regeneration at small chanPop
    n2 = LinearNode(rng.normal(size=(12, 1)), np.zeros(1), 12, 2, 1)
    return n1, n2


def mults_per_output(combined: LinearNode) -> float:
    prof = Profiler()
    rng = np.random.default_rng(8)
    n_out = 40 * combined.push
    inputs = rng.normal(size=combined.peek + combined.pop * 50).tolist()
    run_stream(LinearFilter(combined), inputs, n_out, profiler=prof)
    return prof.counts.mults / n_out


@pytest.fixture(scope="module")
def sweep():
    n1, n2 = make_nodes()
    base_chan_pop = np.lcm(n1.push, n2.pop)
    rows = []
    for k in MULTIPLIERS:
        combined = combine_pipeline_pair(n1, n2,
                                         chan_pop=int(base_chan_pop) * k)
        regen = (combined.pop // n2.pop) * n2.pop  # channel items consumed
        rows.append([
            k,
            combined.peek,
            combined.push,
            combined.nnz,
            mults_per_output(combined),
        ])
    return rows


def test_chanpop_sweep(benchmark, sweep):
    once(benchmark)
    table = format_table(
        "Ablation: chanPop multiplier in pipeline combination "
        "(peeking downstream)",
        ["k", "peek", "push", "nnz", "mults/output"], sweep, width=14)
    report("ablation_chanpop", table)
    assert len(sweep) == len(MULTIPLIERS)


def test_per_output_work_invariant_but_storage_grows(benchmark, sweep):
    once(benchmark)
    per_out = [row[4] for row in sweep]
    # collapsed per-output multiplications do not depend on chanPop
    assert max(per_out) - min(per_out) < 1e-9
    # ... but matrix size grows linearly with the multiplier
    nnz = [row[3] for row in sweep]
    assert nnz[-1] == nnz[0] * MULTIPLIERS[-1]
    peeks = [row[1] for row in sweep]
    assert peeks == sorted(peeks) and peeks[-1] > peeks[0]


def test_all_granularities_equivalent(benchmark, sweep):
    once(benchmark)
    n1, n2 = make_nodes()
    rng = np.random.default_rng(9)
    inputs = rng.normal(size=200)
    mid = n1.reference_run(inputs, firings=180)
    expected = n2.reference_run(mid, firings=60)
    for k in MULTIPLIERS:
        combined = combine_pipeline_pair(
            n1, n2, chan_pop=int(np.lcm(n1.push, n2.pop)) * k)
        firings = 60 * n2.pop // combined.pop
        got = combined.reference_run(inputs, firings=max(firings, 1))
        m = min(len(got), len(expected))
        np.testing.assert_allclose(got[:m], expected[:m], atol=1e-9,
                                   err_msg=f"k={k}")
