"""Figure 5-12: FFT savings, theory vs practice.

For a grid of (FIR size, FFT size) this reports the multiplication
reduction *factor* (original mults/output over optimized mults/output)
for four strategies:

  a) the theoretical N^2 vs N lg N prediction,
  b) the naive transformation with the simple (radix-2) FFT,
  c) the optimized transformation with the simple FFT,
  d) the optimized transformation with the FFTW-model backend.

Expected shape: d > c > b everywhere, c/b ~ the paper's 1.5x, d/c a
several-fold improvement, and all factors growing with FIR size.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import once, report
from repro.bench import format_table
from repro.frequency import make_frequency_stream
from repro.linear import LinearNode
from repro.profiling import Profiler
from repro.runtime import run_stream

FIR_SIZES = [8, 16, 32, 64, 128]
FFT_SIZES = [64, 128, 256, 512]
N_OUT = 256


def _node(n_taps: int) -> LinearNode:
    coeffs = [math.sin(0.3 * k) + 1.1 for k in range(n_taps)]
    return LinearNode.from_coefficients([coeffs], [0.0], pop=1)


def mults_per_output(node, strategy, backend, fft_size) -> float:
    stream = make_frequency_stream(node, strategy=strategy,
                                   backend=backend, fft_size=fft_size)
    prof = Profiler()
    rng = np.random.default_rng(0)
    # enough outputs for many steady firings, so the one-off initWork of
    # the optimized strategy (which behaves like the naive one) amortizes
    n_out = max(N_OUT, 12 * fft_size)
    inputs = rng.normal(size=n_out + 4 * fft_size).tolist()
    run_stream(stream, inputs, n_out, profiler=prof)
    return prof.counts.mults / n_out


def theoretical_factor(e: int, n: int) -> float:
    """e mults direct vs (2 FFTs + pointwise product) per m outputs."""
    m = n - 2 * e + 1
    if m < 1:
        return float("nan")
    freq_mults = (2 * (n / 2) * math.log2(n) * 4 + 4 * n) / m
    return e / freq_mults


def compute_grid():
    grid = {}
    for e in FIR_SIZES:
        node = _node(e)
        for n in FFT_SIZES:
            if n - 2 * e + 1 < 1:
                continue
            base = float(e)  # direct mults per output
            grid[(e, n)] = {
                "theory": theoretical_factor(e, n),
                "naive": base / mults_per_output(node, "naive", "simple", n),
                "optimized": base / mults_per_output(node, "optimized",
                                                     "simple", n),
                "fftw": base / mults_per_output(node, "optimized", "fftw",
                                                n),
            }
    return grid


@pytest.fixture(scope="module")
def grid():
    return compute_grid()


def test_fft_savings_benchmark(benchmark):
    node = _node(64)
    stream = make_frequency_stream(node, strategy="optimized",
                                   backend="fftw", fft_size=256)
    rng = np.random.default_rng(1)
    inputs = rng.normal(size=2000).tolist()
    benchmark.pedantic(lambda: run_stream(stream, inputs, 512),
                       rounds=2, iterations=1, warmup_rounds=1)


def test_fig_5_12(benchmark, grid):
    once(benchmark)
    for key in ("theory", "naive", "optimized", "fftw"):
        rows = []
        for e in FIR_SIZES:
            row = [f"fir={e}"]
            for n in FFT_SIZES:
                cell = grid.get((e, n))
                row.append(round(cell[key], 2) if cell else float("nan"))
            rows.append(row)
        table = format_table(
            f"Figure 5-12 ({key}): multiplication reduction factor",
            ["fir\\fft"] + [f"N={n}" for n in FFT_SIZES], rows, width=12)
        report(f"fig_5_12_{key}", table)
    assert grid


def test_optimized_beats_naive(benchmark, grid):
    once(benchmark)
    """§5.8: the optimized transformation improves on the naive one (the
    paper reports ~1.5x).  The gain concentrates where the FFT is tight
    for the filter (N ~ 2e, the thesis' default sizing): there the naive
    strategy yields only m = N-2e+1 outputs per block while the optimized
    one yields m+e-1.  For N >> e the two converge, so we assert
    never-worse everywhere and a strong win in the tight regime."""
    ratios = {key: cell["optimized"] / cell["naive"]
              for key, cell in grid.items()}
    assert all(r > 0.99 for r in ratios.values()), ratios
    tight = [r for (e, n), r in ratios.items() if n <= 4 * e]
    assert tight and max(tight) > 1.4, ratios


def test_fftw_beats_simple_fft(benchmark, grid):
    once(benchmark)
    """§5.8: switching the FFT to FFTW gives a further several-fold
    improvement (the paper reports ~6x with all effects included)."""
    ratios = [cell["fftw"] / cell["optimized"] for cell in grid.values()]
    assert all(r > 1.5 for r in ratios)


def test_factors_grow_with_fir_size(benchmark, grid):
    once(benchmark)
    for n in FFT_SIZES:
        col = [grid[(e, n)]["fftw"] for e in FIR_SIZES
               if (e, n) in grid]
        assert col[-1] > col[0]
