"""Benchmark-harness plumbing.

Each figure/table module registers its formatted text table with
:func:`report`; the tables are (a) written to ``results/<name>.txt`` and
(b) echoed into the pytest terminal summary, so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
every reproduced table and series alongside the timing statistics.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
_REPORTS: list[tuple[str, str]] = []


def once(benchmark, fn=None, *args):
    """Route a computation through pytest-benchmark exactly once.

    Every harness test calls this so it participates in
    ``--benchmark-only`` runs (pytest-benchmark skips fixture-less tests
    there); expensive sweeps are still memoized at module scope.
    """
    return benchmark.pedantic(fn if fn is not None else (lambda: None),
                              args=args, rounds=1, iterations=1)


def report(name: str, text: str) -> None:
    """Register a reproduced table/series for the terminal summary."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    _REPORTS.append((name, text))


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "reproduced tables and figures")
    for name, text in _REPORTS:
        tr.write_line("")
        for line in text.splitlines():
            tr.write_line(line)
    tr.write_line("")
    tr.write_line(f"(also written to {os.path.abspath(_RESULTS_DIR)}/)")
