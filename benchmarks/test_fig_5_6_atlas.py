"""Figure 5-6: linear replacement with an ATLAS-style BLAS matrix multiply
vs the direct (zero-skipping) generated code.

Our ATLAS stand-in is numpy's BLAS-backed dense dot.  As in the paper,
the tuned kernel helps on some benchmarks and hurts on others (the dense
product cannot skip the zero runs the direct code elides, and the call
overhead dominates small nodes).
"""

from __future__ import annotations

import pytest

from bench_common import BENCH_NAMES, measured, run_config_in_benchmark
from conftest import once, report
from repro.bench import format_table, speedup_percent


def compute_rows():
    rows = []
    for name in BENCH_NAMES:
        base = measured(name, "original").seconds_per_output
        direct = measured(name, "linear").seconds_per_output
        blas = measured(name, "linear_blas").seconds_per_output
        rows.append([name,
                     speedup_percent(base, direct),
                     speedup_percent(base, blas)])
    return rows


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


def test_atlas_benchmark(benchmark):
    run_config_in_benchmark(benchmark, "Oversampler", "linear_blas")


def test_fig_5_6(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-6: speedup of linear replacement, direct vs BLAS "
        "(ATLAS stand-in)",
        ["Benchmark", "direct", "blas"], rows)
    report("fig_5_6_atlas", table)
    # both backends compute the same thing; results must exist for all
    assert len(rows) == len(BENCH_NAMES)


def test_blas_equivalent_outputs(benchmark):
    once(benchmark)
    from bench_common import build
    from repro.bench import build_config
    from repro.runtime import run_graph
    import numpy as np

    for name in ("FilterBank", "Oversampler"):
        a = run_graph(build_config(build(name), "linear"), 64)
        b = run_graph(build_config(build(name), "linear_blas"), 64)
        np.testing.assert_allclose(a, b, atol=1e-8)
