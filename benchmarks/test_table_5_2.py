"""Table 5.2: benchmark characteristics before and after autosel.

Reproduces both halves of the table: construct counts (with how many of
each are linear) and the average combined-vector size before
optimization, then the construct counts of the automatically optimized
programs.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_common import BENCH_NAMES, build
from conftest import once, report
from repro.bench import build_config
from repro.graph import (FeedbackLoop, Filter, Pipeline, PrimitiveFilter,
                         SplitJoin, walk)
from repro.bench import format_table
from repro.linear import analyze


def characterize(stream, lmap=None):
    if lmap is None:
        lmap = analyze(stream)
    counts = {"filters": 0, "lin_filters": 0, "pipelines": 0,
              "lin_pipelines": 0, "splitjoins": 0, "lin_splitjoins": 0}
    vector_sizes = []
    for s in walk(stream):
        linear = lmap.is_linear(s)
        if isinstance(s, (Filter, PrimitiveFilter)):
            counts["filters"] += 1
            counts["lin_filters"] += linear
        elif isinstance(s, Pipeline):
            counts["pipelines"] += 1
            counts["lin_pipelines"] += linear
        elif isinstance(s, SplitJoin):
            counts["splitjoins"] += 1
            counts["lin_splitjoins"] += linear
        if linear:
            node = lmap.node_for(s)
            vector_sizes.append(node.peek * node.push)
    counts["avg_vector"] = float(np.mean(vector_sizes)) if vector_sizes \
        else 0.0
    return counts


def compute_table():
    before_rows, after_rows = [], []
    for name in BENCH_NAMES:
        program = build(name)
        c = characterize(program)
        before_rows.append([
            name,
            f"{c['filters']} ({c['lin_filters']})",
            f"{c['pipelines']} ({c['lin_pipelines']})",
            f"{c['splitjoins']} ({c['lin_splitjoins']})",
            round(c["avg_vector"], 0),
        ])
        optimized = build_config(program, "autosel")
        a = characterize(optimized)
        after_rows.append([
            name, a["filters"], a["pipelines"], a["splitjoins"],
        ])
    before = format_table(
        "Table 5.2 (top): benchmark characteristics, original programs",
        ["Benchmark", "Filters(lin)", "Pipes(lin)", "SJs(lin)",
         "AvgVector"],
        before_rows, width=15)
    after = format_table(
        "Table 5.2 (bottom): after automatic optimization selection",
        ["Benchmark", "Filters", "Pipelines", "SplitJoins"],
        after_rows, width=15)
    return before + "\n\n" + after


@pytest.fixture(scope="module")
def table():
    return compute_table()


def test_table_5_2(benchmark, table):
    benchmark.pedantic(lambda: characterize(build("FIR")),
                       rounds=3, iterations=1)
    report("table_5_2", table)
    assert "FIR" in table


def test_autosel_reduces_construct_count(benchmark, table):
    once(benchmark)
    """After optimization every benchmark has at most as many filters."""
    for name in BENCH_NAMES:
        before = characterize(build(name))
        after = characterize(build_config(build(name), "autosel"))
        assert after["filters"] <= before["filters"]
