"""Measured vs analytic cost-model decisions (thesis §5's ATLAS argument).

The selection DP prices the frequency-vs-linear choice with an analytic
FFT throughput penalty (:data:`~repro.selection.costs
.FFT_THROUGHPUT_PENALTY`, 2.0x) unless a calibration cache measured the
real fft/matmul ns-per-flop ratio of this machine
(:mod:`repro.exec.calibrate`).  This module calibrates into a throwaway
cache directory and reports, side by side, the penalty and the resulting
DP decision under the analytic model and under the measured one — plus
the measured stateful scan block length against the fixed 128 cap.

The table lands in ``results/calibration.txt``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from conftest import once, report
from repro.bench import format_table
from repro.exec import calibrate as C
from repro.exec.kernels import stateful_block_length
from repro.frequency.fftlib import fft_size_for
from repro.linear.node import LinearNode
from repro.numeric import POLICIES
from repro.selection.costs import (FFT_THROUGHPUT_PENALTY,
                                   batched_direct_cost,
                                   batched_frequency_cost,
                                   frequency_block_flops)

#: FIR depths spanning the matmul/FFT crossover region.
TAPS = (16, 64, 256, 1024)

POLICY_NAMES = ("f64", "f32")


def _fir_node(taps: int) -> LinearNode:
    return LinearNode(A=np.full((taps, 1), 1.0 / taps), b=np.zeros(1),
                      peek=taps, pop=1, push=1)


@pytest.fixture(scope="module")
def calibration(tmp_path_factory):
    """A real calibration measured into a throwaway cache directory."""
    prev = os.environ.get("REPRO_CALIBRATION_DIR")
    os.environ["REPRO_CALIBRATION_DIR"] = \
        str(tmp_path_factory.mktemp("calib"))
    C.reset_calibration_cache()
    try:
        cal, measured = C.ensure_calibration(dtypes=POLICY_NAMES)
        yield cal, measured
    finally:
        if prev is None:
            os.environ.pop("REPRO_CALIBRATION_DIR", None)
        else:
            os.environ["REPRO_CALIBRATION_DIR"] = prev
        C.reset_calibration_cache()


def _decision(node: LinearNode, policy) -> str:
    freq = batched_frequency_cost(node, policy=policy)
    direct = batched_direct_cost(node)
    return "freq" if freq < direct else "linear"


def test_calibration_decision_table(benchmark, calibration):
    once(benchmark)
    cal, measured = calibration
    assert set(measured) == set(POLICY_NAMES)
    rows = []
    for name in POLICY_NAMES:
        policy = POLICIES[name]
        for taps in TAPS:
            node = _fir_node(taps)
            n = fft_size_for(taps)
            ratio = cal.fft_matmul_ratio(name, peek=taps, fft_size=n)
            assert ratio is not None and ratio > 0
            with C.analytic_only():
                d_analytic = _decision(node, policy)
            d_measured = _decision(node, policy)
            rows.append([name, taps, n, FFT_THROUGHPUT_PENALTY,
                         round(ratio, 3), d_analytic, d_measured])
    decisions = format_table(
        "Selection DP: FFT-vs-matmul penalty and the resulting decision\n"
        "(analytic = modeled 2.0x constant; measured = this machine's "
        "calibrated\nfft/matmul ns-per-flop ratio)",
        ["dtype", "taps", "fft n", "penalty (a)", "penalty (m)",
         "decision (a)", "decision (m)"],
        rows, width=14)

    blocks = []
    for name in POLICY_NAMES:
        policy = POLICIES[name]
        with C.analytic_only():
            fixed = stateful_block_length(1, 1, policy)
        calibrated = stateful_block_length(1, 1, policy)
        # pop=push=1 makes the block equal the cap itself, so the
        # calibrated call must return exactly the measured block
        assert fixed == 128
        assert calibrated == cal.stateful_block[name]
        blocks.append([name, fixed, calibrated])
    block_table = format_table(
        "Lifted stateful-scan block length (pop=1, push=1)",
        ["dtype", "fixed cap", "calibrated"], blocks, width=14)

    report("calibration", decisions + "\n\n" + block_table)
    assert len(rows) == len(POLICY_NAMES) * len(TAPS)


def test_measured_penalty_feeds_the_cost_model(benchmark, calibration):
    """The cost function must consume the measured ratio verbatim: with
    the calibration active, the frequency cost differs from the analytic
    one exactly by the penalty substitution."""
    once(benchmark)
    cal, _ = calibration
    node = _fir_node(256)
    n = fft_size_for(256)
    for name in POLICY_NAMES:
        policy = POLICIES[name]
        ratio = cal.fft_matmul_ratio(name, peek=256, fft_size=n)
        with C.analytic_only():
            analytic = batched_frequency_cost(node, policy=policy)
        measured = batched_frequency_cost(node, policy=policy)
        if abs(ratio - FFT_THROUGHPUT_PENALTY) > 1e-9:
            assert measured != analytic, name
        # reconstruct: the two costs differ exactly by the penalty
        # substitution on the per-input FFT-block term (pop = 1)
        per_input = frequency_block_flops(node.peek, node.push, n)
        assert np.isclose(measured - analytic,
                          per_input * (ratio - FFT_THROUGHPUT_PENALTY))
