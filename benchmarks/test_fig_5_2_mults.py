"""Figure 5-2: elimination of floating point *multiplications* by maximal
linear replacement, maximal frequency replacement, and automatic
selection — the same runs as Figure 5-1, multiply-family view."""

from __future__ import annotations

import pytest

from bench_common import BENCH_NAMES, measured, run_config_in_benchmark
from conftest import once, report
from repro.bench import format_table, removal_percent


def compute_rows():
    rows = []
    for name in BENCH_NAMES:
        base = measured(name, "original").mults_per_output
        row = [name]
        for config in ("linear", "freq", "autosel"):
            after = measured(name, config).mults_per_output
            row.append(removal_percent(base, after))
        rows.append(row)
    avg = ["average"] + [
        sum(r[i] for r in rows) / len(rows) for i in (1, 2, 3)]
    return rows + [avg]


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


@pytest.mark.parametrize("name", ["FilterBank", "Oversampler"])
def test_autosel_benchmark(benchmark, name):
    run_config_in_benchmark(benchmark, name, "autosel")


def test_fig_5_2(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-2: % floating point multiplications removed",
        ["Benchmark", "linear", "freq", "autosel"], rows)
    report("fig_5_2_mults", table)
    by_name = {r[0]: r for r in rows}
    assert by_name["average"][3] > 50.0


def test_mults_removed_in_roughly_same_proportion_as_flops(benchmark, rows):
    once(benchmark)
    """§5.2: 'multiplies are removed in roughly the same proportion' as
    FLOPs — check autosel columns track within 35 points."""
    from test_fig_5_1_flops import compute_rows as flops_rows

    flops = {r[0]: r[3] for r in flops_rows()}
    for row in rows[:-1]:
        assert abs(row[3] - flops[row[0]]) < 35.0, row
