"""Figures 5-4 and 5-5: the effect of combination.

Figure 5-4 compares multiplication removal (left) and speedup (right)
for linear and frequency replacement with combination enabled vs
disabled ("(nc)").  Figure 5-5 summarizes the speedup delta that
combination contributes.  Expected shapes (§5.3): combination provides
most of the multiplication reduction for linear replacement; frequency
replacement already reduces a lot without combination, and combination
improves it further; FIR (a single filter) shows no difference.
"""

from __future__ import annotations

import pytest

from bench_common import BENCH_NAMES, measured, run_config_in_benchmark
from conftest import once, report
from repro.bench import format_table, removal_percent, speedup_percent


def compute_rows():
    rows = []
    for name in BENCH_NAMES:
        base = measured(name, "original")
        row = [name]
        for config in ("linear_nc", "linear", "freq_nc", "freq"):
            m = measured(name, config)
            row.append(removal_percent(base.mults_per_output,
                                       m.mults_per_output))
        for config in ("linear_nc", "linear", "freq_nc", "freq"):
            m = measured(name, config)
            row.append(speedup_percent(base.seconds_per_output,
                                       m.seconds_per_output))
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


def test_combination_benchmark(benchmark):
    run_config_in_benchmark(benchmark, "FilterBank", "linear_nc")


def test_fig_5_4(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-4: multiplication removal and speedup, with/without "
        "combination",
        ["Benchmark", "lin(nc)%m", "lin%m", "freq(nc)%m", "freq%m",
         "lin(nc)sp", "lin sp", "freq(nc)sp", "freq sp"],
        rows, width=12)
    report("fig_5_4_combination", table)
    by_name = {r[0]: r for r in rows}
    # combination drives most of linear replacement's mult removal on the
    # heavily combinable benchmarks
    for name in ("FMRadio", "FilterBank", "Oversampler"):
        assert by_name[name][2] > by_name[name][1] + 10.0, by_name[name]


def test_fig_5_5(benchmark, rows):
    once(benchmark)
    delta_rows = [[r[0], r[6] - r[5], r[8] - r[7]] for r in rows]
    table = format_table(
        "Figure 5-5: speedup increase due to combination (percentage "
        "points)",
        ["Benchmark", "linear", "freq"], delta_rows)
    report("fig_5_5_combination_delta", table)
    by_name = {r[0]: r for r in delta_rows}
    # FIR is a single filter: combination cannot change anything (§5.3)
    fir_mults = next(r for r in rows if r[0] == "FIR")
    assert abs(fir_mults[2] - fir_mults[1]) < 1e-6
    assert abs(fir_mults[4] - fir_mults[3]) < 1e-6
    assert by_name["FIR"] is not None
