"""Figures 5-8 and 5-9: FIR scaling under frequency replacement.

Figure 5-8 sweeps the FIR length and reports multiplication removal and
speedup; removal should agree with the lg(N)/N-style theoretical curve
(approaching 100% for large N, negative for tiny N).  Figure 5-9 plots
original vs optimized time per output for the same sweep, together with
the selector's cost-model prediction.
"""

from __future__ import annotations

import pytest

from conftest import once, report
from repro.apps import fir
from repro.bench import build_config, format_table, measure, removal_percent
from repro.bench import speedup_percent
from repro.linear import LinearNode
from repro.selection import direct_cost, frequency_cost

SIZES = [2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128]
# enough outputs that even the 128-tap frequency block (which pushes
# m+e-1 = 384 items per firing) completes several steady firings
N_OUT = 2048


def compute_rows():
    rows = []
    for n in SIZES:
        program = fir.build(taps=n)
        base = measure(program, "original", N_OUT)
        freq = measure(program, "freq", N_OUT)
        rows.append([
            n,
            removal_percent(base.mults_per_output, freq.mults_per_output),
            speedup_percent(base.seconds_per_output,
                            freq.seconds_per_output),
            base.seconds_per_output * 1e6,
            freq.seconds_per_output * 1e6,
        ])
    return rows


@pytest.fixture(scope="module")
def rows():
    return compute_rows()


def test_fir_scaling_benchmark(benchmark):
    program = fir.build(taps=64)
    stream = build_config(program, "freq")
    from repro.profiling import NullProfiler
    from repro.runtime import run_graph

    benchmark.pedantic(lambda: run_graph(stream, 128, NullProfiler()),
                       rounds=2, iterations=1, warmup_rounds=1)


def test_fig_5_8(benchmark, rows):
    once(benchmark)
    table = format_table(
        "Figure 5-8: FIR scaling under frequency replacement",
        ["taps", "mult removed %", "speedup %", "t_orig us/out",
         "t_freq us/out"],
        rows, width=16)
    report("fig_5_8_fir_scaling", table)
    by_n = {r[0]: r for r in rows}
    # monotone trend: bigger filters benefit more (compare ends)
    assert by_n[128][1] > by_n[8][1]
    assert by_n[128][1] > 80.0  # large-N removal approaches 100%


def test_fig_5_9(benchmark, rows):
    once(benchmark)
    """Scatter of t_orig vs t_freq plus the cost-model prediction."""
    scatter = []
    for r in rows:
        n = r[0]
        node_cost_ratio = None
        node = LinearNode.from_coefficients([[1.0] * n], [0.0], pop=1)
        node_cost_ratio = frequency_cost(node) / direct_cost(node)
        scatter.append([n, r[3], r[4], node_cost_ratio])
    table = format_table(
        "Figure 5-9: original vs optimized time per output (us), with "
        "the cost-model ratio",
        ["taps", "t_orig", "t_freq", "model t_freq/t_orig"],
        scatter, width=16)
    report("fig_5_9_fir_cost_model", table)
    # the cost model must rank sizes the same way the measurement does:
    # the predicted ratio falls as N grows, as does the measured ratio
    ratios_model = [row[3] for row in scatter]
    assert ratios_model[0] > ratios_model[-1]
    measured_ratio_big = scatter[-1][2] / scatter[-1][1]
    measured_ratio_small = scatter[1][2] / scatter[1][1]
    assert measured_ratio_big < measured_ratio_small * 2.0
