"""Sample-rate conversion: dead-computation elimination via combination.

The paper's §3.3.4 downsampling example: a system *specification* keeps
the low-pass filter and the M-compressor as separate blocks for clarity;
an efficient implementation must avoid computing the items the
compressor throws away.  Linear combination derives that implementation
automatically: combining LowPass(taps) with Compressor(M) yields a node
that computes only every M-th output.

Run:  python examples/sample_rate_converter.py
"""

import math

import numpy as np

from repro.apps.common import compressor, expander, low_pass_filter
from repro.graph import Pipeline
from repro.linear import analyze, maximal_linear_replacement
from repro.profiling import Profiler
from repro.runtime import run_stream
from repro.selection import select_optimizations


def main():
    taps, m = 96, 4
    spec = Pipeline([
        low_pass_filter(1.0, math.pi / m, taps),
        compressor(m),
    ], name="Downsample")

    node = analyze(spec).node_for(spec)
    print(f"specification: {taps}-tap low-pass + {m}x compressor")
    print(f"combined node: peek={node.peek} pop={node.pop} "
          f"push={node.push}, nnz={node.nnz}")
    assert node.pop == m and node.push == 1

    rng = np.random.default_rng(2)
    inputs = rng.normal(size=8000).tolist()
    p_spec, p_comb = Profiler(), Profiler()
    out_spec = run_stream(spec, inputs, 512, profiler=p_spec)
    combined = maximal_linear_replacement(spec)
    out_comb = run_stream(combined, inputs, 512, profiler=p_comb)
    assert np.allclose(out_spec, out_comb, atol=1e-9)
    print(f"specification : {p_spec.counts.mults / 512:8.1f} mults/output")
    print(f"combined      : {p_comb.counts.mults / 512:8.1f} mults/output "
          f"(the {m - 1} dead low-pass outputs per firing are gone)")

    # non-integral conversion (2/3) as in the RateConvert benchmark:
    # expander(2) + low-pass + compressor(3) collapses the same way, and
    # autosel decides whether time or frequency domain is better.
    ratec = Pipeline([
        expander(2),
        low_pass_filter(2.0, math.pi / 3, taps),
        compressor(3),
    ], name="RateConvert")
    result = select_optimizations(ratec)
    p_sel = Profiler()
    out_sel = run_stream(result.stream, inputs, 512, profiler=p_sel)
    baseline = run_stream(ratec, inputs, 512)
    assert np.allclose(out_sel, baseline, atol=1e-8)
    print(f"2/3-rate conversion after autosel: "
          f"{p_sel.counts.mults / 512:6.1f} mults/output "
          f"({type(result.stream).__name__})")


if __name__ == "__main__":
    main()
