"""Tour of the textual mini-StreamIt front end.

Writes the paper's Figure 1-3 two-FIR pipeline in surface syntax,
compiles it, proves the compiler sees it as linear, and runs the
original and the automatically optimized versions.

Run:  python examples/dsl_tour.py
"""

import numpy as np

from repro.dsl import compile_source
from repro.linear import analyze
from repro.runtime import run_stream
from repro.selection import select_optimizations

SOURCE = """
float->float filter FIRFilter(int N, float scale) {
    float[N] weights;
    init {
        for (int i = 0; i < N; i++) {
            weights[i] = scale * sin(0.3 * i + 1.0);
        }
    }
    work push 1 pop 1 peek N {
        float sum = 0;
        for (int i = 0; i < N; i++) {
            sum += weights[i] * peek(i);
        }
        push(sum);
        pop();
    }
}

float->float pipeline TwoFilters(int N) {
    add FIRFilter(N, 1.0);
    add FIRFilter(N, 0.5);
}
"""


def main():
    pipe = compile_source(SOURCE, "TwoFilters", 48)
    print("compiled stream graph:")
    print(pipe.pretty())

    lmap = analyze(pipe)
    node = lmap.node_for(pipe)
    print(f"\nlinear extraction: the pipeline is one affine map "
          f"(peek {node.peek}, pop {node.pop}, push {node.push})")

    rng = np.random.default_rng(3)
    inputs = rng.normal(size=4000).tolist()
    baseline = run_stream(pipe, inputs, 256)
    optimized = select_optimizations(pipe).stream
    got = run_stream(optimized, inputs, 256)
    assert np.allclose(baseline, got, atol=1e-8)
    print(f"autosel chose: {optimized.pretty()}")
    print("outputs identical — optimization is semantics-preserving")


if __name__ == "__main__":
    main()
