"""Frequency-domain filtering: when and why the FFT wins.

Sweeps FIR size and compares multiplications per output for the direct
(time-domain) implementation, the naive frequency transformation, and
the optimized overlap-save transformation (the paper's Transformations 5
and 6) — printing the crossover point where the frequency domain starts
to pay off.

Run:  python examples/frequency_filtering.py
"""

import math

import numpy as np

from repro.frequency import make_frequency_stream
from repro.linear import LinearFilter, LinearNode
from repro.profiling import Profiler
from repro.runtime import run_stream


def mults_per_output(stream, n_out=512, extra=4000, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=n_out + extra).tolist()
    prof = Profiler()
    run_stream(stream, inputs, n_out, profiler=prof)
    return prof.counts.mults / n_out


def main():
    print(f"{'taps':>6} {'direct':>10} {'naive':>10} {'optimized':>10}")
    crossover = None
    for taps in (4, 8, 16, 32, 64, 128, 256):
        coeffs = [math.sin(0.2 * k) + 1.05 for k in range(taps)]
        node = LinearNode.from_coefficients([coeffs], [0.0], pop=1)
        direct = mults_per_output(LinearFilter(node))
        naive = mults_per_output(
            make_frequency_stream(node, strategy="naive"))
        optimized = mults_per_output(
            make_frequency_stream(node, strategy="optimized"))
        if crossover is None and optimized < direct:
            crossover = taps
        print(f"{taps:>6} {direct:>10.1f} {naive:>10.1f} "
              f"{optimized:>10.1f}")
    print(f"\nfrequency domain wins from ~{crossover} taps on "
          f"(the paper's selector encodes exactly this trade-off)")

    # sanity: all three implementations produce identical streams
    node = LinearNode.from_coefficients([[1.0, -2.0, 0.5, 3.0]], [0.25],
                                        pop=1)
    rng = np.random.default_rng(1)
    inputs = rng.normal(size=600).tolist()
    ref = run_stream(LinearFilter(node), inputs, 256)
    for strategy in ("naive", "optimized"):
        got = run_stream(make_frequency_stream(node, strategy=strategy),
                         inputs, 256)
        assert np.allclose(ref, got, atol=1e-9), strategy
    print("equivalence check passed for both frequency strategies")


if __name__ == "__main__":
    main()
