"""Streaming sessions: compile once, push ndarray chunks forever.

A 256-tap FIR low-pass is compiled into a push session (the plan
backend, with the graph collapsed to one matrix kernel), then fed a
signal in irregular chunks — the way samples arrive from a socket or a
sound card.  The outputs are bit-for-bit the outputs of one batch run:
the session carries the filter's 255-sample lookahead window across
chunk boundaries.

Run:  python examples/streaming_session.py
"""

import math

import numpy as np

import repro
from repro.apps.common import low_pass_filter
from repro.runtime import run_stream


def main():
    rng = np.random.default_rng(7)
    signal = np.sin(np.linspace(0, 40 * math.pi, 4096)) \
        + 0.3 * rng.standard_normal(4096)

    # compile once: rewrite -> plan -> probe, all paid here
    session = repro.compile(low_pass_filter(1.0, math.pi / 8, 256),
                            optimize="linear")

    # stream the signal in irregular chunks
    outputs = []
    pos = 0
    while pos < len(signal):
        n = int(rng.integers(64, 513))
        outputs.append(session.push(signal[pos:pos + n]))
        pos += n
    streamed = np.concatenate(outputs)
    print(f"pushed {session.consumed} samples in irregular chunks, "
          f"got {len(streamed)} outputs")
    print(f"cumulative FLOPs: {session.profile.counts.flops:,}")

    # the batch reference: one run_stream call over the whole signal
    batch = run_stream(low_pass_filter(1.0, math.pi / 8, 256),
                       signal.tolist(), len(streamed), backend="plan",
                       as_array=True)
    print("chunked == batch:", np.allclose(streamed, batch, atol=1e-9))

    # resumable pull sessions work on complete programs too
    from repro.apps import iir
    pull = repro.compile(iir.build(), optimize="auto")
    a, b = pull.run(1000), pull.run(1000)
    print(f"IIR session: two advances, {len(a) + len(b)} outputs, "
          f"state carried across the boundary")
    print(pull.report())


if __name__ == "__main__":
    main()
