"""Multi-band equalizer: modular design, automatic combination.

The paper's §3.3.4 motivates linear combination with a multi-band
equalizer: N band filters designed independently by different engineers
collapse into a single filter automatically, so a design change in one
band is a recompile, not a manual redesign.

This example builds the FMRadio equalizer at two different band
configurations, shows both collapse to a single linear node, and checks
a design change (moving one band edge) only changes the combined kernel.

Run:  python examples/equalizer_design.py
"""

import numpy as np

from repro.apps import fmradio
from repro.linear import analyze, maximal_linear_replacement
from repro.profiling import Profiler
from repro.runtime import run_stream


def summarize(bands, taps=64):
    eq = fmradio.equalizer(fmradio.SAMPLING_RATE, bands=bands, taps=taps)
    lmap = analyze(eq)
    node = lmap.node_for(eq)
    assert node is not None, "equalizer must be linear"
    print(f"bands={bands:2d}: {sum(1 for _ in _leaves(eq)):2d} filters "
          f"collapse into one {node.peek}x{node.push} linear node")
    return eq, node


def _leaves(stream):
    from repro.graph import leaf_filters

    return leaf_filters(stream)


def main():
    eq10, node10 = summarize(bands=10)
    eq4, node4 = summarize(bands=4)

    # outputs identical between modular and collapsed forms
    rng = np.random.default_rng(1)
    inputs = rng.normal(size=3000).tolist()
    p_mod, p_col = Profiler(), Profiler()
    out_modular = run_stream(eq10, inputs, 256, profiler=p_mod)
    collapsed = maximal_linear_replacement(eq10)
    out_collapsed = run_stream(collapsed, inputs, 256, profiler=p_col)
    assert np.allclose(out_modular, out_collapsed, atol=1e-8)
    print(f"modular   : {p_mod.counts.flops / 256:9.1f} flops/output")
    print(f"collapsed : {p_col.counts.flops / 256:9.1f} flops/output "
          f"({100 * (1 - p_col.counts.flops / p_mod.counts.flops):.0f}% "
          f"removed)")

    # a 'design change': different band count => same API, new kernel
    print("kernel depth at 10 bands:", node10.peek,
          "| at 4 bands:", node4.peek)


if __name__ == "__main__":
    main()
